//! Error envelope for cross-system interactions.
//!
//! Each simulated system defines its own error enums; at the interaction
//! boundary they are converted into an [`InteractionError`], which records
//! *which* system raised the error and *how* it manifested. The oracles and
//! the discrepancy classifier work on this envelope.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How an interaction error manifested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request was rejected with a clean, typed error.
    Rejected,
    /// The request crashed the serving component (unhandled condition).
    Crash,
    /// The operation is not supported by the serving system.
    Unsupported,
    /// The request timed out (simulated time).
    Timeout,
    /// The serving system is unavailable (e.g. safe mode, not started).
    Unavailable,
    /// The operation violated an internal invariant (assertion failure).
    AssertionFailure,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Rejected => "rejected",
            ErrorKind::Crash => "crash",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::AssertionFailure => "assertion failure",
        };
        f.write_str(s)
    }
}

/// An error observed at a cross-system interaction boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionError {
    /// The system that raised the error (e.g. "minispark", "minihive").
    pub system: String,
    /// How the error manifested.
    pub kind: ErrorKind,
    /// A stable machine-readable code (e.g. `INCOMPATIBLE_SCHEMA`).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl InteractionError {
    /// Creates a new interaction error.
    pub fn new(
        system: impl Into<String>,
        kind: ErrorKind,
        code: impl Into<String>,
        message: impl Into<String>,
    ) -> InteractionError {
        InteractionError {
            system: system.into(),
            kind,
            code: code.into(),
            message: message.into(),
        }
    }

    /// Shorthand for a clean rejection.
    pub fn rejected(
        system: impl Into<String>,
        code: impl Into<String>,
        message: impl Into<String>,
    ) -> InteractionError {
        InteractionError::new(system, ErrorKind::Rejected, code, message)
    }

    /// Shorthand for an unsupported operation.
    pub fn unsupported(
        system: impl Into<String>,
        code: impl Into<String>,
        message: impl Into<String>,
    ) -> InteractionError {
        InteractionError::new(system, ErrorKind::Unsupported, code, message)
    }

    /// Shorthand for a crash.
    pub fn crash(
        system: impl Into<String>,
        code: impl Into<String>,
        message: impl Into<String>,
    ) -> InteractionError {
        InteractionError::new(system, ErrorKind::Crash, code, message)
    }

    /// The stable signature used to compare error behavior across
    /// interfaces: system-agnostic, message-agnostic.
    ///
    /// Two interfaces rejecting the same input with the same code count as
    /// *consistent* even if the message wording differs; a rejection versus
    /// a crash with the same code counts as *inconsistent*.
    pub fn signature(&self) -> String {
        format!("{}:{}", self.kind, self.code)
    }
}

impl fmt::Display for InteractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({}): {}",
            self.system, self.kind, self.code, self.message
        )
    }
}

impl std::error::Error for InteractionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_ignores_system_and_message() {
        let a = InteractionError::rejected("minispark", "CAST_OVERFLOW", "value too large");
        let b = InteractionError::rejected("minihive", "CAST_OVERFLOW", "out of range");
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_distinguishes_kind() {
        let a = InteractionError::rejected("s", "X", "m");
        let b = InteractionError::crash("s", "X", "m");
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn display_is_informative() {
        let e = InteractionError::unsupported("minihive", "NO_MAP_KEY", "maps need string keys");
        let s = e.to_string();
        assert!(s.contains("minihive"));
        assert!(s.contains("NO_MAP_KEY"));
    }
}
