//! The fault-matrix campaign: deterministic boundary-fault injection
//! crossed with the cross-testing space.
//!
//! Every fault of a [`FaultPlan`] is exercised against the scenarios that
//! exist for its channel — metastore and HDFS faults against the full
//! (experiment × plan × format) probe cross of the campaign executor,
//! Kafka faults against the broker API directly and through Spark's Kafka
//! connector, YARN faults against the Flink driver loop (FLINK-12342's
//! home) and Spark's cluster-metrics connector, HBase faults against the
//! location-caching key-value client under both retry policies
//! (HBASE-16621's home) — and the caller-visible
//! result of each cell is classified with
//! [`classify_fault_outcome`] into the paper's error-handling taxonomy:
//! swallowed, mistranslated, propagated-with-context, or crash.
//!
//! Cells are hermetic (each builds its own deployment, broker, or RM and
//! its own injection registry), so the sharded runner behind
//! [`crate::Campaign::shards`] trivially reproduces the serial report
//! byte-for-byte at any worker count.

use crate::exec::{self, run_one, CrossTestConfig, Deployment};
use crate::generator::{TestInput, Validity};
use crate::plan::{Experiment, TestPlan};
use csi_core::boundary::{CrossingContext, InteractionTrace};
use csi_core::detect::{
    flags_error_handling, BaselineSet, Detection, DetectionTap, DetectorAgreement, DetectorConfig,
    DetectorSpec,
};
use csi_core::fault::{
    classify_fault_outcome, Channel, FaultKind, FaultOutcome, FaultPlan, FaultSpec, InjectedFault,
    Trigger,
};
use csi_core::report::FaultCellRow;
use csi_core::value::{DataType, Value};
use csi_core::InteractionError;
use miniflink::yarn_driver::{run_driver_traced, DriverMode, DriverRun};
use minihbase::{ClusterState, HBaseClient, RetryPolicy, ServerId};
use minihive::metastore::StorageFormat;
use minikafka::{KafkaError, MiniKafka, PartitionId};
use minispark::connectors::kafka::{consume_range, plan_range, OffsetModel};
use miniyarn::{Resource, ResourceManager};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const KAFKA_TOPIC: &str = "t";
const P0: PartitionId = PartitionId(0);

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn spec(id: &str, channel: Channel, op: &str, kind: FaultKind, trigger: Trigger) -> FaultSpec {
    FaultSpec {
        id: id.to_string(),
        channel,
        op: op.to_string(),
        kind,
        trigger,
    }
}

/// The standard boundary-fault catalogue: at least one fault per
/// interaction channel, with timeout and latency magnitudes derived
/// deterministically from `seed`.
pub fn fault_catalogue(seed: u64) -> FaultPlan {
    let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
    let ms_timeout = 10_000 + xorshift(&mut s) % 20_000;
    let hdfs_timeout = 5_000 + xorshift(&mut s) % 10_000;
    let kafka_timeout = 30_000 + xorshift(&mut s) % 30_000;
    // FLINK-12342 regime: injected allocation latency must exceed the
    // driver's 500 ms heartbeat interval.
    let yarn_latency = 600 + xorshift(&mut s) % 400;
    FaultPlan {
        seed,
        faults: vec![
            spec(
                "ms-unavail-get",
                Channel::Metastore,
                "get_table",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "ms-timeout-create",
                Channel::Metastore,
                "create_table",
                FaultKind::Timeout { ms: ms_timeout },
                Trigger::Always,
            ),
            spec(
                "ms-corrupt-get",
                Channel::Metastore,
                "get_table",
                FaultKind::CorruptPayload,
                Trigger::OnCall(0),
            ),
            spec(
                "hdfs-unavail-create",
                Channel::Hdfs,
                "create",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "hdfs-timeout-read",
                Channel::Hdfs,
                "read",
                FaultKind::Timeout { ms: hdfs_timeout },
                Trigger::Always,
            ),
            spec(
                "hdfs-corrupt-read",
                Channel::Hdfs,
                "read",
                FaultKind::CorruptPayload,
                Trigger::OnCall(0),
            ),
            spec(
                "kafka-unavail-fetch",
                Channel::Kafka,
                "fetch",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "kafka-timeout-ends",
                Channel::Kafka,
                "log_end_offset",
                FaultKind::Timeout { ms: kafka_timeout },
                Trigger::Always,
            ),
            spec(
                "kafka-corrupt-fetch",
                Channel::Kafka,
                "fetch",
                FaultKind::CorruptPayload,
                Trigger::OnCall(0),
            ),
            spec(
                "kafka-unavail-produce",
                Channel::Kafka,
                "produce",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "yarn-latency-alloc",
                Channel::Yarn,
                "allocate",
                FaultKind::Latency { ms: yarn_latency },
                Trigger::Always,
            ),
            spec(
                "yarn-unavail-alloc",
                Channel::Yarn,
                "allocate",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "yarn-unavail-metrics",
                Channel::Yarn,
                "get_cluster_metrics",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "yarn-swallow-ask",
                Channel::Yarn,
                "add_container_request",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            spec(
                "hbase-unavail-route",
                Channel::HBase,
                "route",
                FaultKind::Unavailable,
                Trigger::Always,
            ),
            // HBASE-16621's shape: the first location lookup is poisoned,
            // so the cached entry points at a server that never served the
            // region; whether that surfaces depends on the retry policy.
            spec(
                "hbase-stale-locate",
                Channel::HBase,
                "locate",
                FaultKind::CorruptPayload,
                Trigger::OnCall(0),
            ),
        ],
    }
}

/// A small smoke-test subset of [`fault_catalogue`]: one cheap fault per
/// channel, for CI and property tests.
pub fn small_fault_catalogue(seed: u64) -> FaultPlan {
    let full = fault_catalogue(seed);
    let keep = [
        "ms-unavail-get",
        "hdfs-corrupt-read",
        "kafka-unavail-fetch",
        "yarn-unavail-alloc",
        "hbase-unavail-route",
    ];
    FaultPlan {
        seed,
        faults: full
            .faults
            .into_iter()
            .filter(|f| keep.contains(&f.id.as_str()))
            .collect(),
    }
}

/// Configuration of a fault-matrix campaign.
#[derive(Debug, Clone)]
pub struct FaultMatrixConfig {
    /// Seed recorded in the report (and used to derive the catalogue when
    /// built through [`FaultMatrixConfig::standard`]).
    pub seed: u64,
    /// Experiments whose (plan × format) cross probes metastore and HDFS
    /// faults.
    pub experiments: Vec<Experiment>,
    /// Storage formats of the probe cross.
    pub formats: Vec<StorageFormat>,
    /// The faults to exercise, in catalogue order.
    pub faults: FaultPlan,
    /// Run the online detector over every cell. Each cell self-calibrates:
    /// a fault-free run of the same scenario first learns its baseline
    /// crossing profile, then the armed run streams through a fresh
    /// [`OnlineDetector`] built on that frozen baseline. `None` disables
    /// detection (and keeps the legacy report output byte-identical).
    pub detect: Option<DetectorConfig>,
    /// Streaming observer invoked on every detection the instant a cell's
    /// detector emits it, before the report exists — how `csi-serve`
    /// forwards matrix detections to tenants incrementally. Taps only
    /// observe, so a tapped matrix stays byte-identical to an untapped
    /// one. Ignored unless `detect` is set.
    pub tap: Option<DetectionTap>,
}

impl FaultMatrixConfig {
    /// The standard campaign: the full catalogue against the full
    /// experiment × format cross.
    pub fn standard(seed: u64) -> FaultMatrixConfig {
        FaultMatrixConfig {
            seed,
            experiments: Experiment::ALL.to_vec(),
            formats: StorageFormat::ALL.to_vec(),
            faults: fault_catalogue(seed),
            detect: None,
            tap: None,
        }
    }

    /// The smoke campaign: the small catalogue against one experiment and
    /// one format, cheap enough for CI and property tests.
    pub fn smoke(seed: u64) -> FaultMatrixConfig {
        FaultMatrixConfig {
            seed,
            experiments: vec![Experiment::ALL[0]],
            formats: vec![StorageFormat::Orc],
            faults: small_fault_catalogue(seed),
            detect: None,
            tap: None,
        }
    }

    /// Enables online detection with default thresholds.
    pub fn with_detection(mut self) -> FaultMatrixConfig {
        self.detect = Some(DetectorConfig::default());
        self
    }
}

/// One cell of the fault matrix: a fault crossed with a scenario.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCase {
    /// The fault under test.
    pub fault: FaultSpec,
    /// The scenario the fault was exercised against (e.g.
    /// `"sh:spark-sql->hiveql:ORC"` or `"yarn:flink-driver"`).
    pub scenario: String,
    /// The faults that actually fired during the cell.
    pub fired: Vec<InjectedFault>,
    /// The error the caller saw, if any.
    pub surfaced: Option<InteractionError>,
    /// Taxonomy bucket; `None` when the fault never fired in this cell.
    pub outcome: Option<FaultOutcome>,
    /// Deterministic human-readable cell summary.
    pub detail: String,
    /// The boundary-crossing sequence recorded while the cell ran.
    pub trace: InteractionTrace,
    /// Online detections the cell produced (empty when detection is off).
    pub detections: Vec<Detection>,
}

/// The full fault-matrix report.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixReport {
    /// The campaign seed.
    pub seed: u64,
    /// Whether the online detector ran over the cells.
    pub detector_enabled: bool,
    /// Every cell, in canonical (catalogue × scenario) order.
    pub cases: Vec<FaultCase>,
    /// Cell count per taxonomy bucket (key `"unfired"` counts cells whose
    /// fault never fired).
    pub outcomes: BTreeMap<String, usize>,
    /// Detection count per [`csi_core::detect::DetectionKind`].
    pub detection_kinds: BTreeMap<String, usize>,
    /// Detection count per channel involved.
    pub detection_totals: BTreeMap<String, usize>,
    /// Online-vs-offline agreement over fired cells; `None` when detection
    /// is off or no cell fired.
    pub agreement: Option<DetectorAgreement>,
}

impl FaultMatrixReport {
    /// Renders the report as stable, diff-friendly text. With detection
    /// off, the output is byte-identical to the pre-detector format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== fault matrix (seed {}) == {} cells",
            self.seed,
            self.cases.len()
        );
        for (bucket, n) in &self.outcomes {
            let _ = writeln!(out, "  {bucket}: {n}");
        }
        if self.detector_enabled {
            for (kind, n) in &self.detection_kinds {
                let _ = writeln!(out, "  detect[{kind}]: {n}");
            }
            if let Some(a) = &self.agreement {
                let _ = writeln!(
                    out,
                    "  detector vs oracle: precision {:.3}, recall {:.3} \
                     (tp {} fp {} fn {} tn {})",
                    a.precision(),
                    a.recall(),
                    a.true_positives,
                    a.false_positives,
                    a.false_negatives,
                    a.true_negatives
                );
            }
        }
        for case in &self.cases {
            let outcome = match &case.outcome {
                Some(o) => o.to_string(),
                None => "unfired".to_string(),
            };
            let surfaced = match &case.surfaced {
                Some(e) => e.signature(),
                None => "-".to_string(),
            };
            let _ = write!(
                out,
                "{} | {} | {} | {} | {}",
                case.fault.id, case.scenario, outcome, surfaced, case.detail
            );
            if self.detector_enabled {
                let _ = write!(out, " | {} detections", case.detections.len());
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The cells as [`FaultCellRow`]s, for the unified
    /// [`csi_core::report::Render`] path.
    pub fn fault_cell_rows(&self) -> Vec<FaultCellRow> {
        self.cases
            .iter()
            .map(|case| FaultCellRow {
                fault_id: case.fault.id.clone(),
                scenario: case.scenario.clone(),
                outcome: case
                    .outcome
                    .as_ref()
                    .map_or_else(|| "unfired".to_string(), |o| o.to_string()),
                detections: case.detections.len(),
                detail: case.detail.clone(),
            })
            .collect()
    }
}

/// A unit of fault-matrix work. Cells are hermetic: running one never
/// observes state from another, which is what makes the sharded runner's
/// merge-by-index byte-identical to serial execution.
#[derive(Debug, Clone)]
enum Cell {
    /// One (experiment, plan, format) probe observation under a single
    /// armed fault.
    Probe {
        fault: FaultSpec,
        experiment: Experiment,
        plan: TestPlan,
        format: StorageFormat,
    },
    /// Direct broker API calls (produce, log_end_offset, fetch).
    KafkaDirect { fault: FaultSpec },
    /// Spark's Kafka source connector (plan + consume).
    KafkaConnector { fault: FaultSpec },
    /// The Flink YARN driver heartbeat loop.
    YarnDriver { fault: FaultSpec },
    /// Spark's YARN cluster-metrics connector.
    YarnMetrics { fault: FaultSpec },
    /// The HBase location-caching client under one retry policy.
    HBaseRoute {
        fault: FaultSpec,
        policy: RetryPolicy,
    },
}

fn enumerate_cells(config: &FaultMatrixConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for fault in &config.faults.faults {
        match fault.channel {
            Channel::Metastore | Channel::Hdfs => {
                for &experiment in &config.experiments {
                    for plan in experiment.plans() {
                        for &format in &config.formats {
                            cells.push(Cell::Probe {
                                fault: fault.clone(),
                                experiment,
                                plan,
                                format,
                            });
                        }
                    }
                }
            }
            Channel::Kafka => {
                cells.push(Cell::KafkaDirect {
                    fault: fault.clone(),
                });
                // Produce faults have no path through the (read-side)
                // Spark connector.
                if fault.op != "produce" {
                    cells.push(Cell::KafkaConnector {
                        fault: fault.clone(),
                    });
                }
            }
            Channel::Yarn => {
                if fault.op == "get_cluster_metrics" {
                    cells.push(Cell::YarnMetrics {
                        fault: fault.clone(),
                    });
                } else {
                    cells.push(Cell::YarnDriver {
                        fault: fault.clone(),
                    });
                }
            }
            Channel::HBase => {
                for policy in [RetryPolicy::TrustCache, RetryPolicy::RefreshAndRetry] {
                    cells.push(Cell::HBaseRoute {
                        fault: fault.clone(),
                        policy,
                    });
                }
            }
        }
    }
    cells
}

pub(crate) fn probe_input() -> TestInput {
    TestInput {
        id: 0,
        column_type: DataType::Int,
        value: Value::Int(7),
        validity: Validity::Valid,
        label: "fault probe".into(),
        expected_back: None,
    }
}

fn finish(
    fault: &FaultSpec,
    scenario: String,
    fired: Vec<InjectedFault>,
    surfaced: Option<InteractionError>,
    detail: String,
    trace: InteractionTrace,
    detections: Vec<Detection>,
) -> FaultCase {
    let outcome = if fired.is_empty() {
        None
    } else {
        Some(classify_fault_outcome(&fired, surfaced.as_ref()))
    };
    FaultCase {
        fault: fault.clone(),
        scenario,
        fired,
        surfaced,
        outcome,
        detail,
        trace,
        detections,
    }
}

/// The detection half of a [`FaultMatrixConfig`], borrowed per cell:
/// thresholds plus the optional streaming tap.
#[derive(Clone, Copy)]
struct CellDetect<'a> {
    config: &'a DetectorConfig,
    tap: Option<&'a DetectionTap>,
}

/// Runs one hermetic cell body, optionally under the online detector.
///
/// With detection on, the cell self-calibrates: the body first runs
/// against a fresh, unarmed context to learn the scenario's baseline
/// crossing profile, then runs again against an armed context with a
/// fresh [`csi_core::detect::OnlineDetector`] (frozen on that baseline)
/// attached as the streaming sink. Both runs build their own substrate
/// state inside `body`, so calibration can never leak into detection —
/// the property that keeps sharded matrices byte-identical to serial
/// ones.
fn run_cell_body<F>(
    fault: &FaultSpec,
    scenario: String,
    detect: Option<CellDetect<'_>>,
    body: F,
) -> FaultCase
where
    F: Fn(&CrossingContext) -> (Option<InteractionError>, String),
{
    let detector = detect.map(|d| {
        let calibration = CrossingContext::new();
        let _ = body(&calibration);
        let mut baselines = BaselineSet::default();
        baselines.learn(&scenario, &calibration.trace());
        DetectorSpec {
            config: *d.config,
            baselines: Arc::new(baselines),
            tap: d.tap.cloned(),
        }
        .build()
    });
    let ctx = CrossingContext::new();
    ctx.arm(fault.clone());
    if let Some(det) = &detector {
        ctx.set_sink(det.sink());
        det.begin(&scenario);
    }
    let (surfaced, detail) = body(&ctx);
    let detections = match &detector {
        Some(det) => det.finish(surfaced.as_ref()),
        None => Vec::new(),
    };
    finish(
        fault,
        scenario,
        ctx.fired(),
        surfaced,
        detail,
        ctx.trace(),
        detections,
    )
}

fn run_probe_cell(
    fault: &FaultSpec,
    experiment: Experiment,
    plan: TestPlan,
    format: StorageFormat,
    detect: Option<CellDetect<'_>>,
) -> FaultCase {
    let scenario = format!("{}:{}:{}", experiment.short(), plan, format.name());
    run_cell_body(fault, scenario, detect, |ctx| {
        let config = CrossTestConfig {
            experiments: vec![experiment],
            formats: vec![format],
            ..CrossTestConfig::default()
        };
        // The fault (when armed) already lives on `ctx`; the deployment
        // just wraps the stack around it.
        let deployment = Deployment::with_crossing(&config, ctx.clone());
        let obs = run_one(&deployment, experiment, plan, format, &probe_input(), false);
        let detail = match (&obs.write.result, obs.read.as_ref().map(|r| &r.result)) {
            (Err(e), _) => format!("write failed: {}", e.signature()),
            (Ok(()), Some(Err(e))) => format!("read failed: {}", e.signature()),
            (Ok(()), Some(Ok(rows))) => format!("write+read ok ({} rows)", rows.len()),
            (Ok(()), None) => "write ok; read skipped".to_string(),
        };
        (exec::surfaced_error(&obs), detail)
    })
}

/// A broker with 5 seeded records on `t`-0 wired to `ctx`, counters and
/// trace scoped to the scenario about to run.
fn seeded_broker(ctx: &CrossingContext) -> MiniKafka {
    let mut broker = MiniKafka::new();
    broker.create_topic(KAFKA_TOPIC, 1);
    for i in 0..5u8 {
        broker
            .produce(KAFKA_TOPIC, P0, Some(&[i]), Some(&[i]), u64::from(i))
            .expect("seeding an injection-free broker");
    }
    broker.set_crossing(ctx.clone());
    ctx.reset();
    broker
}

fn run_kafka_direct_cell(fault: &FaultSpec, detect: Option<CellDetect<'_>>) -> FaultCase {
    run_cell_body(fault, "kafka:direct".to_string(), detect, |ctx| {
        let mut broker = seeded_broker(ctx);
        let result = (|| {
            broker.produce(KAFKA_TOPIC, P0, Some(b"k"), Some(b"v"), 5)?;
            broker.log_end_offset(KAFKA_TOPIC, P0)?;
            broker.fetch(KAFKA_TOPIC, P0, 0, usize::MAX)?;
            Ok::<(), KafkaError>(())
        })();
        let detail = match &result {
            Ok(()) => "produce+ends+fetch ok".to_string(),
            Err(e) => format!("broker call failed: {}", e.code()),
        };
        (result.err().map(InteractionError::from), detail)
    })
}

fn run_kafka_connector_cell(fault: &FaultSpec, detect: Option<CellDetect<'_>>) -> FaultCase {
    run_cell_body(fault, "kafka:spark-connector".to_string(), detect, |ctx| {
        let broker = seeded_broker(ctx);
        let result = plan_range(&broker, KAFKA_TOPIC, P0, 0, ctx).and_then(|range| {
            consume_range(
                &broker,
                KAFKA_TOPIC,
                P0,
                range,
                OffsetModel::TolerateGaps,
                ctx,
            )
            .map(|records| records.len())
        });
        let detail = match &result {
            Ok(n) => format!("connector consumed {n} records"),
            Err(e) => format!("connector failed: {}", e.code()),
        };
        (result.err().map(InteractionError::from), detail)
    })
}

fn run_yarn_driver_cell(fault: &FaultSpec, detect: Option<CellDetect<'_>>) -> FaultCase {
    run_cell_body(fault, "yarn:flink-driver".to_string(), detect, |ctx| {
        // A small job in the no-storm regime on its own parameters: any
        // storm observed below is the injected fault's doing.
        let target = 20;
        let stats = run_driver_traced(
            DriverRun {
                mode: DriverMode::BuggySync,
                target,
                interval_ms: 500,
                alloc_service_ms: 1,
                start_latency_ms: 5,
                deadline_ms: 15_000,
            },
            Some(ctx.clone()),
        );
        let detail = format!(
            "driver: {} asks for target {target}, started {}, completed={}",
            stats.total_requested,
            stats.started,
            stats.completed_at.is_some()
        );
        (stats.error.map(InteractionError::from), detail)
    })
}

fn run_yarn_metrics_cell(fault: &FaultSpec, detect: Option<CellDetect<'_>>) -> FaultCase {
    run_cell_body(fault, "yarn:spark-connector".to_string(), detect, |ctx| {
        let mut rm = ResourceManager::with_nodes(4, Resource::new(8192, 8));
        rm.set_crossing(ctx.clone());
        let result = minispark::connectors::yarn::cluster_metrics(&rm, ctx);
        let detail = match &result {
            Ok(m) => format!("metrics ok ({} node managers)", m.num_node_managers),
            Err(e) => format!("connector failed: {}", e.code()),
        };
        (result.err().map(InteractionError::from), detail)
    })
}

/// The HBASE-16621 scenario cell: a location-caching client routes one
/// request for a region under an armed fault, with the given retry
/// policy. A poisoned `locate` surfaces as `NotServingRegionException`
/// under [`RetryPolicy::TrustCache`] but is silently healed by
/// [`RetryPolicy::RefreshAndRetry`]'s clean re-lookup.
fn run_hbase_cell(
    fault: &FaultSpec,
    policy: RetryPolicy,
    detect: Option<CellDetect<'_>>,
) -> FaultCase {
    let policy_name = match policy {
        RetryPolicy::TrustCache => "trust-cache",
        RetryPolicy::RefreshAndRetry => "refresh-retry",
    };
    let scenario = format!("hbase:kv-client({policy_name})");
    run_cell_body(fault, scenario, detect, |ctx| {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(2));
        let mut client = HBaseClient::new();
        let result = client.route_with(&cluster, "t,region-0", policy, Some(ctx));
        let detail = match &result {
            Ok(s) => format!(
                "routed to server {} after {} master lookups",
                s.0,
                client.master_lookups()
            ),
            Err(e) => format!("route failed: {}", e.code()),
        };
        (result.err().map(InteractionError::from), detail)
    })
}

fn run_cell(config: &FaultMatrixConfig, cell: &Cell) -> FaultCase {
    let detect = config.detect.as_ref().map(|c| CellDetect {
        config: c,
        tap: config.tap.as_ref(),
    });
    match cell {
        Cell::Probe {
            fault,
            experiment,
            plan,
            format,
        } => run_probe_cell(fault, *experiment, *plan, *format, detect),
        Cell::KafkaDirect { fault } => run_kafka_direct_cell(fault, detect),
        Cell::KafkaConnector { fault } => run_kafka_connector_cell(fault, detect),
        Cell::YarnDriver { fault } => run_yarn_driver_cell(fault, detect),
        Cell::YarnMetrics { fault } => run_yarn_metrics_cell(fault, detect),
        Cell::HBaseRoute { fault, policy } => run_hbase_cell(fault, *policy, detect),
    }
}

fn build_report(config: &FaultMatrixConfig, cases: Vec<FaultCase>) -> FaultMatrixReport {
    let detector_enabled = config.detect.is_some();
    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    let mut detection_kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut detection_totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut agreement = DetectorAgreement::default();
    let mut any_fired = false;
    for case in &cases {
        let key = match &case.outcome {
            Some(o) => o.to_string(),
            None => "unfired".to_string(),
        };
        *outcomes.entry(key).or_insert(0) += 1;
        if detector_enabled {
            for d in &case.detections {
                *detection_kinds.entry(d.kind.to_string()).or_insert(0) += 1;
                for channel in &d.channels {
                    *detection_totals.entry(channel.to_string()).or_insert(0) += 1;
                }
            }
            if !case.fired.is_empty() {
                any_fired = true;
                let oracle_positive = matches!(
                    case.outcome,
                    Some(FaultOutcome::Swallowed | FaultOutcome::Mistranslated)
                );
                agreement.score(oracle_positive, flags_error_handling(&case.detections));
            }
        }
    }
    FaultMatrixReport {
        seed: config.seed,
        detector_enabled,
        cases,
        outcomes,
        detection_kinds,
        detection_totals,
        agreement: (detector_enabled && any_fired).then_some(agreement),
    }
}

/// The serial matrix runner behind [`crate::Campaign::fault_matrix`] —
/// cells run in canonical order.
pub(crate) fn run_fault_matrix_impl(config: &FaultMatrixConfig) -> FaultMatrixReport {
    let cells = enumerate_cells(config);
    let cases = cells.iter().map(|c| run_cell(config, c)).collect();
    build_report(config, cases)
}

/// The sharded matrix runner behind [`crate::Campaign::fault_matrix`]
/// with [`crate::Campaign::shards`]: the matrix on `workers` threads.
///
/// Cells are claimed from a bump counter and their results stored by cell
/// index, then merged in canonical order — the same slot scheme as the
/// sharded cross-test executor. Because every cell is hermetic, the
/// report is byte-identical to [`run_fault_matrix_impl`] at any worker
/// count.
pub(crate) fn run_fault_matrix_sharded_impl(
    config: &FaultMatrixConfig,
    workers: usize,
) -> FaultMatrixReport {
    let workers = workers.max(1);
    let cells = enumerate_cells(config);
    let slots: Vec<Mutex<Option<FaultCase>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    {
        let cells = &cells;
        let slots = &slots;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    *slots[i].lock() = Some(run_cell(config, &cells[i]));
                });
            }
        });
    }
    let cases = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every cell was executed"))
        .collect();
    build_report(config, cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn catalogue_covers_every_channel() {
        let plan = fault_catalogue(42);
        for channel in Channel::ALL {
            assert!(
                plan.faults.iter().any(|f| f.channel == channel),
                "no fault for {channel}"
            );
        }
        // Ids are unique.
        let mut ids: Vec<&str> = plan.faults.iter().map(|f| f.id.as_str()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn catalogue_is_seed_deterministic_and_seed_sensitive() {
        assert_eq!(fault_catalogue(7), fault_catalogue(7));
        assert_ne!(fault_catalogue(7), fault_catalogue(8));
        // The small catalogue is a subset of the full one.
        let full = fault_catalogue(3);
        for f in &small_fault_catalogue(3).faults {
            assert!(full.faults.contains(f));
        }
    }

    #[test]
    fn metastore_fault_propagates_through_hiveql_but_not_spark() {
        let plan = fault_catalogue(1);
        let fault = plan
            .faults
            .iter()
            .find(|f| f.id == "ms-unavail-get")
            .unwrap();
        let report = Campaign::new(&[])
            .fault_matrix(1)
            .formats(vec![StorageFormat::Orc])
            .faults(FaultPlan {
                seed: 1,
                faults: vec![fault.clone()],
            })
            .run()
            .matrix
            .expect("matrix mode");
        let outcomes: Vec<&FaultOutcome> = report
            .cases
            .iter()
            .filter_map(|c| c.outcome.as_ref())
            .collect();
        assert!(!outcomes.is_empty());
        // HiveQL-written plans surface the native MetaException; Spark
        // plans collapse it into Analysis(HIVE_METASTORE) — the paper's
        // context-loss narrative, observable per cell.
        assert!(outcomes.contains(&&FaultOutcome::PropagatedWithContext));
        assert!(outcomes.contains(&&FaultOutcome::Mistranslated));
    }

    #[test]
    fn kafka_corruption_is_rejected_directly_but_mistranslated_by_spark() {
        let plan = fault_catalogue(1);
        let fault = plan
            .faults
            .iter()
            .find(|f| f.id == "kafka-corrupt-fetch")
            .unwrap();
        let direct = run_kafka_direct_cell(fault, None);
        assert_eq!(direct.outcome, Some(FaultOutcome::PropagatedWithContext));
        let connector = run_kafka_connector_cell(fault, None);
        assert_eq!(connector.outcome, Some(FaultOutcome::Mistranslated));
    }

    #[test]
    fn yarn_latency_is_swallowed_as_a_silent_storm() {
        let plan = fault_catalogue(1);
        let fault = plan
            .faults
            .iter()
            .find(|f| f.id == "yarn-latency-alloc")
            .unwrap();
        let case = run_yarn_driver_cell(fault, None);
        assert_eq!(case.outcome, Some(FaultOutcome::Swallowed));
        // The FLINK-12342 signature: far more asks than containers needed,
        // and no error anywhere.
        assert!(case.surfaced.is_none());
        assert!(
            case.detail.contains("asks for target 20"),
            "{}",
            case.detail
        );
        let asks: u64 = case
            .detail
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(asks > 60, "expected a storm, detail: {}", case.detail);
    }

    #[test]
    fn poisoned_hbase_locate_splits_on_retry_policy() {
        let plan = fault_catalogue(1);
        let fault = plan
            .faults
            .iter()
            .find(|f| f.id == "hbase-stale-locate")
            .unwrap();
        // Shipped policy: the poisoned location surfaces as a generic
        // NotServingRegionException — the corruption's identity is lost.
        let shipped = run_hbase_cell(fault, RetryPolicy::TrustCache, None);
        assert_eq!(shipped.outcome, Some(FaultOutcome::Mistranslated));
        // Fixed policy: the clean retry heals the request and nothing
        // surfaces at all.
        let fixed = run_hbase_cell(fault, RetryPolicy::RefreshAndRetry, None);
        assert_eq!(fixed.outcome, Some(FaultOutcome::Swallowed));
        assert!(fixed.surfaced.is_none());
        // Both cells carry their crossing sequence.
        assert!(!shipped.trace.is_empty());
        assert_eq!(fixed.trace.channel_counts()["hbase"], 3);
    }

    #[test]
    fn sharded_matrix_is_byte_identical_to_serial() {
        let config = FaultMatrixConfig::smoke(11);
        let json = |r: &FaultMatrixReport| serde_json::to_string(r).unwrap();
        let serial = json(&run_fault_matrix_impl(&config));
        let sharded = json(&run_fault_matrix_sharded_impl(&config, 3));
        assert_eq!(serial, sharded);
    }

    #[test]
    fn hbase_region_server_down_propagates_with_context() {
        let plan = fault_catalogue(1);
        let fault = plan
            .faults
            .iter()
            .find(|f| f.id == "hbase-unavail-route")
            .unwrap();
        for policy in [RetryPolicy::TrustCache, RetryPolicy::RefreshAndRetry] {
            let case = run_hbase_cell(fault, policy, None);
            assert_eq!(case.outcome, Some(FaultOutcome::PropagatedWithContext));
        }
    }
}
