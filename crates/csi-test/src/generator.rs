//! Test-input generation (Section 8.1).
//!
//! "We generate input data based on the publicly documented specifications
//! of each interface. The generated inputs cover all the data types that
//! are supported by each interface. These inputs include both valid and
//! invalid data … In total, we generated 422 values … 210 are valid and 212
//! are invalid."
//!
//! This module reproduces that catalogue: for every supported column type
//! it emits boundary values, representative values, format variants, and
//! malformed inputs. A unit test pins the totals to the paper's numbers.

use csi_core::column::ValueColumn;
use csi_core::value::{parse_date, parse_timestamp, DataType, Decimal, StructField, Value};
use serde::{Deserialize, Serialize};

/// Whether an input is expected to be representable in its column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Validity {
    /// Representable: checked by the write–read and differential oracles.
    Valid,
    /// Not representable: checked by the error-handling (and differential)
    /// oracles.
    Invalid,
}

/// One generated input: a column type and a value to store in it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestInput {
    /// Stable id (index into the generated catalogue).
    pub id: usize,
    /// The declared column type.
    pub column_type: DataType,
    /// The value to insert.
    pub value: Value,
    /// Expected representability.
    pub validity: Validity,
    /// Human-readable label for reports.
    pub label: String,
    /// For valid inputs whose storage involves a legitimate conversion
    /// (e.g. an INT stored in a STRING column), the value the write–read
    /// oracle should expect back. `None` means the input itself.
    pub expected_back: Option<Value>,
}

impl TestInput {
    /// The value the write–read oracle compares against.
    pub fn expected(&self) -> &Value {
        self.expected_back.as_ref().unwrap_or(&self.value)
    }
}

struct Gen {
    inputs: Vec<TestInput>,
}

impl Gen {
    fn push(&mut self, column_type: DataType, value: Value, validity: Validity, label: &str) {
        self.inputs.push(TestInput {
            id: self.inputs.len(),
            column_type,
            value,
            validity,
            label: label.to_string(),
            expected_back: None,
        });
    }

    fn valid(&mut self, t: DataType, v: Value, label: &str) {
        self.push(t, v, Validity::Valid, label);
    }

    /// A valid input whose round-trip legitimately converts the value.
    fn valid_as(&mut self, t: DataType, v: Value, expected: Value, label: &str) {
        self.push(t, v, Validity::Valid, label);
        self.inputs.last_mut().expect("just pushed").expected_back = Some(expected);
    }

    fn invalid(&mut self, t: DataType, v: Value, label: &str) {
        self.push(t, v, Validity::Invalid, label);
    }
}

fn dec(s: &str) -> Value {
    Value::Decimal(Decimal::parse(s).expect("static decimal"))
}

fn date(s: &str) -> Value {
    Value::Date(parse_date(s).expect("static date"))
}

fn ts(s: &str) -> Value {
    Value::Timestamp(parse_timestamp(s).expect("static timestamp"))
}

/// Generates the full input catalogue: 422 inputs, 210 valid, 212 invalid.
///
/// The catalogue is deterministic, so it is built once per process and
/// cached; every call clones the cached vector. Benchmarks and the
/// parallel executor's worker threads can therefore call this freely
/// without re-running the generators.
pub fn generate_inputs() -> Vec<TestInput> {
    static CATALOGUE: std::sync::OnceLock<Vec<TestInput>> = std::sync::OnceLock::new();
    CATALOGUE.get_or_init(build_catalogue).clone()
}

/// Builds the catalogue from scratch; [`generate_inputs`] caches this.
fn build_catalogue() -> Vec<TestInput> {
    let mut g = Gen { inputs: Vec::new() };
    integers(&mut g);
    floats(&mut g);
    decimals(&mut g);
    booleans(&mut g);
    strings(&mut g);
    chars_varchars(&mut g);
    binaries(&mut g);
    dates(&mut g);
    timestamps(&mut g);
    intervals(&mut g);
    nested(&mut g);
    g.inputs
}

fn integers(g: &mut Gen) {
    let widths: [(DataType, i128, i128); 4] = [
        (DataType::Byte, i8::MIN as i128, i8::MAX as i128),
        (DataType::Short, i16::MIN as i128, i16::MAX as i128),
        (DataType::Int, i32::MIN as i128, i32::MAX as i128),
        (DataType::Long, i64::MIN as i128, i64::MAX as i128),
    ];
    for (ty, min, max) in widths {
        let mk = |v: i128| -> Value {
            match ty {
                DataType::Byte => Value::Byte(v as i8),
                DataType::Short => Value::Short(v as i16),
                DataType::Int => Value::Int(v as i32),
                _ => Value::Long(v as i64),
            }
        };
        // Boundaries and representative points: 16 valid values per width.
        for v in [
            0,
            1,
            -1,
            max,
            min,
            max - 1,
            min + 1,
            42,
            -42,
            max / 2,
            2,
            -2,
            10,
            -10,
            7,
            max / 4,
        ] {
            g.valid(ty.clone(), mk(v), &format!("{ty} value {v}"));
        }
        // Out-of-range typed values: 4 invalid per width (carried in the
        // next-wider representation, or a decimal for LONG).
        let over = [max + 1, min - 1, max * 2, min * 2];
        for v in over {
            let carrier = if ty == DataType::Long {
                dec(&v.to_string())
            } else {
                Value::Long(v as i64)
            };
            g.invalid(ty.clone(), carrier, &format!("{ty} overflow {v}"));
        }
        // Malformed and boundary-crossing strings: 20 invalid per width.
        let bad: [String; 20] = [
            (max + 1).to_string(),
            (min - 1).to_string(),
            format!(" {} ", max / 3),
            "abc".to_string(),
            String::new(),
            "12.5".to_string(),
            "1e3".to_string(),
            "0x10".to_string(),
            format!("{}junk", max / 5),
            "NaN".to_string(),
            "true".to_string(),
            "12 34".to_string(),
            "--3".to_string(),
            "e5".to_string(),
            "0b101".to_string(),
            "12.0.0".to_string(),
            " ".to_string(),
            "9".repeat(40),
            "∞".to_string(),
            "th1rty".to_string(),
        ];
        for s in bad {
            g.invalid(
                ty.clone(),
                Value::Str(s.clone()),
                &format!("{ty} from string {s:?}"),
            );
        }
    }
}

fn floats(g: &mut Gen) {
    for ty in [DataType::Float, DataType::Double] {
        let mk = |v: f64| -> Value {
            if ty == DataType::Float {
                Value::Float(v as f32)
            } else {
                Value::Double(v)
            }
        };
        for (v, label) in [
            (0.0, "zero"),
            (-0.0, "negative zero"),
            (1.5, "simple"),
            (-2.25, "negative"),
            (f32::MAX as f64, "f32 max"),
            (1e-10, "tiny"),
            (f64::NAN, "NaN"),
            (f64::INFINITY, "+inf"),
            (f64::NEG_INFINITY, "-inf"),
            (std::f64::consts::PI, "pi"),
        ] {
            g.valid(ty.clone(), mk(v), &format!("{ty} {label}"));
        }
        for s in [
            "abc", "1.2.3", "--5", "1,5", "", "1..2", "NaN5", "0x1p3", "twelve",
        ] {
            g.invalid(
                ty.clone(),
                Value::Str(s.into()),
                &format!("{ty} from string {s:?}"),
            );
        }
    }
}

fn decimals(g: &mut Gen) {
    // Several declared decimal types exercise precision/scale handling.
    let d102 = DataType::Decimal(10, 2);
    for (v, label) in [
        ("0.00", "zero"),
        ("1.50", "exact scale"),
        ("-1.50", "negative"),
        ("12345678.99", "max digits"),
        ("-12345678.99", "min digits"),
        ("0.01", "smallest step"),
        ("1.5", "runtime scale 1"), // D02 driver: valid, narrower scale.
        ("100", "integral"),        // D02 driver: valid, scale 0.
    ] {
        g.valid(d102.clone(), dec(v), &format!("decimal(10,2) {label} {v}"));
    }
    for (v, label) in [
        ("123.456", "excess scale"), // D05 driver.
        ("123456789012.3", "excess precision"),
        ("99999999999999999999999999999999999999", "38 nines"),
    ] {
        g.invalid(d102.clone(), dec(v), &format!("decimal(10,2) {label}"));
    }
    for s in [
        "12,5", "", "1.2.3", "1e2", "abc", "$5.00", "½", ".", "--1.5",
    ] {
        g.invalid(
            d102.clone(),
            Value::Str(s.into()),
            &format!("decimal(10,2) from {s:?}"),
        );
    }
    for v in ["99999999999", "-99999999999"] {
        g.invalid(d102.clone(), dec(v), &format!("decimal(10,2) overflow {v}"));
    }
    let d3810 = DataType::Decimal(38, 10);
    for (v, label) in [
        ("0.0000000001", "min step"),
        ("1234567890123456789012345678.0123456789", "wide"),
        ("-1.5", "negative runtime scale"),
        ("7", "integral"),
        ("3.14159", "partial scale"),
        ("-0.5", "negative fraction"),
        ("2.5000000000", "exact scale"),
        ("0", "zero"),
    ] {
        g.valid(d3810.clone(), dec(v), &format!("decimal(38,10) {label}"));
    }
    for (v, label) in [
        ("0.00000000001", "excess scale"),
        ("12345678901234567890123456789.123456789", "excess digits"),
    ] {
        g.invalid(d3810.clone(), dec(v), &format!("decimal(38,10) {label}"));
    }
    g.invalid(
        d3810,
        Value::Str("many dots 1.2.3.4".into()),
        "decimal(38,10) garbage",
    );
    let d50 = DataType::Decimal(5, 0);
    for v in ["0", "99999", "-99999", "123"] {
        g.valid(d50.clone(), dec(v), &format!("decimal(5,0) {v}"));
    }
    for v in ["100000", "-100000", "1.5"] {
        g.invalid(d50.clone(), dec(v), &format!("decimal(5,0) overflow {v}"));
    }
    for s in ["1 000", "five"] {
        g.invalid(
            d50.clone(),
            Value::Str(s.into()),
            &format!("decimal(5,0) from {s:?}"),
        );
    }
}

fn booleans(g: &mut Gen) {
    g.valid(DataType::Boolean, Value::Boolean(true), "bool true");
    g.valid(DataType::Boolean, Value::Boolean(false), "bool false");
    g.valid_as(
        DataType::Boolean,
        Value::Str("true".into()),
        Value::Boolean(true),
        "bool 'true'",
    );
    g.valid_as(
        DataType::Boolean,
        Value::Str("FALSE".into()),
        Value::Boolean(false),
        "bool 'FALSE'",
    );
    // Hive-lenient spellings that ANSI Spark rejects (D12), plus garbage.
    for s in [
        "t", "f", "yes", "no", "1", "0", "y", "2", "maybe", "TRUEish", "on", "off", " true",
    ] {
        g.invalid(
            DataType::Boolean,
            Value::Str(s.into()),
            &format!("bool from {s:?}"),
        );
    }
    g.invalid(DataType::Boolean, Value::Date(0), "bool from date");
}

fn strings(g: &mut Gen) {
    let cases: [(&str, &str); 20] = [
        ("", "empty"),
        ("hello", "ascii"),
        ("héllo wörld ☃", "unicode"),
        ("it's", "embedded quote"),
        ("  spaced  ", "whitespace"),
        ("NULL", "the word NULL"),
        ("true", "the word true"),
        ("123", "numeric text"),
        ("line1\nline2", "newline"),
        ("tab\there", "tab"),
        ("ends with space ", "trailing space"),
        ("\u{1F600} emoji", "astral plane"),
        ("SELECT * FROM t", "sql keyword soup"),
        ("back\\slash", "backslash"),
        ("{\"json\": [1, 2]}", "json-ish"),
        ("a", "single char"),
        ("''", "two quotes"),
        ("percent % under_score", "wildcard chars"),
        (
            "\u{0627}\u{0644}\u{0633}\u{0644}\u{0627}\u{0645}",
            "rtl text",
        ),
        ("mixed\tws\nlines", "mixed whitespace"),
    ];
    for (s, label) in cases {
        g.valid(
            DataType::String,
            Value::Str(s.into()),
            &format!("string {label}"),
        );
    }
    let long: String = "x".repeat(1000);
    g.valid(DataType::String, Value::Str(long), "string 1000 chars");
    // Non-string values are stored via cast-to-string: all valid, read
    // back in rendered form.
    g.valid_as(
        DataType::String,
        Value::Int(42),
        Value::Str("42".into()),
        "string from int",
    );
    g.valid_as(
        DataType::String,
        Value::Boolean(true),
        Value::Str("true".into()),
        "string from bool",
    );
    g.valid_as(
        DataType::String,
        date("2020-01-02"),
        Value::Str("2020-01-02".into()),
        "string from date",
    );
}

fn chars_varchars(g: &mut Gen) {
    for n in [1u32, 8, 20] {
        let ty = DataType::Char(n);
        let fill: String = "a".repeat(n as usize);
        g.valid(ty.clone(), Value::Str(fill), &format!("char({n}) exact"));
        g.valid(
            ty.clone(),
            Value::Str("".into()),
            &format!("char({n}) empty"),
        );
        if n > 1 {
            // Shorter than n: the padding/trimming discrepancy D13.
            g.valid(
                ty.clone(),
                Value::Str("ab".into()),
                &format!("char({n}) short"),
            );
            g.valid(
                ty.clone(),
                Value::Str("a ".into()),
                &format!("char({n}) trailing space"),
            );
        }
        let over: String = "z".repeat(n as usize + 1);
        g.invalid(ty.clone(), Value::Str(over), &format!("char({n}) overlong"));
        let way_over: String = "z".repeat(n as usize * 3 + 2);
        g.invalid(
            ty.clone(),
            Value::Str(way_over),
            &format!("char({n}) way overlong"),
        );
        let over_unicode: String = "ü".repeat(n as usize + 2);
        g.invalid(
            ty.clone(),
            Value::Str(over_unicode),
            &format!("char({n}) overlong unicode"),
        );
        let over_spaces = format!("{} ", "q".repeat(n as usize));
        g.invalid(
            ty,
            Value::Str(over_spaces),
            &format!("char({n}) overlong via trailing space"),
        );
    }
    for n in [1u32, 8, 255] {
        let ty = DataType::Varchar(n);
        let fill: String = "b".repeat(n as usize);
        g.valid(ty.clone(), Value::Str(fill), &format!("varchar({n}) exact"));
        g.valid(
            ty.clone(),
            Value::Str("".into()),
            &format!("varchar({n}) empty"),
        );
        if n > 1 {
            g.valid(
                ty.clone(),
                Value::Str("ab".into()),
                &format!("varchar({n}) short"),
            );
        }
        // Overflow: truncation vs error, D08.
        let over: String = "w".repeat(n as usize + 1);
        g.invalid(
            ty.clone(),
            Value::Str(over),
            &format!("varchar({n}) overlong"),
        );
        let way_over: String = "w".repeat(n as usize * 2 + 3);
        g.invalid(
            ty.clone(),
            Value::Str(way_over),
            &format!("varchar({n}) way overlong"),
        );
        let over_unicode: String = "é".repeat(n as usize + 2);
        g.invalid(
            ty.clone(),
            Value::Str(over_unicode),
            &format!("varchar({n}) overlong unicode"),
        );
        let over_spaces = format!("{} !", "p".repeat(n as usize));
        g.invalid(
            ty,
            Value::Str(over_spaces),
            &format!("varchar({n}) overlong with punctuation"),
        );
    }
}

fn binaries(g: &mut Gen) {
    for (b, label) in [
        (vec![], "empty"),
        (vec![0u8], "single zero"),
        (vec![1, 2, 3], "small"),
        (vec![255, 0, 128, 7], "high bytes"),
        ((0..=255u8).collect::<Vec<u8>>(), "all byte values"),
        (vec![0u8; 64], "64 zeros"),
        (b"\x89PNG\r\n\x1a\n".to_vec(), "png magic"),
    ] {
        g.valid(
            DataType::Binary,
            Value::Binary(b),
            &format!("binary {label}"),
        );
    }
    g.valid_as(
        DataType::Binary,
        Value::Str("text as bytes".into()),
        Value::Binary(b"text as bytes".to_vec()),
        "binary from string",
    );
    g.invalid(DataType::Binary, Value::Int(5), "binary from int");
    g.invalid(DataType::Binary, Value::Double(1.5), "binary from double");
}

fn dates(g: &mut Gen) {
    for s in [
        "1970-01-01",
        "2020-06-15",
        "1969-12-31",
        "0001-01-01",
        "9999-12-31",
        "2000-02-29",
        "1582-10-04",
        "1582-10-15",
        "1900-01-01",
        "2038-01-19",
        "1066-10-14",
        "1776-07-04",
        "1912-06-23",
        "2100-01-01",
        "0100-12-25",
        "3000-06-30",
    ] {
        g.valid(DataType::Date, date(s), &format!("date {s}"));
    }
    for s in [
        "2021-02-30",
        "2021-13-01",
        "2021-00-10",
        "not-a-date",
        "2021/01/01",
        "01-01-2021",
        "2021-1-1-1",
        "",
        "2021.01.01",
        "20210101",
        "Jan 1 2021",
        "2021-04-31",
        "1900-02-29",
        "yesterday",
    ] {
        g.invalid(
            DataType::Date,
            Value::Str(s.into()),
            &format!("date from {s:?}"),
        );
    }
    // Syntactically fine, semantically out of the documented range: D15.
    g.invalid(
        DataType::Date,
        Value::Date(crate::generator::parse_date_unchecked("9999-12-31") + 365),
        "date beyond 9999-12-31",
    );
    g.invalid(
        DataType::Date,
        Value::Date(parse_date("0001-01-01").unwrap() - 300),
        "date before 0001-01-01",
    );
}

pub(crate) fn parse_date_unchecked(s: &str) -> i32 {
    parse_date(s).expect("static date")
}

fn timestamps(g: &mut Gen) {
    for s in [
        "1970-01-01 00:00:00",
        "2020-06-15 12:34:56.789",
        "1969-12-31 23:59:59.999999",
        "2001-09-09 01:46:40",
        "9999-12-31 23:59:59",
        "1900-01-01 00:00:00",
        // Pre-1900: valid TIMESTAMPs that legacy ORC cannot hold (D06).
        "1899-12-31 23:59:59",
        "1850-03-04 12:00:00",
        // Pre-1582: the Julian rebase region (D07).
        "1500-06-01 00:00:00",
        "0977-01-01 06:30:00",
        "2020-02-29 23:59:59.000001",
        "1970-01-01 00:00:00.000001",
        "1960-05-05 05:05:05.5",
        "2262-04-11 23:47:16",
    ] {
        g.valid(DataType::Timestamp, ts(s), &format!("timestamp {s}"));
    }
    for s in [
        "2021-01-01 25:00:00",
        "2021-01-01 00:61:00",
        "2021-02-30 10:00:00",
        "garbage",
        "2021-01-01T10:00:00",
        "",
        "2021-01-01 12:00:00 PM",
        "2021/01/01 10:00:00",
        "01:02:03",
        "2021-01-01 10:00",
        "2021-01-01 10:00:00.1234567",
        "noonish",
    ] {
        g.invalid(
            DataType::Timestamp,
            Value::Str(s.into()),
            &format!("timestamp from {s:?}"),
        );
    }
}

fn intervals(g: &mut Gen) {
    for (months, micros, label) in [
        (3, 0, "3 months"),
        (12, 0, "1 year"),
        (0, 7 * 86_400_000_000, "7 days"),
        (0, 3_600_000_000, "1 hour"),
        // Negative intervals: D11.
        (-3, 0, "-3 months"),
        (0, -2 * 3_600_000_000, "-2 hours"),
    ] {
        g.valid(
            DataType::Interval,
            Value::Interval { months, micros },
            &format!("interval {label}"),
        );
    }
    g.invalid(
        DataType::Interval,
        Value::Str("1 month".into()),
        "interval from string",
    );
    g.invalid(DataType::Interval, Value::Int(5), "interval from int");
}

fn nested(g: &mut Gen) {
    let arr_int = DataType::Array(Box::new(DataType::Int));
    g.valid(
        arr_int.clone(),
        Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        "array<int> simple",
    );
    g.valid(arr_int.clone(), Value::Array(vec![]), "array<int> empty");
    g.valid(
        arr_int.clone(),
        Value::Array(vec![Value::Null, Value::Int(7)]),
        "array<int> with null",
    );
    let arr_str = DataType::Array(Box::new(DataType::String));
    g.valid(
        arr_str,
        Value::Array(vec![Value::Str("a".into()), Value::Str("".into())]),
        "array<string>",
    );
    let arr_byte = DataType::Array(Box::new(DataType::Byte));
    g.valid(
        arr_byte.clone(),
        Value::Array(vec![Value::Byte(1), Value::Byte(-1)]),
        "array<tinyint>",
    );
    g.invalid(
        arr_byte,
        Value::Array(vec![Value::Int(300)]),
        "array<tinyint> element overflow",
    );
    g.invalid(
        arr_int.clone(),
        Value::Array(vec![Value::Str("x".into())]),
        "array<int> element garbage",
    );

    let map_si = DataType::Map(Box::new(DataType::String), Box::new(DataType::Int));
    g.valid(
        map_si.clone(),
        Value::Map(vec![(Value::Str("k".into()), Value::Int(1))]),
        "map<string,int>",
    );
    g.valid(map_si.clone(), Value::Map(vec![]), "map<string,int> empty");
    g.invalid(
        map_si,
        Value::Map(vec![(Value::Str("k".into()), Value::Long(1 << 40))]),
        "map<string,int> value overflow",
    );
    // Non-string map keys: fine in ORC/Parquet, rejected by Avro (D04).
    let map_is = DataType::Map(Box::new(DataType::Int), Box::new(DataType::String));
    g.valid(
        map_is.clone(),
        Value::Map(vec![(Value::Int(1), Value::Str("one".into()))]),
        "map<int,string> (non-string keys)",
    );
    g.valid(
        map_is,
        Value::Map(vec![
            (Value::Int(1), Value::Str("one".into())),
            (Value::Int(2), Value::Str("two".into())),
        ]),
        "map<int,string> two entries",
    );

    let st_lower = DataType::Struct(vec![StructField::new("inner", DataType::Int)]);
    g.valid(
        st_lower,
        Value::Struct(vec![("inner".into(), Value::Int(5))]),
        "struct lowercase field",
    );
    // Mixed-case field names: the case-folding discrepancy D14.
    let st_mixed = DataType::Struct(vec![
        StructField::new("Inner", DataType::Int),
        StructField::new("b", DataType::String),
    ]);
    g.valid(
        st_mixed.clone(),
        Value::Struct(vec![
            ("Inner".into(), Value::Int(3)),
            ("b".into(), Value::Str("x".into())),
        ]),
        "struct mixed-case field",
    );
    g.invalid(
        st_mixed,
        Value::Struct(vec![
            ("Inner".into(), Value::Str("oops".into())),
            ("b".into(), Value::Str("x".into())),
        ]),
        "struct field garbage",
    );
    let deep = DataType::Struct(vec![StructField::new(
        "xs",
        DataType::Array(Box::new(DataType::Long)),
    )]);
    g.valid(
        deep,
        Value::Struct(vec![(
            "xs".into(),
            Value::Array(vec![Value::Long(1), Value::Long(2)]),
        )]),
        "struct of array",
    );
    let map_ss = DataType::Map(Box::new(DataType::String), Box::new(DataType::String));
    g.valid(
        map_ss,
        Value::Map(vec![
            (Value::Str("a".into()), Value::Str("1".into())),
            (Value::Str("".into()), Value::Str("".into())),
        ]),
        "map<string,string>",
    );
    let arr_date = DataType::Array(Box::new(DataType::Date));
    g.valid(
        arr_date,
        Value::Array(vec![date("2020-01-01"), Value::Null]),
        "array<date>",
    );
    let arr_arr = DataType::Array(Box::new(DataType::Array(Box::new(DataType::Int))));
    g.valid(
        arr_arr,
        Value::Array(vec![
            Value::Array(vec![Value::Int(1)]),
            Value::Array(vec![]),
        ]),
        "array<array<int>>",
    );
    let st_two = DataType::Struct(vec![
        StructField::new("x", DataType::Double),
        StructField::new("y", DataType::Double),
    ]);
    g.valid(
        st_two,
        Value::Struct(vec![
            ("x".into(), Value::Double(1.0)),
            ("y".into(), Value::Double(-2.0)),
        ]),
        "struct point",
    );
    let map_sv = DataType::Map(Box::new(DataType::String), Box::new(DataType::Varchar(4)));
    g.invalid(
        map_sv,
        Value::Map(vec![(Value::Str("k".into()), Value::Str("toolong".into()))]),
        "map value exceeds varchar",
    );
    let st_byte = DataType::Struct(vec![StructField::new("b", DataType::Byte)]);
    g.invalid(
        st_byte,
        Value::Struct(vec![("b".into(), Value::Int(999))]),
        "struct field overflow",
    );
}

/// Mutation operators for the coverage-guided explore mode.
///
/// Given a corpus entry, emits deterministic variants: per-type value
/// edge-cases, schema edits (struct field case flips, map key-type swaps),
/// and representation changes (value carried as a string). Each mutant
/// carries the validity the engines' documented contracts assign to it, so
/// the oracles evaluate mutants exactly like catalogue inputs. Mutant ids
/// are placeholders (`usize::MAX`); the explore loop assigns fresh unique
/// ids when a mutant is scheduled.
pub fn mutate_input(parent: &TestInput) -> Vec<TestInput> {
    let mut out: Vec<TestInput> = Vec::new();
    let mut push = |ty: DataType, value: Value, validity: Validity, label: String| {
        out.push(TestInput {
            id: usize::MAX,
            column_type: ty,
            value,
            validity,
            label,
            expected_back: None,
        });
    };
    let label = |op: &str| format!("mutant[{op}] of #{} ({})", parent.id, parent.label);
    match &parent.column_type {
        DataType::Byte | DataType::Short | DataType::Int | DataType::Long => {
            let ty = parent.column_type.clone();
            let (max, min): (i128, i128) = match ty {
                DataType::Byte => (i8::MAX as i128, i8::MIN as i128),
                DataType::Short => (i16::MAX as i128, i16::MIN as i128),
                DataType::Int => (i32::MAX as i128, i32::MIN as i128),
                _ => (i64::MAX as i128, i64::MIN as i128),
            };
            // Overflow by one: carried widened (or as a decimal for LONG).
            let carrier = if ty == DataType::Long {
                Value::Decimal(Decimal::parse(&(max + 1).to_string()).expect("static"))
            } else {
                Value::Long((max + 1) as i64)
            };
            push(ty.clone(), carrier, Validity::Invalid, label("overflow+1"));
            push(
                ty.clone(),
                Value::Str((min - 1).to_string()),
                Validity::Invalid,
                label("underflow-as-string"),
            );
            push(
                ty,
                Value::Str(" 7 ".into()),
                Validity::Invalid,
                label("padded-numeral"),
            );
        }
        DataType::Decimal(p, s) => {
            let ty = DataType::Decimal(*p, *s);
            if *s >= 1 {
                push(
                    ty.clone(),
                    dec("1.5"),
                    Validity::Valid,
                    label("runtime-scale"),
                );
            }
            // One more fractional digit than the declared scale holds.
            push(
                ty.clone(),
                dec(&format!("1.{}", "1".repeat(*s as usize + 1))),
                Validity::Invalid,
                label("excess-scale"),
            );
            push(
                ty,
                Value::Str("1.2.3".into()),
                Validity::Invalid,
                label("garbage-text"),
            );
        }
        DataType::Boolean => {
            for s in ["yes", "t", "0"] {
                push(
                    DataType::Boolean,
                    Value::Str(s.into()),
                    Validity::Invalid,
                    label(&format!("hive-lenient-{s}")),
                );
            }
        }
        DataType::Char(n) => {
            push(
                DataType::Char(*n),
                Value::Str("z".repeat(*n as usize + 1)),
                Validity::Invalid,
                label("overlong"),
            );
            if *n > 1 {
                push(
                    DataType::Char(*n),
                    Value::Str("m".into()),
                    Validity::Valid,
                    label("short-padded"),
                );
            }
            push(
                DataType::Varchar(*n),
                Value::Str("v".repeat(*n as usize + 2)),
                Validity::Invalid,
                label("as-varchar-overlong"),
            );
        }
        DataType::Varchar(n) => {
            push(
                DataType::Varchar(*n),
                Value::Str("w".repeat(*n as usize + 1)),
                Validity::Invalid,
                label("overlong"),
            );
            push(
                DataType::Char(*n),
                Value::Str("c".repeat(*n as usize + 1)),
                Validity::Invalid,
                label("as-char-overlong"),
            );
        }
        DataType::String => {
            push(
                DataType::Varchar(4),
                Value::Str("toolong".into()),
                Validity::Invalid,
                label("narrowed-to-varchar"),
            );
            push(
                DataType::Boolean,
                Value::Str("maybe".into()),
                Validity::Invalid,
                label("retyped-boolean"),
            );
        }
        DataType::Date => {
            push(
                DataType::Date,
                Value::Date(parse_date("9999-12-31").expect("static") + 40),
                Validity::Invalid,
                label("beyond-max-date"),
            );
            push(
                DataType::Date,
                Value::Str("2021-02-30".into()),
                Validity::Invalid,
                label("impossible-date"),
            );
        }
        DataType::Timestamp => {
            // Rebase into the two historic ranges the formats disagree on.
            push(
                DataType::Timestamp,
                ts("1880-07-01 12:00:00"),
                Validity::Valid,
                label("pre-1900"),
            );
            push(
                DataType::Timestamp,
                ts("1400-01-01 00:00:00"),
                Validity::Valid,
                label("pre-1582"),
            );
            push(
                DataType::Timestamp,
                Value::Str("2021-01-01 25:00:00".into()),
                Validity::Invalid,
                label("impossible-time"),
            );
        }
        DataType::Interval => {
            if let Value::Interval { months, micros } = &parent.value {
                push(
                    DataType::Interval,
                    Value::Interval {
                        months: -months,
                        micros: -micros,
                    },
                    Validity::Valid,
                    label("sign-flip"),
                );
            }
            push(
                DataType::Interval,
                Value::Interval {
                    months: 0,
                    micros: -1,
                },
                Validity::Valid,
                label("negative-microsecond"),
            );
        }
        DataType::Struct(fields) => {
            // Flip the case of every field name in both schema and value:
            // the case-folding probe (D14).
            let flip = |name: &str| -> String {
                if name == name.to_ascii_lowercase() {
                    let mut cs: Vec<char> = name.chars().collect();
                    if let Some(first) = cs.first_mut() {
                        *first = first.to_ascii_uppercase();
                    }
                    cs.into_iter().collect()
                } else {
                    name.to_ascii_lowercase()
                }
            };
            let flipped_ty = DataType::Struct(
                fields
                    .iter()
                    .map(|f| StructField::new(flip(&f.name), f.data_type.clone()))
                    .collect(),
            );
            if let Value::Struct(vs) = &parent.value {
                let flipped_v =
                    Value::Struct(vs.iter().map(|(n, v)| (flip(n), v.clone())).collect());
                push(
                    flipped_ty,
                    flipped_v,
                    parent.validity,
                    label("case-flip-fields"),
                );
            }
            // Overflow a small-int field if the struct has one.
            if fields
                .iter()
                .any(|f| matches!(f.data_type, DataType::Byte | DataType::Short))
            {
                if let Value::Struct(vs) = &parent.value {
                    let v = Value::Struct(
                        vs.iter()
                            .map(|(n, _)| (n.clone(), Value::Int(40_000)))
                            .collect(),
                    );
                    push(
                        parent.column_type.clone(),
                        v,
                        Validity::Invalid,
                        label("field-overflow"),
                    );
                }
            }
        }
        DataType::Map(k, v) => {
            // Swap the key type between STRING and INT: the Avro
            // non-string-key probe (D04) in both directions.
            let (new_key, mk): (DataType, fn(usize) -> Value) = if **k == DataType::String {
                (DataType::Int, |i| Value::Int(i as i32))
            } else {
                (DataType::String, |i| Value::Str(format!("k{i}")))
            };
            if let Value::Map(pairs) = &parent.value {
                let swapped = Value::Map(
                    pairs
                        .iter()
                        .enumerate()
                        .map(|(i, (_, val))| (mk(i), val.clone()))
                        .collect(),
                );
                push(
                    DataType::Map(Box::new(new_key), v.clone()),
                    swapped,
                    parent.validity,
                    label("key-type-swap"),
                );
            }
        }
        DataType::Array(elem) => {
            if **elem == DataType::Int {
                push(
                    DataType::Array(Box::new(DataType::Byte)),
                    Value::Array(vec![Value::Int(300)]),
                    Validity::Invalid,
                    label("narrowed-element-overflow"),
                );
            }
            push(
                parent.column_type.clone(),
                Value::Array(vec![]),
                Validity::Valid,
                label("emptied"),
            );
        }
        DataType::Float | DataType::Double | DataType::Binary => {
            push(
                parent.column_type.clone(),
                Value::Str("not-a-number".into()),
                Validity::Invalid,
                label("garbage-text"),
            );
        }
    }
    out
}

/// The wide-table schema bulk campaigns run over: every fixed-width lane
/// plus strings, binary, and declared-scale decimals. CHAR/VARCHAR,
/// FLOAT, INTERVAL, and nested types are left to the 422-input catalogue —
/// their round trips legitimately transform values (padding, f32/f64
/// round-trips, interval-to-string resolution), which the bulk write–read
/// oracle deliberately does not model.
pub fn bulk_schema() -> Vec<StructField> {
    vec![
        StructField::new("b", DataType::Boolean),
        StructField::new("i", DataType::Int),
        StructField::new("l", DataType::Long),
        StructField::new("d", DataType::Double),
        StructField::new("dec", DataType::Decimal(18, 2)),
        StructField::new("s", DataType::String),
        StructField::new("bin", DataType::Binary),
        StructField::new("dt", DataType::Date),
        StructField::new("ts", DataType::Timestamp),
    ]
}

fn bulk_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic bulk column data for [`bulk_schema`] column `ty`:
/// `rows` cells seeded by `seed`, with a NULL roughly every 16th slot.
///
/// Values are *clean round-trippers* by construction — decimals already at
/// the declared scale, dates and timestamps inside both engines' supported
/// ranges and after the 1900 ORC cutover — so every plan of a fault-free
/// bulk campaign must read them back unchanged and the write–read oracle
/// can compare whole columns.
pub fn generate_bulk_column(ty: &DataType, rows: usize, seed: u64) -> ValueColumn {
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    // Distinct streams per column type so two columns never alias.
    for byte in ty.sql_name().bytes() {
        s = s.wrapping_mul(0x100_0000_01b3) ^ byte as u64;
    }
    let mut col = ValueColumn::with_capacity(ty, rows);
    for i in 0..rows {
        let r = bulk_rng(&mut s);
        if r.is_multiple_of(16) {
            col.push(&Value::Null);
            continue;
        }
        let v = match ty {
            DataType::Boolean => Value::Boolean(r & 1 == 1),
            DataType::Int => Value::Int(r as i32),
            DataType::Long => Value::Long(r as i64),
            DataType::Double => Value::Double((r as i64 as f64) / 1024.0),
            DataType::Decimal(p, scale) => {
                // At most p digits, stored at exactly the declared scale.
                let digits = 10i128.pow(*p as u32 - 1);
                let unscaled = (r as i128 % digits) - digits / 2;
                Value::Decimal(
                    Decimal::new(unscaled, *p, *scale).expect("bulk decimal within bounds"),
                )
            }
            DataType::String => Value::Str(format!("row-{i}-{:08x}-\u{00e9}\u{4e16}", r as u32)),
            DataType::Binary => Value::Binary(r.to_le_bytes()[..(r % 8 + 1) as usize].to_vec()),
            // 1970-01-01 .. ~2100: inside both engines' ranges and past
            // every Julian/ORC cutover.
            DataType::Date => Value::Date((r % 47_000) as i32),
            DataType::Timestamp => Value::Timestamp((r % 4_000_000_000_000_000) as i64),
            other => panic!("generate_bulk_column: unsupported bulk type {other:?}"),
        };
        col.push(&v);
    }
    col
}

/// All columns of [`bulk_schema`] at `rows` rows.
pub fn generate_bulk_columns(rows: usize, seed: u64) -> Vec<ValueColumn> {
    bulk_schema()
        .iter()
        .map(|f| generate_bulk_column(&f.data_type, rows, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_nonempty_with_unique_ids() {
        let inputs = generate_inputs();
        assert!(!inputs.is_empty());
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(input.id, i);
        }
    }

    #[test]
    fn every_declared_column_type_is_exercised() {
        let inputs = generate_inputs();
        let has = |p: fn(&DataType) -> bool| inputs.iter().any(|i| p(&i.column_type));
        assert!(has(|t| matches!(t, DataType::Byte)));
        assert!(has(|t| matches!(t, DataType::Decimal(_, _))));
        assert!(has(|t| matches!(t, DataType::Char(_))));
        assert!(has(|t| matches!(t, DataType::Interval)));
        assert!(has(|t| matches!(t, DataType::Map(_, _))));
        assert!(has(|t| matches!(t, DataType::Struct(_))));
        assert!(has(|t| matches!(t, DataType::Timestamp)));
        assert!(has(|t| matches!(t, DataType::Binary)));
    }

    #[test]
    fn catalogue_counts_match_the_paper() {
        // Section 8.1: "In total, we generated 422 values ...; 210 are
        // valid and 212 are invalid."
        let inputs = generate_inputs();
        let valid = inputs
            .iter()
            .filter(|i| i.validity == Validity::Valid)
            .count();
        assert_eq!(inputs.len(), 422);
        assert_eq!(valid, 210);
        assert_eq!(inputs.len() - valid, 212);
    }
}
