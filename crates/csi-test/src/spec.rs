//! The serializable campaign surface: [`CampaignSpec`].
//!
//! A spec is the *entire* description of a campaign — inputs, modes,
//! seeds, thresholds — as plain serde-serializable data. One spec type is
//! shared by every way a campaign can be launched:
//!
//! - in-process, through the [`Campaign`](crate::Campaign) builder (whose
//!   methods are thin mutations of an inner spec);
//! - over the wire, as the request body of the `csi-serve` daemon;
//! - from bench binaries, which serialize the exact spec they measured.
//!
//! [`Campaign::from_spec`](crate::Campaign::from_spec) /
//! [`Campaign::spec`](crate::Campaign::spec) round-trip losslessly, and
//! [`CampaignSpec::validate`] replaces the builder-era panics with typed
//! [`SpecError`]s — a wire request with a bad shard count or `k > 3` is
//! rejected with a reason, not a worker crash.

use crate::corpus::{self, CorpusShape};
use crate::generator::{self, TestInput};
use crate::plan::Experiment;
use csi_core::detect::DetectorConfig;
use csi_core::fault::FaultPlan;
use minihive::metastore::StorageFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound on [`CampaignSpec::shards`]: beyond this a "campaign" is a
/// fork bomb, not a worker pool.
pub const MAX_SHARDS: usize = 256;

/// Upper bound on [`CampaignSpec::kfaults`], matching the `k ≤ 3`
/// enumeration limit of [`csi_core::fault::fault_combinations`].
pub const MAX_KFAULTS: usize = 3;

/// Which test inputs a campaign runs over.
///
/// The standard 422-input catalogue is referenced *by name* rather than
/// shipped inline, so a wire-serialized spec for a full campaign is a few
/// hundred bytes, and both ends provably run the identical catalogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputSelection {
    /// The full generated catalogue ([`generator::generate_inputs`]).
    Catalogue,
    /// The first `n` inputs of the generated catalogue (clamped to its
    /// length) — the cheap slice used by smokes and property tests.
    CataloguePrefix(usize),
    /// Explicit inputs carried by the spec itself.
    Inline(Vec<TestInput>),
    /// The full catalogue *plus* a synthesized real-shaped corpus
    /// ([`corpus::synthesize_inputs`]): the shape and seed travel on the
    /// wire, both ends synthesize the identical inputs. Corpus inputs get
    /// ids directly above the catalogue, and explore mode schedules and
    /// tags them as a distinct `corpus` origin.
    Corpus {
        /// Shape of the synthesized table.
        shape: CorpusShape,
        /// Synthesis seed (independent of the campaign seed, so the same
        /// corpus can ride different exploration schedules).
        seed: u64,
    },
}

impl InputSelection {
    /// Materializes the selection into concrete inputs.
    pub fn resolve(&self) -> Vec<TestInput> {
        match self {
            InputSelection::Catalogue => generator::generate_inputs(),
            InputSelection::CataloguePrefix(n) => {
                let mut inputs = generator::generate_inputs();
                inputs.truncate(*n);
                inputs
            }
            InputSelection::Inline(inputs) => inputs.clone(),
            InputSelection::Corpus { shape, seed } => {
                let mut inputs = generator::generate_inputs();
                let first_id = inputs.len();
                inputs.extend(corpus::synthesize_inputs(shape, *seed, first_id));
                inputs
            }
        }
    }

    /// The id of the first corpus-synthesized input, when this selection
    /// carries a corpus region ([`InputSelection::Corpus`] appends it
    /// directly above the catalogue). Explore mode uses this floor to
    /// schedule the corpus region first and attribute discoveries to the
    /// `corpus` origin.
    pub fn corpus_floor(&self) -> Option<usize> {
        match self {
            InputSelection::Corpus { .. } => Some(generator::generate_inputs().len()),
            _ => None,
        }
    }
}

/// A typed reason a [`CampaignSpec`] cannot run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecError {
    /// `shards` exceeds [`MAX_SHARDS`].
    BadShards {
        /// The requested worker count.
        shards: usize,
        /// The maximum accepted.
        max: usize,
    },
    /// `chunk_size` is zero — no shard could hold an input.
    BadChunkSize,
    /// `kfaults` exceeds [`MAX_KFAULTS`].
    BadKFaults {
        /// The requested combination arity.
        kfaults: usize,
        /// The maximum accepted.
        max: usize,
    },
    /// An explore budget of zero observations was requested explicitly.
    /// (The builder's `.explore(0)` maps to "no explore pass" instead,
    /// preserving its documented degrade-to-the-standard-grid behavior.)
    ZeroExploreBudget,
    /// `jobs` is zero — a compound pass needs at least one job.
    NoJobs,
    /// The corpus shape of an [`InputSelection::Corpus`] cannot
    /// synthesize a table (see [`CorpusShape::validate`]).
    BadCorpusShape {
        /// The human-readable reason the shape was rejected.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadShards { shards, max } => {
                write!(f, "shard count {shards} exceeds the maximum of {max}")
            }
            SpecError::BadChunkSize => write!(f, "chunk size must be at least 1"),
            SpecError::BadKFaults { kfaults, max } => {
                write!(
                    f,
                    "fault-combination arity {kfaults} exceeds the maximum of {max}"
                )
            }
            SpecError::ZeroExploreBudget => {
                write!(f, "explore budget must be at least 1 observation")
            }
            SpecError::NoJobs => write!(f, "compound campaigns need at least one job"),
            SpecError::BadCorpusShape { reason } => {
                write!(f, "corpus shape cannot synthesize: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The complete, serializable description of one campaign.
///
/// Field semantics are exactly those of the corresponding
/// [`Campaign`](crate::Campaign) builder methods; the builder is now a
/// thin mutation layer over this struct. Runtime-only attachments (the
/// detection tap, a shared deployment pool) deliberately live on the
/// builder, not here: a spec describes *what* to run, never *where its
/// output goes*, so serializing and re-running a spec is always
/// byte-deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Inputs to run.
    pub inputs: InputSelection,
    /// Experiments to run.
    pub experiments: Vec<Experiment>,
    /// Storage formats to exercise.
    pub formats: Vec<StorageFormat>,
    /// Spark configuration overrides applied to every deployment.
    pub spark_overrides: Vec<(String, String)>,
    /// Drop each table right after its observation is recorded.
    pub recycle_tables: bool,
    /// Worker count; `0` or `1` runs serially.
    pub shards: usize,
    /// Maximum inputs per shard (sharded cross-test campaigns only).
    pub chunk_size: usize,
    /// Fault plan to arm (cross-test mode) or cell catalogue (matrix
    /// mode).
    pub faults: Option<FaultPlan>,
    /// `Some(seed)` switches the campaign to fault-matrix mode.
    pub matrix_seed: Option<u64>,
    /// Record an interaction trace per observation.
    pub trace: bool,
    /// Run the online CSI failure detector.
    pub detect: bool,
    /// Detector thresholds.
    pub detector_config: DetectorConfig,
    /// Exploration/mutation seed.
    pub seed: u64,
    /// `Some(budget)` switches the campaign to coverage-guided explore
    /// mode. `Some(0)` is rejected by [`validate`](CampaignSpec::validate).
    pub explore_budget: Option<usize>,
    /// Arity of the compound fault-set pass; `0` disables it.
    pub kfaults: usize,
    /// Jobs sharing each compound trial's deployment.
    pub jobs: usize,
}

impl Default for CampaignSpec {
    /// The default campaign over the full catalogue: every experiment and
    /// format, serial, tracing on, no faults, no detection — identical to
    /// `Campaign::new(&generate_inputs())`.
    fn default() -> CampaignSpec {
        CampaignSpec {
            inputs: InputSelection::Catalogue,
            experiments: Experiment::ALL.to_vec(),
            formats: StorageFormat::ALL.to_vec(),
            spark_overrides: Vec::new(),
            recycle_tables: false,
            shards: 1,
            chunk_size: 64,
            faults: None,
            matrix_seed: None,
            trace: true,
            detect: false,
            detector_config: DetectorConfig::default(),
            seed: 42,
            explore_budget: None,
            kfaults: 0,
            jobs: 2,
        }
    }
}

impl CampaignSpec {
    /// Checks every typed-rejection rule, returning the first violation.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.shards > MAX_SHARDS {
            return Err(SpecError::BadShards {
                shards: self.shards,
                max: MAX_SHARDS,
            });
        }
        if self.chunk_size == 0 {
            return Err(SpecError::BadChunkSize);
        }
        if self.kfaults > MAX_KFAULTS {
            return Err(SpecError::BadKFaults {
                kfaults: self.kfaults,
                max: MAX_KFAULTS,
            });
        }
        if self.explore_budget == Some(0) {
            return Err(SpecError::ZeroExploreBudget);
        }
        if self.jobs == 0 {
            return Err(SpecError::NoJobs);
        }
        if let InputSelection::Corpus { shape, .. } = &self.inputs {
            if let Err(reason) = shape.validate() {
                return Err(SpecError::BadCorpusShape { reason });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates_and_round_trips_through_json() {
        let spec = CampaignSpec::default();
        spec.validate().expect("default spec is valid");
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: CampaignSpec = serde_json::from_str(&json).expect("spec deserializes");
        assert_eq!(back, spec);
    }

    #[test]
    fn inline_inputs_round_trip() {
        let inputs = InputSelection::CataloguePrefix(3).resolve();
        assert_eq!(inputs.len(), 3);
        let spec = CampaignSpec {
            inputs: InputSelection::Inline(inputs.clone()),
            ..CampaignSpec::default()
        };
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: CampaignSpec = serde_json::from_str(&json).expect("spec deserializes");
        assert_eq!(back, spec);
        assert_eq!(back.inputs.resolve(), inputs);
    }

    #[test]
    fn prefix_selection_is_clamped_to_the_catalogue() {
        // The catalogue carries NaN float inputs, so compare identity by
        // label rather than by (NaN-poisoned) `PartialEq` on values.
        let all = InputSelection::Catalogue.resolve();
        let clamped = InputSelection::CataloguePrefix(usize::MAX).resolve();
        assert_eq!(clamped.len(), all.len());
        let labels = |v: &[TestInput]| v.iter().map(|i| i.label.clone()).collect::<Vec<_>>();
        assert_eq!(labels(&clamped), labels(&all));
    }

    #[test]
    fn corpus_selection_appends_the_synthesized_region_above_the_catalogue() {
        let shape = CorpusShape::default();
        let selection = InputSelection::Corpus {
            shape: shape.clone(),
            seed: 7,
        };
        let catalogue = InputSelection::Catalogue.resolve();
        let inputs = selection.resolve();
        let floor = selection
            .corpus_floor()
            .expect("corpus selections carry a floor");
        assert_eq!(floor, catalogue.len());
        assert!(inputs.len() > catalogue.len(), "corpus region is non-empty");
        // The catalogue prefix is untouched; corpus ids continue from it.
        assert_eq!(inputs[floor - 1].id, floor - 1);
        assert_eq!(inputs[floor].id, floor);
        assert!(inputs[floor].label.starts_with("corpus "));
        assert_eq!(InputSelection::Catalogue.corpus_floor(), None);

        // The spec travels by (shape, seed), and both ends resolve the
        // identical inputs.
        let spec = CampaignSpec {
            inputs: selection,
            ..CampaignSpec::default()
        };
        spec.validate().expect("corpus spec is valid");
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: CampaignSpec = serde_json::from_str(&json).expect("spec deserializes");
        assert_eq!(back, spec);
        let labels = |v: &[TestInput]| v.iter().map(|i| i.label.clone()).collect::<Vec<_>>();
        assert_eq!(labels(&back.inputs.resolve()), labels(&inputs));
    }

    #[test]
    fn every_rejection_rule_fires_with_its_typed_error() {
        let base = CampaignSpec::default();
        let cases: Vec<(CampaignSpec, SpecError)> = vec![
            (
                CampaignSpec {
                    shards: MAX_SHARDS + 1,
                    ..base.clone()
                },
                SpecError::BadShards {
                    shards: MAX_SHARDS + 1,
                    max: MAX_SHARDS,
                },
            ),
            (
                CampaignSpec {
                    chunk_size: 0,
                    ..base.clone()
                },
                SpecError::BadChunkSize,
            ),
            (
                CampaignSpec {
                    kfaults: 4,
                    ..base.clone()
                },
                SpecError::BadKFaults {
                    kfaults: 4,
                    max: MAX_KFAULTS,
                },
            ),
            (
                CampaignSpec {
                    explore_budget: Some(0),
                    ..base.clone()
                },
                SpecError::ZeroExploreBudget,
            ),
            (
                CampaignSpec {
                    jobs: 0,
                    ..base.clone()
                },
                SpecError::NoJobs,
            ),
            (
                CampaignSpec {
                    inputs: InputSelection::Corpus {
                        shape: CorpusShape {
                            rows: 0,
                            ..CorpusShape::default()
                        },
                        seed: 1,
                    },
                    ..base.clone()
                },
                SpecError::BadCorpusShape {
                    reason: format!("corpus rows 0 outside 1..={}", corpus::MAX_ROWS),
                },
            ),
        ];
        for (spec, expected) in cases {
            assert_eq!(spec.validate().expect_err("invalid spec"), expected);
            // Errors render a human-readable reason for Rejected frames.
            assert!(!expected.to_string().is_empty());
        }
        base.validate().expect("base spec is valid");
    }
}
