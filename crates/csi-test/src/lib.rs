//! `csi-test` — the cross-system testing tool of Section 8.
//!
//! Composes `minispark` and `minihive` into the test setup of Figure 6:
//! inputs generated per data type (valid and invalid), written and read back
//! through every interface pair (SparkSQL, DataFrame, HiveQL) and storage
//! format (ORC, Parquet, Avro), checked by the write–read, error-handling,
//! and differential oracles, and classified into distinct discrepancies.

pub mod campaign;
pub mod classify;
pub mod contracts;
pub mod exec;
pub mod generator;
pub mod inject;
pub mod plan;
pub mod shard;
pub mod tolerate;

pub use campaign::{Campaign, CampaignOutcome};
pub use classify::active_ids;
#[allow(deprecated)]
pub use exec::run_cross_test;
pub use exec::{CrossTestConfig, CrossTestOutcome};
#[allow(deprecated)]
pub use inject::{run_fault_matrix, run_fault_matrix_sharded};
pub use inject::{
    fault_catalogue, small_fault_catalogue, FaultCase, FaultMatrixConfig, FaultMatrixReport,
};
pub use generator::{generate_inputs, TestInput, Validity};
pub use plan::{Experiment, Interface, TestPlan};
#[allow(deprecated)]
pub use shard::run_cross_test_parallel;
pub use shard::{CampaignMetrics, ParallelConfig, ParallelOutcome, WorkerStats};
pub use tolerate::{redundant_read, redundant_read_traced, ReadPath, RedundantRead};
