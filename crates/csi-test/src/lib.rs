//! `csi-test` — the cross-system testing tool of Section 8.
//!
//! Composes `minispark` and `minihive` into the test setup of Figure 6:
//! inputs generated per data type (valid and invalid), written and read back
//! through every interface pair (SparkSQL, DataFrame, HiveQL) and storage
//! format (ORC, Parquet, Avro), checked by the write–read, error-handling,
//! and differential oracles, and classified into distinct discrepancies.
//!
//! Beyond the exhaustive grid, [`Campaign::explore`] runs the same space
//! coverage-guided: boundary-crossing traces become coverage signatures,
//! novel inputs seed a mutating corpus, and every reported discrepancy is
//! shrunk ([`shrink`]) to a minimal reproducer.

pub mod bulk;
pub mod campaign;
pub mod classify;
pub mod contracts;
pub mod corpus;
pub mod exec;
pub mod explore;
pub mod generator;
pub mod inject;
pub mod multi;
pub mod plan;
pub mod pool;
pub mod shard;
pub mod shrink;
pub mod spec;
pub mod tolerate;

pub use bulk::{run_bulk, BulkConfig, BulkReport};
pub use campaign::{Campaign, CampaignOutcome};
pub use classify::active_ids;
pub use corpus::{infer, synthesize, synthesize_inputs, CorpusShape, CorpusTable, InferredTable};
pub use exec::{CrossTestConfig, CrossTestOutcome};
pub use generator::{generate_inputs, mutate_input, TestInput, Validity};
pub use inject::{
    fault_catalogue, small_fault_catalogue, FaultCase, FaultMatrixConfig, FaultMatrixReport,
};
pub use multi::{CompoundConfig, CompoundResult, InterleaveSchedule};
pub use plan::{Experiment, Interface, TestPlan};
pub use pool::{DeploymentPool, PoolStats};
pub use shard::{CampaignMetrics, ParallelConfig, ParallelOutcome, WorkerStats};
pub use shrink::{reproducer_triggers, Reproducer, ShrunkReproducer};
pub use spec::{CampaignSpec, InputSelection, SpecError, MAX_KFAULTS, MAX_SHARDS};
pub use tolerate::{redundant_read, redundant_read_traced, ReadPath, RedundantRead};
