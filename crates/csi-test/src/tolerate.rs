//! CSI fault tolerance through interface redundancy.
//!
//! Section 10 ("CSI fault tolerance"): "the downstream systems are well
//! available. A potential direction is to leverage the diversity of
//! existing interfaces to build interaction redundancy across systems."
//!
//! This module implements that idea for the Spark–Hive data plane: a
//! [`redundant_read`] that first reads through Spark's own deserializer
//! stack and, when that fails with a *discrepancy-shaped* error (not an
//! availability error), retries through the HiveQL interface — whose
//! independent serde layer tolerates several of the conditions Spark's
//! does not (widened small integers without annotations, foreign decimal
//! scales). The result records which path served the read, so operators
//! can see the interaction redundancy working.

use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::Channel;
use csi_core::value::Value;
use csi_core::InteractionError;
use minihive::hiveql::HiveQl;
use minispark::{SparkError, SparkSession};

/// Which interface ultimately served a redundant read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Spark's own reader worked.
    Primary,
    /// Spark failed with a discrepancy; HiveQL served the data.
    HiveFallback,
}

/// Result of a redundant read.
#[derive(Debug, Clone)]
pub struct RedundantRead {
    /// The rows, one value per column per row.
    pub rows: Vec<Vec<Value>>,
    /// The path that produced them.
    pub path: ReadPath,
    /// The primary-path error, when the fallback was used.
    pub primary_error: Option<InteractionError>,
}

/// Whether a Spark read error is a cross-system discrepancy (worth
/// retrying through another interface) rather than an availability or
/// user error (not worth retrying).
pub fn is_discrepancy_shaped(e: &SparkError) -> bool {
    matches!(
        e.code(),
        "INCOMPATIBLE_SCHEMA" | "SERDE_ERROR" | "FORMAT_ERROR" | "DECIMAL_DECODE"
    )
}

/// Reads a table with interface redundancy.
///
/// # Examples
///
/// See `tests/fault_tolerance.rs`, which tolerates the SPARK-39075 (D01)
/// and SPARK-39158 (D02) discrepancies end to end.
pub fn redundant_read(
    spark: &SparkSession,
    hive: &HiveQl,
    table: &str,
) -> Result<RedundantRead, InteractionError> {
    redundant_read_traced(spark, hive, table, None)
}

/// [`redundant_read`] with the fallback decision recorded as a boundary
/// crossing: the trace shows which interface ultimately served the read
/// (`served-by=primary` or `served-by=hive-fallback after <code>`), so
/// the interaction redundancy of Section 10 is observable in the same
/// causal sequence as the crossings that forced it.
pub fn redundant_read_traced(
    spark: &SparkSession,
    hive: &HiveQl,
    table: &str,
    ctx: Option<&CrossingContext>,
) -> Result<RedundantRead, InteractionError> {
    let decision = |info: &str| {
        if let Some(c) = ctx {
            c.note(
                BoundaryCall::new(Channel::Metastore, "redundant_read").with_payload(table),
                info,
            );
        }
    };
    match spark.sql(&format!("SELECT * FROM {table}")) {
        Ok(result) => {
            decision("served-by=primary");
            Ok(RedundantRead {
                rows: result.rows,
                path: ReadPath::Primary,
                primary_error: None,
            })
        }
        Err(primary) if is_discrepancy_shaped(&primary) => {
            let fallback = hive
                .execute(&format!("SELECT * FROM {table}"))
                .map_err(InteractionError::from)?;
            decision(&format!("served-by=hive-fallback after {}", primary.code()));
            Ok(RedundantRead {
                rows: fallback.rows,
                path: ReadPath::HiveFallback,
                primary_error: Some(primary.into()),
            })
        }
        Err(other) => Err(other.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use csi_core::fault::{Channel, FaultKind, FaultSpec, InjectionRegistry, Trigger};
    use csi_core::value::{DataType, Decimal, StructField};
    use minihdfs::MiniHdfs;
    use minihive::metastore::{Metastore, StorageFormat};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[allow(clippy::type_complexity)]
    fn injectable_deployment() -> (
        SparkSession,
        HiveQl,
        Arc<Mutex<Metastore>>,
        Arc<Mutex<MiniHdfs>>,
    ) {
        let sink = DiagSink::new();
        let ms = Arc::new(Mutex::new(Metastore::new()));
        let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));
        let spark = SparkSession::connect(ms.clone(), fs.clone(), sink.handle("minispark"));
        let hive = HiveQl::new(ms.clone(), fs.clone(), sink.handle("minihive"));
        (spark, hive, ms, fs)
    }

    fn deployment() -> (SparkSession, HiveQl) {
        let (spark, hive, _, _) = injectable_deployment();
        (spark, hive)
    }

    fn fault(channel: Channel, op: &str, kind: FaultKind, trigger: Trigger) -> FaultSpec {
        FaultSpec {
            id: format!("tolerate-{op}"),
            channel,
            op: op.to_string(),
            kind,
            trigger,
        }
    }

    #[test]
    fn healthy_tables_read_through_the_primary_path() {
        let (spark, hive) = deployment();
        spark.sql("CREATE TABLE t (a INT)").unwrap();
        spark.sql("INSERT INTO t VALUES (7)").unwrap();
        let r = redundant_read(&spark, &hive, "t").unwrap();
        assert_eq!(r.path, ReadPath::Primary);
        assert_eq!(r.rows, vec![vec![Value::Int(7)]]);
        assert!(r.primary_error.is_none());
    }

    #[test]
    fn d01_is_tolerated_through_the_hive_fallback() {
        // SPARK-39075: Spark cannot read its own Avro BYTE file...
        let (spark, hive) = deployment();
        let df = spark.dataframe();
        df.create_table(
            "b",
            &[StructField::new("c", DataType::Byte)],
            StorageFormat::Avro,
        )
        .unwrap();
        df.insert_into("b", &[vec![Value::Byte(5)]]).unwrap();
        // ... but the redundant reader still serves the data.
        let r = redundant_read(&spark, &hive, "b").unwrap();
        assert_eq!(r.path, ReadPath::HiveFallback);
        assert_eq!(r.rows, vec![vec![Value::Byte(5)]]);
        assert_eq!(
            r.primary_error.as_ref().map(|e| e.code.as_str()),
            Some("INCOMPATIBLE_SCHEMA")
        );
    }

    #[test]
    fn fallback_decisions_are_recorded_as_boundary_crossings() {
        let (spark, hive) = deployment();
        let df = spark.dataframe();
        df.create_table(
            "b",
            &[StructField::new("c", DataType::Byte)],
            StorageFormat::Avro,
        )
        .unwrap();
        df.insert_into("b", &[vec![Value::Byte(5)]]).unwrap();
        spark.sql("CREATE TABLE t (a INT)").unwrap();
        spark.sql("INSERT INTO t VALUES (7)").unwrap();
        let ctx = CrossingContext::new();
        // A healthy read notes the primary path...
        let r = redundant_read_traced(&spark, &hive, "t", Some(&ctx)).unwrap();
        assert_eq!(r.path, ReadPath::Primary);
        // ... and a tolerated discrepancy notes which interface healed it.
        let r = redundant_read_traced(&spark, &hive, "b", Some(&ctx)).unwrap();
        assert_eq!(r.path, ReadPath::HiveFallback);
        let lines = ctx.trace().compact();
        assert!(
            lines.iter().any(|l| l.contains("served-by=primary")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("served-by=hive-fallback after INCOMPATIBLE_SCHEMA")),
            "{lines:?}"
        );
    }

    #[test]
    fn d02_decimal_is_not_hive_recoverable_and_errors_cleanly() {
        // The D02 direction is inverted (Hive is the side that fails), so
        // the fallback cannot help; the reader must not mask that.
        let (spark, hive) = deployment();
        let df = spark.dataframe();
        df.create_table(
            "d",
            &[StructField::new("c", DataType::Decimal(10, 2))],
            StorageFormat::Orc,
        )
        .unwrap();
        df.insert_into("d", &[vec![Value::Decimal(Decimal::parse("1.5").unwrap())]])
            .unwrap();
        // Spark reads fine: primary path.
        let r = redundant_read(&spark, &hive, "d").unwrap();
        assert_eq!(r.path, ReadPath::Primary);
    }

    #[test]
    fn availability_errors_are_not_retried() {
        let (spark, hive) = deployment();
        let err = redundant_read(&spark, &hive, "missing").unwrap_err();
        assert_eq!(err.code, "HIVE_METASTORE");
    }

    #[test]
    fn injected_metastore_outage_is_surfaced_not_retried() {
        // An unavailable metastore is an availability fault, not a
        // discrepancy: the redundant reader must surface it, never mask
        // it behind the HiveQL fallback (which shares the metastore and
        // would fail anyway).
        let (spark, hive, ms, _fs) = injectable_deployment();
        spark.sql("CREATE TABLE t (a INT)").unwrap();
        spark.sql("INSERT INTO t VALUES (7)").unwrap();
        let reg = InjectionRegistry::new();
        reg.arm(fault(
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
            Trigger::Always,
        ));
        ms.lock().set_injection(reg.clone());
        let err = redundant_read(&spark, &hive, "t").unwrap_err();
        assert_eq!(err.code, "HIVE_METASTORE");
        assert!(!reg.fired().is_empty());
    }

    #[test]
    fn one_shot_hdfs_corruption_is_tolerated_through_the_fallback() {
        // A corrupted read produces a discrepancy-shaped serde failure on
        // the primary path; the one-shot trigger means the fallback's own
        // read of the same file is clean, so redundancy genuinely helps.
        let (spark, hive, _ms, fs) = injectable_deployment();
        let df = spark.dataframe();
        df.create_table(
            "t",
            &[StructField::new("a", DataType::Int)],
            StorageFormat::Orc,
        )
        .unwrap();
        df.insert_into("t", &[vec![Value::Int(7)]]).unwrap();
        let reg = InjectionRegistry::new();
        reg.arm(fault(
            Channel::Hdfs,
            "read",
            FaultKind::CorruptPayload,
            Trigger::OnCall(0),
        ));
        fs.lock().set_injection(reg.clone());
        let r = redundant_read(&spark, &hive, "t").unwrap();
        assert_eq!(r.path, ReadPath::HiveFallback);
        assert_eq!(r.rows, vec![vec![Value::Int(7)]]);
        let primary = r.primary_error.expect("primary path must have failed");
        assert!(
            matches!(
                primary.code.as_str(),
                "INCOMPATIBLE_SCHEMA" | "SERDE_ERROR" | "FORMAT_ERROR" | "DECIMAL_DECODE"
            ),
            "fallback fired on a non-discrepancy error: {}",
            primary.code
        );
        assert_eq!(reg.fired().len(), 1);
    }

    #[test]
    fn injected_hdfs_outage_is_surfaced_not_retried() {
        // SafeMode (availability) on every read: the primary fails with a
        // connector error and the fallback must NOT fire — retrying
        // through HiveQL cannot help when the filesystem itself is down.
        let (spark, hive, _ms, fs) = injectable_deployment();
        spark.sql("CREATE TABLE t (a INT)").unwrap();
        spark.sql("INSERT INTO t VALUES (7)").unwrap();
        let reg = InjectionRegistry::new();
        reg.arm(fault(
            Channel::Hdfs,
            "read",
            FaultKind::Unavailable,
            Trigger::Always,
        ));
        fs.lock().set_injection(reg.clone());
        let err = redundant_read(&spark, &hive, "t").unwrap_err();
        assert_eq!(err.code, "HDFS");
        assert!(!reg.fired().is_empty());
    }
}
