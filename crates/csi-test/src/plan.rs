//! Test plans: the interface matrix of Figure 6.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data-plane interface of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// Spark's SQL interface.
    SparkSql,
    /// Spark's DataFrame interface.
    DataFrame,
    /// Hive's HiveQL interface.
    HiveQl,
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interface::SparkSql => "SparkSQL",
            Interface::DataFrame => "DataFrame",
            Interface::HiveQl => "HiveQL",
        };
        f.write_str(s)
    }
}

/// One write-interface/read-interface pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TestPlan {
    /// The interface that creates the table and writes the value.
    pub write: Interface,
    /// The interface that reads it back.
    pub read: Interface,
}

impl fmt::Display for TestPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.write, self.read)
    }
}

/// The three experiments of the artifact (`spark_e2e`,
/// `spark_hive_oneway`, `hive_spark_oneway`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// Spark to Spark: SparkSQL/DataFrame × SparkSQL/DataFrame.
    SparkToSpark,
    /// Spark to Hive: SparkSQL/DataFrame → HiveQL.
    SparkToHive,
    /// Hive to Spark: HiveQL → SparkSQL/DataFrame.
    HiveToSpark,
}

impl Experiment {
    /// All experiments.
    pub const ALL: [Experiment; 3] = [
        Experiment::SparkToSpark,
        Experiment::SparkToHive,
        Experiment::HiveToSpark,
    ];

    /// The artifact's short name.
    pub fn short(&self) -> &'static str {
        match self {
            Experiment::SparkToSpark => "ss",
            Experiment::SparkToHive => "sh",
            Experiment::HiveToSpark => "hs",
        }
    }

    /// The plans this experiment runs (Figure 6's right column).
    pub fn plans(&self) -> Vec<TestPlan> {
        use Interface::*;
        match self {
            Experiment::SparkToSpark => vec![
                TestPlan {
                    write: SparkSql,
                    read: SparkSql,
                },
                TestPlan {
                    write: SparkSql,
                    read: DataFrame,
                },
                TestPlan {
                    write: DataFrame,
                    read: SparkSql,
                },
                TestPlan {
                    write: DataFrame,
                    read: DataFrame,
                },
            ],
            Experiment::SparkToHive => vec![
                TestPlan {
                    write: SparkSql,
                    read: HiveQl,
                },
                TestPlan {
                    write: DataFrame,
                    read: HiveQl,
                },
            ],
            Experiment::HiveToSpark => vec![
                TestPlan {
                    write: HiveQl,
                    read: SparkSql,
                },
                TestPlan {
                    write: HiveQl,
                    read: DataFrame,
                },
            ],
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Experiment::SparkToSpark => "Spark to Spark",
            Experiment::SparkToHive => "Spark to Hive",
            Experiment::HiveToSpark => "Hive to Spark",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6_has_eight_plans() {
        let total: usize = Experiment::ALL.iter().map(|e| e.plans().len()).sum();
        assert_eq!(total, 8);
        assert_eq!(Experiment::SparkToSpark.plans().len(), 4);
        assert_eq!(Experiment::SparkToHive.plans().len(), 2);
        assert_eq!(Experiment::HiveToSpark.plans().len(), 2);
    }

    #[test]
    fn plan_display_matches_artifact_style() {
        let p = TestPlan {
            write: Interface::SparkSql,
            read: Interface::HiveQl,
        };
        assert_eq!(p.to_string(), "SparkSQL->HiveQL");
        assert_eq!(Experiment::SparkToHive.short(), "sh");
    }
}
