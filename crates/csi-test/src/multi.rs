//! Compound campaigns: k-fault combinations crossed with multi-job
//! interleavings on a *shared* deployment.
//!
//! The paper's §7 observation is that most real cross-system incidents are
//! cascades: more than one thing is wrong at once, and the failure only
//! surfaces because two workloads meet inside a shared dependency (one
//! metastore, one filesystem). The single-fault matrix of
//! [`crate::inject`] cannot see those: every cell arms exactly one fault
//! against exactly one job. This module closes the gap.
//!
//! A *compound trial* runs several jobs — each an (experiment, plan,
//! format, input) cell decomposed into `create`/`insert`/`read` turns —
//! against **one** deployment, so they share the metastore, the
//! filesystem, the crossing context, and (crucially) the injection
//! registry's call counters. An [`InterleaveSchedule`] fixes the total
//! order of turns; the discrete-event simulator ([`csi_core::sim::Sim`])
//! dispatches them at virtual times taken from that order, so which job
//! observes an `OnCall`-triggered fault is a deterministic function of the
//! schedule. The armed faults come as a [`FaultSet`] from
//! [`csi_core::fault::fault_combinations`] (k ≤ 3, seeded, serializable).
//!
//! [`run_compound`] searches the (fault-set × interleaving) product space
//! coverage-guided, clusters the resulting discrepancies by the shared
//! trace's *causal prefix* ([`InteractionTrace::causal_prefix`] hashed by
//! [`prefix_fingerprint`]), and ddmin-shrinks each cluster to a minimal
//! fault-set + interleaving reproducer. Determinism is load-bearing, as
//! everywhere else in the harness: trials are hermetic (fresh deployment
//! per trial), workers claim trials off a bump counter into pre-sized
//! slots, and absorption happens in trial order — a sharded compound pass
//! is byte-identical to a serial one, pinned by `tests/kfault.rs`.

use crate::exec::{self, CrossTestConfig, Deployment};
use crate::generator::TestInput;
use crate::inject;
use crate::plan::{Experiment, TestPlan};
use csi_core::boundary::{CrossingContext, CrossingOutcome, InteractionTrace};
use csi_core::coverage::{prefix_fingerprint, CoverageMap, CoverageSignature};
use csi_core::fault::{
    classify_fault_outcome, fault_combinations, Channel, FaultOutcome, FaultSet, InjectedFault,
};
use csi_core::report::{ClusterRow, CompoundStats};
use csi_core::sim::{Millis, Sim};
use csi_core::value::Value;
use csi_core::InteractionError;
use minihive::metastore::StorageFormat;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Turns per job: `create`, `insert`, `read`.
pub const TURNS_PER_JOB: usize = 3;

/// Trials scheduled (and absorbed) per coverage round.
const ROUND: usize = 8;

/// One job of a compound trial: a cross-test cell that will be decomposed
/// into create/insert/read turns on the shared deployment.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The experiment the job belongs to.
    pub experiment: Experiment,
    /// The interface pair: write via `plan.write`, read via `plan.read`.
    pub plan: TestPlan,
    /// The storage format of the job's table.
    pub format: StorageFormat,
    /// The single-row input the job writes and reads back.
    pub input: TestInput,
}

impl JobSpec {
    /// The scenario key, in the fault-matrix probe-cell notation.
    pub fn scenario(&self) -> String {
        format!(
            "{}:{}:{}",
            self.experiment.short(),
            self.plan,
            self.format.name()
        )
    }
}

/// A deterministic total order over the turns of a multi-job trial.
///
/// `turns[k] = (job, turn)` means the `k`-th dispatched action is turn
/// `turn` (0 = create, 1 = insert, 2 = read) of job `job`. Per-job turn
/// order is always respected; schedules only permute *across* jobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleaveSchedule {
    /// Stable identifier ("identity", or `ilv-{seed:x}` for seeded draws).
    pub id: String,
    /// The dispatch order: `(job index, turn index)` pairs.
    pub turns: Vec<(usize, usize)>,
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl InterleaveSchedule {
    /// The identity schedule: jobs run back-to-back, in job order — the
    /// single-job serial semantics of the rest of the harness.
    pub fn identity(jobs: usize, turns_per_job: usize) -> InterleaveSchedule {
        let turns = (0..jobs)
            .flat_map(|j| (0..turns_per_job).map(move |t| (j, t)))
            .collect();
        InterleaveSchedule {
            id: "identity".into(),
            turns,
        }
    }

    /// A seeded permutation of boundary-crossing turns: repeatedly pick,
    /// via a splitmix draw, among the jobs that still have turns left.
    /// Pure function of `(jobs, turns_per_job, seed)`.
    pub fn seeded(jobs: usize, turns_per_job: usize, seed: u64) -> InterleaveSchedule {
        let mut state = seed ^ 0x0D15_EA5E_50DD_BA11_u64;
        let mut next_turn = vec![0usize; jobs];
        let mut turns = Vec::with_capacity(jobs * turns_per_job);
        while turns.len() < jobs * turns_per_job {
            let alive: Vec<usize> = (0..jobs)
                .filter(|&j| next_turn[j] < turns_per_job)
                .collect();
            let pick = alive[(splitmix(&mut state) % alive.len() as u64) as usize];
            turns.push((pick, next_turn[pick]));
            next_turn[pick] += 1;
        }
        InterleaveSchedule {
            id: format!("ilv-{seed:x}"),
            turns,
        }
    }
}

/// One oracle-positive job outcome of a compound trial: a fault fired
/// during the job's turns and the §9 classification came back as
/// swallowed, mistranslated, or a crash.
#[derive(Debug, Clone, Serialize)]
pub struct CompoundDiscrepancy {
    /// The armed fault combination.
    pub fault_set: FaultSet,
    /// The schedule the trial ran under.
    pub schedule: InterleaveSchedule,
    /// Index of the job that misbehaved.
    pub job: usize,
    /// The job's scenario key.
    pub scenario: String,
    /// The §9 bucket the job's error handling landed in.
    pub outcome: FaultOutcome,
    /// `channel/op` of the first faulted crossing inside the job's turns.
    pub crack: String,
    /// Length of the shared trace's causal prefix.
    pub prefix_len: usize,
    /// [`prefix_fingerprint`] of the shared trace's causal prefix — the
    /// co-failure clustering key. Identical for every discrepancy of one
    /// trial, because the trace is shared.
    pub fingerprint: u64,
}

/// The outcome of one compound trial.
#[derive(Debug, Clone)]
pub struct CompoundTrialReport {
    /// The shared boundary-crossing trace, all jobs merged in causal order.
    pub trace: InteractionTrace,
    /// Oracle-positive job outcomes, in job order.
    pub discrepancies: Vec<CompoundDiscrepancy>,
}

struct JobRun {
    table: String,
    create: Option<Result<(), InteractionError>>,
    insert: Option<Result<(), InteractionError>>,
    read: Option<Result<Vec<Value>, InteractionError>>,
    /// Crossing-index ranges `[start, end)` of each executed turn.
    spans: Vec<(usize, usize)>,
}

impl JobRun {
    fn surfaced(&self) -> Option<InteractionError> {
        if let Some(Err(e)) = &self.create {
            return Some(e.clone());
        }
        if let Some(Err(e)) = &self.insert {
            return Some(e.clone());
        }
        if let Some(Err(e)) = &self.read {
            return Some(e.clone());
        }
        None
    }

    fn write_ok(&self) -> bool {
        matches!(self.create, Some(Ok(()))) && matches!(self.insert, Some(Ok(())))
    }
}

struct JobSlot {
    spec: JobSpec,
    run: JobRun,
}

struct TrialState {
    d: Deployment,
    jobs: Vec<JobSlot>,
}

fn turn_handler(st: &mut TrialState, job: usize, turn: usize) {
    let n0 = st.d.crossing.trace().len();
    let spec = st.jobs[job].spec.clone();
    let table = st.jobs[job].run.table.clone();
    match turn {
        0 => {
            let r = exec::create_via(&st.d, spec.plan.write, &table, &spec.input, spec.format);
            st.jobs[job].run.create = Some(r);
        }
        1 => {
            if matches!(st.jobs[job].run.create, Some(Ok(()))) {
                let r = exec::insert_via(&st.d, spec.plan.write, &table, &spec.input);
                st.jobs[job].run.insert = Some(r);
            }
        }
        _ => {
            if st.jobs[job].run.write_ok() {
                let r = exec::read_via(&st.d, spec.plan.read, &table);
                st.jobs[job].run.read = Some(r);
            }
        }
    }
    let n1 = st.d.crossing.trace().len();
    st.jobs[job].run.spans.push((n0, n1));
}

/// Executes one compound trial: `jobs` share a single deployment, `set` is
/// armed on the shared crossing context, and the discrete-event simulator
/// dispatches the turns of `schedule` at consecutive virtual times.
/// Hermetic and deterministic: a fresh deployment per call, no wall clock,
/// no randomness.
pub fn run_compound_trial(
    jobs: &[JobSpec],
    set: &FaultSet,
    schedule: &InterleaveSchedule,
) -> CompoundTrialReport {
    let ctx = CrossingContext::new();
    ctx.arm_set(set);
    let d = Deployment::with_crossing(&CrossTestConfig::default(), ctx);
    let slots: Vec<JobSlot> = jobs
        .iter()
        .enumerate()
        .map(|(j, spec)| JobSlot {
            spec: spec.clone(),
            run: JobRun {
                table: format!(
                    "kj{j}_{}_{}",
                    spec.experiment.short(),
                    spec.format.name().to_ascii_lowercase()
                ),
                create: None,
                insert: None,
                read: None,
                spans: Vec::new(),
            },
        })
        .collect();
    let mut sim = Sim::new(TrialState { d, jobs: slots });
    for (k, &(job, turn)) in schedule.turns.iter().enumerate() {
        if job >= jobs.len() || turn >= TURNS_PER_JOB {
            continue;
        }
        sim.schedule_at(k as Millis, move |st: &mut TrialState, _ops| {
            turn_handler(st, job, turn);
        });
    }
    sim.run();
    let st = &sim.state;
    let trace = st.d.crossing.trace();
    let prefix = trace.causal_prefix();
    let fingerprint = prefix_fingerprint(&prefix);
    let mut discrepancies = Vec::new();
    for (j, slot) in st.jobs.iter().enumerate() {
        let in_spans = |i: usize| slot.run.spans.iter().any(|&(a, b)| a <= i && i < b);
        let fired: Vec<InjectedFault> = trace
            .crossings
            .iter()
            .enumerate()
            .filter(|(i, _)| in_spans(*i))
            .filter_map(|(_, c)| match &c.outcome {
                CrossingOutcome::Faulted { fault } => Some(fault.clone()),
                _ => None,
            })
            .collect();
        if fired.is_empty() {
            continue;
        }
        let surfaced = slot.run.surfaced();
        let outcome = classify_fault_outcome(&fired, surfaced.as_ref());
        if !matches!(
            outcome,
            FaultOutcome::Swallowed | FaultOutcome::Mistranslated | FaultOutcome::Crash
        ) {
            continue;
        }
        let crack = trace
            .crossings
            .iter()
            .enumerate()
            .find(|(i, c)| in_spans(*i) && matches!(c.outcome, CrossingOutcome::Faulted { .. }))
            .map(|(_, c)| format!("{}/{}", c.call.channel, c.call.op))
            .unwrap_or_default();
        discrepancies.push(CompoundDiscrepancy {
            fault_set: set.clone(),
            schedule: schedule.clone(),
            job: j,
            scenario: slot.spec.scenario(),
            outcome,
            crack,
            prefix_len: prefix.len(),
            fingerprint,
        });
    }
    CompoundTrialReport {
        trace,
        discrepancies,
    }
}

/// The default job roster: `n` probe-input cells spread across the
/// experiment catalogue, cross-system pairs first — the workloads most
/// likely to meet inside the shared metastore and filesystem.
pub fn default_jobs(n: usize) -> Vec<JobSpec> {
    let order = [
        Experiment::SparkToHive,
        Experiment::HiveToSpark,
        Experiment::SparkToSpark,
    ];
    let mut combos = Vec::new();
    for exp in order {
        for plan in exp.plans() {
            for &fmt in StorageFormat::ALL.iter() {
                combos.push((exp, plan, fmt));
            }
        }
    }
    (0..n)
        .map(|j| {
            let (experiment, plan, format) = combos[(j * 7) % combos.len()];
            JobSpec {
                experiment,
                plan,
                format,
                input: inject::probe_input(),
            }
        })
        .collect()
}

/// Configuration of a compound (fault-set × interleaving) campaign.
#[derive(Debug, Clone)]
pub struct CompoundConfig {
    /// Seed for the fault catalogue, the combination draws, and the
    /// interleaving draws.
    pub seed: u64,
    /// Maximum fault-set arity (clamped to 1..=3).
    pub kfaults: usize,
    /// Number of jobs sharing each trial's deployment (clamped to 1..=4).
    pub jobs: usize,
    /// Maximum trials executed by the coverage-guided search (the shrink
    /// pass runs outside this budget and is accounted in
    /// [`CompoundStats::shrink_checks`]).
    pub budget: usize,
    /// Worker threads; `0` or `1` runs serially. Byte-identical results at
    /// any worker count.
    pub shards: usize,
    /// Seeded interleavings drawn per campaign, beyond identity.
    pub schedules: usize,
    /// Seeded fault combinations drawn per arity (k = 2, 3).
    pub sets_per_k: usize,
}

impl CompoundConfig {
    /// The standard compound campaign: two jobs, three seeded
    /// interleavings, six seeded sets per arity, a 96-trial budget.
    pub fn new(seed: u64, kfaults: usize) -> CompoundConfig {
        CompoundConfig {
            seed,
            kfaults,
            jobs: 2,
            budget: 96,
            shards: 1,
            schedules: 3,
            sets_per_k: 6,
        }
    }
}

/// The result of [`run_compound`].
#[derive(Debug, Clone)]
pub struct CompoundResult {
    /// Aggregates for the `Render` path.
    pub stats: CompoundStats,
    /// One row per co-failure cluster, in fingerprint order, each carrying
    /// its shrunk reproducer.
    pub clusters: Vec<ClusterRow>,
    /// Every discrepancy the search found, in trial order.
    pub discrepancies: Vec<CompoundDiscrepancy>,
}

fn execute_batch(
    jobs: &[JobSpec],
    sets: &[FaultSet],
    schedules: &[InterleaveSchedule],
    batch: &[(usize, usize)],
    shards: usize,
) -> Vec<CompoundTrialReport> {
    let workers = shards.clamp(1, batch.len().max(1));
    if workers <= 1 {
        return batch
            .iter()
            .map(|&(si, hi)| run_compound_trial(jobs, &sets[si], &schedules[hi]))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CompoundTrialReport>>> =
        (0..batch.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                let (si, hi) = batch[i];
                let report = run_compound_trial(jobs, &sets[si], &schedules[hi]);
                *slots[i].lock() = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot claimed and filled"))
        .collect()
}

/// Sub-sets of `set` at the given arity, in member order — the ddmin
/// candidate order of the cluster shrinker.
fn subsets_of(set: &FaultSet, size: usize) -> Vec<FaultSet> {
    let n = set.faults.len();
    let mut out = Vec::new();
    if size == 1 {
        for f in &set.faults {
            out.push(FaultSet::new(vec![f.clone()]));
        }
    } else if size == 2 {
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(FaultSet::new(vec![
                    set.faults[i].clone(),
                    set.faults[j].clone(),
                ]));
            }
        }
    }
    out
}

/// Runs the coverage-guided compound campaign: enumerate the (fault-set ×
/// interleaving) product space, execute trials round by round (promoting
/// every schedule of a fault set whose trial produced a novel signature
/// *and* a discrepancy), cluster the discrepancies by causal-prefix
/// fingerprint, and shrink each cluster to a minimal fault-set +
/// interleaving reproducer.
pub fn run_compound(config: &CompoundConfig) -> CompoundResult {
    let jobs = default_jobs(config.jobs.clamp(1, 4));
    let kfaults = config.kfaults.clamp(1, 3);
    let catalogue: Vec<_> = inject::fault_catalogue(config.seed)
        .faults
        .into_iter()
        .filter(|f| matches!(f.channel, Channel::Metastore | Channel::Hdfs))
        .collect();
    let sets = fault_combinations(&catalogue, kfaults, config.seed, config.sets_per_k);
    let mut schedules = vec![InterleaveSchedule::identity(jobs.len(), TURNS_PER_JOB)];
    for i in 0..config.schedules {
        schedules.push(InterleaveSchedule::seeded(
            jobs.len(),
            TURNS_PER_JOB,
            config.seed.wrapping_add(i as u64 + 1),
        ));
    }
    // Seeded draws can collide with identity (always, for one job); keep
    // the first occurrence of each distinct turn order.
    let mut seen_turns = BTreeSet::new();
    schedules.retain(|s| seen_turns.insert(s.turns.clone()));

    let space = sets.len() * schedules.len();
    let mut map = CoverageMap::new();
    let mut scheduled: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut pending: VecDeque<(usize, usize)> = VecDeque::new();
    let mut cursor = 0usize;
    let mut executed = 0usize;
    let mut discrepancies: Vec<CompoundDiscrepancy> = Vec::new();
    while executed < config.budget {
        let mut batch = Vec::new();
        while batch.len() < ROUND.min(config.budget - executed) {
            let next = pending.pop_front().or_else(|| {
                // Grid filler: fault-set-major, schedule-minor.
                while cursor < space {
                    let key = (cursor / schedules.len(), cursor % schedules.len());
                    cursor += 1;
                    if !scheduled.contains(&key) {
                        return Some(key);
                    }
                }
                None
            });
            // Note the closure above returns un-filtered pending keys too.
            let Some(key) = next else { break };
            if scheduled.contains(&key) {
                continue;
            }
            scheduled.insert(key);
            batch.push(key);
        }
        if batch.is_empty() {
            break;
        }
        let reports = execute_batch(&jobs, &sets, &schedules, &batch, config.shards);
        for (&(si, _hi), report) in batch.iter().zip(reports) {
            executed += 1;
            let mut sig = CoverageSignature::from_trace(&report.trace);
            sig.tag(format!("k:{}", sets[si].len()));
            for d in &report.discrepancies {
                sig.tag(format!("j{}:{}", d.job, d.outcome));
            }
            let novel = map.observe(&sig, executed);
            if novel && !report.discrepancies.is_empty() {
                // A fault set that just exposed new behaviour earns its
                // remaining interleavings ahead of fresh grid draws.
                for hi in 0..schedules.len() {
                    if !scheduled.contains(&(si, hi)) {
                        pending.push_back((si, hi));
                    }
                }
            }
            discrepancies.extend(report.discrepancies);
        }
    }

    // ---- Co-failure clustering by shared causal-prefix fingerprint. ----
    let mut clusters: BTreeMap<u64, Vec<CompoundDiscrepancy>> = BTreeMap::new();
    for d in &discrepancies {
        clusters.entry(d.fingerprint).or_default().push(d.clone());
    }

    // ---- Per-cluster ddmin shrink to a minimal reproducer. ----
    let identity = InterleaveSchedule::identity(jobs.len(), TURNS_PER_JOB);
    let mut shrink_checks = 0usize;
    let mut rows = Vec::new();
    for (&fp, members) in &clusters {
        let rep = &members[0];
        let mut best_set = rep.fault_set.clone();
        let mut best_sched = rep.schedule.clone();
        let mut reproduces =
            |set: &FaultSet, sched: &InterleaveSchedule| -> Option<CompoundDiscrepancy> {
                shrink_checks += 1;
                run_compound_trial(&jobs, set, sched)
                    .discrepancies
                    .into_iter()
                    .find(|d| d.fingerprint == fp)
            };
        // Interleaving first: the identity schedule is the simplest
        // reproducer a bug report can carry.
        if best_sched.turns != identity.turns && reproduces(&best_set, &identity).is_some() {
            best_sched = identity.clone();
        }
        // ddmin-lite over the fault set: singletons, then pairs.
        'sizes: for size in [1usize, 2] {
            if best_set.len() <= size {
                break;
            }
            for candidate in subsets_of(&best_set, size) {
                if reproduces(&candidate, &best_sched).is_some() {
                    best_set = candidate;
                    break 'sizes;
                }
            }
        }
        // The final reproducer run pins the row's scenario; fall back to
        // the representative if the shrunk pair regressed (it cannot, but
        // the fallback keeps the row total even if it did).
        let witness = reproduces(&best_set, &best_sched);
        let (scenario, crack, prefix_len) = match &witness {
            Some(d) => (d.scenario.clone(), d.crack.clone(), d.prefix_len),
            None => (rep.scenario.clone(), rep.crack.clone(), rep.prefix_len),
        };
        rows.push(ClusterRow {
            fingerprint: format!("{fp:016x}"),
            members: members.len(),
            crack,
            prefix_len,
            fault_set: best_set.id.clone(),
            faults: best_set.len(),
            schedule: best_sched.id.clone(),
            scenario,
        });
    }

    let stats = CompoundStats {
        seed: config.seed,
        kfaults,
        jobs: jobs.len(),
        executed,
        space,
        signatures: map.distinct(),
        discrepancies: discrepancies.len(),
        shrink_checks,
    };
    CompoundResult {
        stats,
        clusters: rows,
        discrepancies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_schedule_runs_jobs_back_to_back() {
        let s = InterleaveSchedule::identity(2, 3);
        assert_eq!(
            s.turns,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
        assert_eq!(s.id, "identity");
    }

    #[test]
    fn seeded_schedules_are_deterministic_order_preserving_permutations() {
        let a = InterleaveSchedule::seeded(3, 3, 7);
        assert_eq!(a, InterleaveSchedule::seeded(3, 3, 7));
        assert_ne!(a.turns, InterleaveSchedule::seeded(3, 3, 8).turns);
        assert_eq!(a.turns.len(), 9);
        // Every (job, turn) appears exactly once and per-job turn order is
        // respected.
        let mut next = [0usize; 3];
        for &(job, turn) in &a.turns {
            assert_eq!(turn, next[job], "out-of-order turn for job {job}");
            next[job] += 1;
        }
        assert_eq!(next, [3, 3, 3]);
        // Round-trips through serde.
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(
            serde_json::from_str::<InterleaveSchedule>(&json).unwrap(),
            a
        );
    }

    #[test]
    fn a_clean_compound_trial_has_no_discrepancies() {
        let jobs = default_jobs(2);
        let report = run_compound_trial(
            &jobs,
            &FaultSet::empty(),
            &InterleaveSchedule::identity(2, TURNS_PER_JOB),
        );
        assert!(report.discrepancies.is_empty());
        assert!(!report.trace.crossings.is_empty());
        // Nothing faulted, so the causal prefix is the whole trace.
        assert_eq!(
            report.trace.causal_prefix().len(),
            report.trace.crossings.len()
        );
    }

    #[test]
    fn compound_trials_are_deterministic() {
        let jobs = default_jobs(2);
        let catalogue: Vec<_> = inject::fault_catalogue(1)
            .faults
            .into_iter()
            .filter(|f| matches!(f.channel, Channel::Metastore | Channel::Hdfs))
            .collect();
        let set = FaultSet::new(catalogue[..2].to_vec());
        let sched = InterleaveSchedule::seeded(2, TURNS_PER_JOB, 5);
        let a = run_compound_trial(&jobs, &set, &sched);
        let b = run_compound_trial(&jobs, &set, &sched);
        assert_eq!(a.trace.compact(), b.trace.compact());
        assert_eq!(a.discrepancies.len(), b.discrepancies.len());
    }
}
