//! The cross-testing executor: Figure 6's deployment and run loop.
//!
//! For every (experiment, plan, format, input) combination the executor
//! creates a one-column table through the *write* interface, inserts the
//! input, reads it back through the *read* interface, and records an
//! [`Observation`]. The write–read and error-handling oracles run per
//! observation; the differential oracle runs per experiment across all of
//! its plans *and* formats, matching the artifact's `ss/sh/hs_difft`
//! structure.

use crate::classify;
use crate::generator::{TestInput, Validity};
use crate::plan::{Experiment, Interface, TestPlan};
use crate::pool::DeploymentPool;
use csi_core::boundary::CrossingContext;
use csi_core::detect::{BaselineSet, DetectorSpec, OnlineDetector};
use csi_core::diag::DiagSink;
use csi_core::fault::FaultPlan;
use csi_core::oracle::{
    check_differential, check_error_handling, check_write_read, Observation, OracleFailure,
    ReadOutcome, WriteOutcome,
};
use csi_core::report::DiscrepancyReport;
use csi_core::sql::quote_string;
use csi_core::value::{format_date, format_timestamp, Value};
use csi_core::InteractionError;
use minihdfs::MiniHdfs;
use minihive::hiveql::HiveQl;
use minihive::metastore::{Metastore, StorageFormat};
use minispark::SparkSession;
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of a cross-testing run.
#[derive(Debug, Clone)]
pub struct CrossTestConfig {
    /// Experiments to run.
    pub experiments: Vec<Experiment>,
    /// Backend formats to exercise.
    pub formats: Vec<StorageFormat>,
    /// Spark configuration overrides applied to every deployment
    /// ("testing under the deployment configuration").
    pub spark_overrides: Vec<(String, String)>,
    /// Drop each table right after its observation is recorded, keeping the
    /// metastore and filesystem footprint bounded by one table per worker
    /// instead of one per (plan, format, input) combination.
    pub recycle_tables: bool,
    /// Faults to arm on every deployment's metastore and filesystem.
    /// `None` (and an empty plan) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Record an [`csi_core::boundary::InteractionTrace`] per observation.
    /// Disabling skips only the trace sink; the fault path is identical
    /// (tracing is side-effect-free, pinned by `tests/trace.rs`).
    pub trace_boundaries: bool,
    /// Run the online detector over every observation's crossing stream.
    /// The spec carries frozen baselines; each deployment builds its own
    /// [`OnlineDetector`] from it, so sharding never shares mutable
    /// detector state. `None` disables detection.
    pub detector: Option<DetectorSpec>,
    /// Acquire deployments from this warm pool instead of building them
    /// fresh. Pooled deployments are reset to construction-identical on
    /// release, so the run is byte-identical either way; `None` (the
    /// one-shot default) builds and drops per run.
    pub pool: Option<Arc<DeploymentPool>>,
}

impl Default for CrossTestConfig {
    fn default() -> CrossTestConfig {
        CrossTestConfig {
            experiments: Experiment::ALL.to_vec(),
            formats: StorageFormat::ALL.to_vec(),
            spark_overrides: Vec::new(),
            recycle_tables: false,
            fault_plan: None,
            trace_boundaries: true,
            detector: None,
            pool: None,
        }
    }
}

impl CrossTestConfig {
    /// The custom (non-default) configuration set that Section 8.2 reports
    /// as resolving 8 of the 15 discrepancies.
    pub fn custom_resolving_overrides() -> Vec<(String, String)> {
        vec![
            (
                minispark::config::STORE_ASSIGNMENT_POLICY.into(),
                "LEGACY".into(),
            ),
            (
                minispark::config::CHAR_VARCHAR_AS_STRING.into(),
                "true".into(),
            ),
            (minispark::config::INTERVAL_AS_STRING.into(), "true".into()),
            (
                minispark::config::DATAFRAME_DATE_RANGE_CHECK.into(),
                "true".into(),
            ),
        ]
    }
}

/// The full result of a run: the deduplicated report plus every raw
/// observation (kept for the classifier and for ablation benches).
#[derive(Debug, Clone)]
pub struct CrossTestOutcome {
    /// The discrepancy report.
    pub report: DiscrepancyReport,
    /// Every observation, tagged with its experiment.
    pub observations: Vec<(Experiment, Observation)>,
}

/// One full Metastore/MiniHdfs/SparkSession/HiveQl stack plus its
/// diagnostics sink. The serial executor creates one per experiment; the
/// parallel executor in [`crate::shard`] gives each worker its own pool of
/// these so workers never contend on engine state.
pub(crate) struct Deployment {
    pub(crate) sink: DiagSink,
    pub(crate) spark: SparkSession,
    pub(crate) hive: HiveQl,
    /// The crossing context wired into this deployment's metastore and
    /// filesystem: the single choke point where faults are injected and
    /// boundary crossings are traced.
    pub(crate) crossing: CrossingContext,
    /// This deployment's online detector (attached to `crossing` as a
    /// streaming sink), when the campaign runs with detection.
    pub(crate) detector: Option<OnlineDetector>,
    /// The deployment's filesystem, shared with `spark` and `hive` — held
    /// so recycling can vacuum the namenode back to canonical state.
    pub(crate) fs: Arc<Mutex<MiniHdfs>>,
    /// The deployment's metastore, shared with both engines — held so the
    /// pool can reset it wholesale when the deployment is released.
    pub(crate) metastore: Arc<Mutex<Metastore>>,
}

impl Deployment {
    pub(crate) fn new(config: &CrossTestConfig) -> Deployment {
        let crossing = if config.trace_boundaries {
            CrossingContext::new()
        } else {
            CrossingContext::disabled()
        };
        Deployment::with_crossing(config, crossing)
    }

    /// Builds the stack around a caller-supplied crossing context — the
    /// fault-matrix cells use this to pre-arm (or deliberately not arm)
    /// the context before the deployment exists.
    pub(crate) fn with_crossing(config: &CrossTestConfig, crossing: CrossingContext) -> Deployment {
        let sink = DiagSink::new();
        let mut metastore = Metastore::new();
        let mut fs = MiniHdfs::with_datanodes(3);
        if let Some(plan) = &config.fault_plan {
            crossing.arm_plan(plan);
        }
        let detector = config.detector.as_ref().map(DetectorSpec::build);
        if let Some(d) = &detector {
            crossing.set_sink(d.sink());
        }
        metastore.set_crossing(crossing.clone());
        fs.set_crossing(crossing.clone());
        let metastore = Arc::new(Mutex::new(metastore));
        let fs = Arc::new(Mutex::new(fs));
        let mut spark =
            SparkSession::connect(metastore.clone(), fs.clone(), sink.handle("minispark"));
        for (k, v) in &config.spark_overrides {
            spark.config.set(k, v);
        }
        let hive = HiveQl::new(metastore.clone(), fs.clone(), sink.handle("minihive"));
        Deployment {
            sink,
            spark,
            hive,
            crossing,
            detector,
            fs,
            metastore,
        }
    }

    /// Drops `table` (best effort), discards the diagnostics the drop
    /// produced, and vacuums the namenode so recycling never leaks into the
    /// next observation.
    ///
    /// The vacuum is what keeps pooled deployments byte-identical with
    /// fresh ones: it rebuilds the interner and inode arena as a pure
    /// function of the surviving namespace, erasing any layout residue the
    /// recycled experiment left behind. Without it, a pool worker's
    /// interner would depend on which experiments it happened to serve —
    /// harmless today (nothing observable derives from symbol values), but
    /// the invariant is cheap to enforce and easy to lose silently.
    pub(crate) fn recycle(&self, table: &str) {
        let _ = self.spark.sql(&format!("DROP TABLE IF EXISTS {table}"));
        self.fs.lock().vacuum();
        self.sink.drain();
    }
}

/// Renders a harness value as a SQL literal understood by both SQL
/// dialects.
pub fn render_literal(value: &Value) -> String {
    match value {
        Value::Null => "NULL".into(),
        Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Value::Byte(v) if *v == i8::MIN => format!("CAST('{v}' AS TINYINT)"),
        Value::Byte(v) => format!("{v}Y"),
        Value::Short(v) if *v == i16::MIN => format!("CAST('{v}' AS SMALLINT)"),
        Value::Short(v) => format!("{v}S"),
        Value::Int(v) if *v == i32::MIN => format!("CAST('{v}' AS INT)"),
        Value::Int(v) => format!("{v}"),
        Value::Long(v) if *v == i64::MIN => format!("CAST('{v}' AS BIGINT)"),
        Value::Long(v) => format!("{v}L"),
        Value::Float(v) => format!("CAST('{v}' AS FLOAT)"),
        Value::Double(v) => format!("CAST('{v}' AS DOUBLE)"),
        Value::Decimal(d) => format!("{d}BD"),
        Value::Str(s) => quote_string(s),
        Value::Binary(b) => {
            let hex: String = b.iter().map(|x| format!("{x:02X}")).collect();
            format!("X'{hex}'")
        }
        Value::Date(d) => format!("DATE {}", quote_string(&format_date(*d))),
        Value::Timestamp(us) => format!("TIMESTAMP {}", quote_string(&format_timestamp(*us))),
        Value::Interval { months, micros } => {
            // Render at full precision: months plus a day-time decomposition
            // whose components all carry the day-time sign, with sub-second
            // micros as a fractional SECOND magnitude (quoted, since the
            // grammar takes string magnitudes). `i128` keeps `i64::MIN` safe.
            let mut terms = Vec::new();
            if *months != 0 {
                terms.push(format!("{months} MONTH"));
            }
            let mut rest = i128::from(*micros);
            for (per, unit) in [
                (86_400_000_000i128, "DAY"),
                (3_600_000_000, "HOUR"),
                (60_000_000, "MINUTE"),
            ] {
                let n = rest / per;
                rest %= per;
                if n != 0 {
                    terms.push(format!("{n} {unit}"));
                }
            }
            if rest % 1_000_000 == 0 {
                if rest != 0 {
                    terms.push(format!("{} SECOND", rest / 1_000_000));
                }
            } else {
                let sign = if rest < 0 { "-" } else { "" };
                let abs = rest.unsigned_abs();
                let frac = format!("{:06}", abs % 1_000_000);
                terms.push(format!(
                    "'{sign}{}.{}' SECOND",
                    abs / 1_000_000,
                    frac.trim_end_matches('0')
                ));
            }
            if terms.is_empty() {
                terms.push("0 SECOND".to_string());
            }
            format!("INTERVAL {}", terms.join(" "))
        }
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_literal).collect();
            format!("ARRAY({})", inner.join(", "))
        }
        Value::Map(pairs) => {
            let inner: Vec<String> = pairs
                .iter()
                .flat_map(|(k, v)| [render_literal(k), render_literal(v)])
                .collect();
            format!("MAP({})", inner.join(", "))
        }
        Value::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .flat_map(|(n, v)| [quote_string(n), render_literal(v)])
                .collect();
            format!("NAMED_STRUCT({})", inner.join(", "))
        }
    }
}

/// The table-creation half of a write. Split from [`insert_via`] so the
/// multi-job interleaver ([`crate::multi`]) can schedule the two halves as
/// separate turns; `write_via` composes them back for the serial path.
pub(crate) fn create_via(
    d: &Deployment,
    interface: Interface,
    table: &str,
    input: &TestInput,
    format: StorageFormat,
) -> Result<(), InteractionError> {
    match interface {
        Interface::SparkSql | Interface::HiveQl => {
            let create = format!(
                "CREATE TABLE {table} (c {}) STORED AS {}",
                input.column_type.sql_name(),
                format.name()
            );
            match interface {
                Interface::SparkSql => d
                    .spark
                    .sql(&create)
                    .map(|_| ())
                    .map_err(InteractionError::from),
                _ => d
                    .hive
                    .execute(&create)
                    .map(|_| ())
                    .map_err(InteractionError::from),
            }
        }
        Interface::DataFrame => {
            let schema = vec![csi_core::value::StructField::new(
                "c",
                input.column_type.clone(),
            )];
            d.spark
                .dataframe()
                .create_table(table, &schema, format)
                .map_err(InteractionError::from)
        }
    }
}

/// The row-insertion half of a write; see [`create_via`].
pub(crate) fn insert_via(
    d: &Deployment,
    interface: Interface,
    table: &str,
    input: &TestInput,
) -> Result<(), InteractionError> {
    match interface {
        Interface::SparkSql | Interface::HiveQl => {
            let insert = format!(
                "INSERT INTO {table} VALUES ({})",
                render_literal(&input.value)
            );
            match interface {
                Interface::SparkSql => d
                    .spark
                    .sql(&insert)
                    .map(|_| ())
                    .map_err(InteractionError::from),
                _ => d
                    .hive
                    .execute(&insert)
                    .map(|_| ())
                    .map_err(InteractionError::from),
            }
        }
        Interface::DataFrame => d
            .spark
            .dataframe()
            .insert_into(table, &[vec![input.value.clone()]])
            .map_err(InteractionError::from),
    }
}

fn write_via(
    d: &Deployment,
    interface: Interface,
    table: &str,
    input: &TestInput,
    format: StorageFormat,
) -> Result<(), InteractionError> {
    create_via(d, interface, table, input, format)?;
    insert_via(d, interface, table, input)
}

pub(crate) fn read_via(
    d: &Deployment,
    interface: Interface,
    table: &str,
) -> Result<Vec<Value>, InteractionError> {
    let rows = match interface {
        Interface::SparkSql => {
            d.spark
                .sql(&format!("SELECT * FROM {table}"))
                .map_err(InteractionError::from)?
                .rows
        }
        Interface::DataFrame => {
            d.spark
                .dataframe()
                .read_table(table)
                .map_err(InteractionError::from)?
                .1
        }
        Interface::HiveQl => {
            d.hive
                .execute(&format!("SELECT * FROM {table}"))
                .map_err(InteractionError::from)?
                .rows
        }
    };
    first_column(rows)
}

/// Extracts the single projected column from a row set.
///
/// An empty row is a malformed engine response — under injection a garbled
/// data file can decode to anything — so it surfaces as a typed crash
/// instead of the `remove(0)` panic this helper replaces.
pub(crate) fn first_column(rows: Vec<Vec<Value>>) -> Result<Vec<Value>, InteractionError> {
    rows.into_iter()
        .map(|mut r| {
            if r.is_empty() {
                Err(InteractionError::crash(
                    "csi-test",
                    "EMPTY_ROW",
                    "engine returned a zero-column row for a one-column projection",
                ))
            } else {
                Ok(r.remove(0))
            }
        })
        .collect()
}

/// The scenario key detector baselines are learned and matched under:
/// one key per (experiment, plan, format, input) combination, identical
/// between the calibration run and the real run.
pub(crate) fn scenario_key(
    experiment: Experiment,
    plan: TestPlan,
    format: StorageFormat,
    input_id: usize,
) -> String {
    format!(
        "{}:{}:{}:{}",
        experiment.short(),
        plan,
        format.name(),
        input_id
    )
}

pub(crate) fn run_one(
    d: &Deployment,
    experiment: Experiment,
    plan: TestPlan,
    format: StorageFormat,
    input: &TestInput,
    recycle: bool,
) -> Observation {
    let table = format!(
        "t_{}_{}_{}_{}",
        experiment.short(),
        format!("{plan}")
            .replace(['-', '>'], "")
            .to_ascii_lowercase(),
        format.extension(),
        input.id
    );
    // Scope call-counted triggers, the fired log, the virtual clock, and
    // the trace sink to this observation, regardless of which worker ran
    // the previous one — the property that keeps campaigns byte-identical
    // across worker counts.
    d.crossing.reset();
    d.sink.drain();
    if let Some(det) = &d.detector {
        det.begin(&scenario_key(experiment, plan, format, input.id));
    }
    let write_result = write_via(d, plan.write, &table, input, format);
    let write = WriteOutcome {
        result: write_result,
        diagnostics: d.sink.drain(),
    };
    let read = if write.result.is_ok() {
        let result = read_via(d, plan.read, &table);
        Some(ReadOutcome {
            result,
            diagnostics: d.sink.drain(),
        })
    } else {
        None
    };
    let detections = match &d.detector {
        Some(det) => {
            // The caller-visible error, exactly as the offline oracle
            // sees it: the write error, else the read error.
            let surfaced = match (&write.result, read.as_ref().map(|r| &r.result)) {
                (Err(e), _) => Some(e.clone()),
                (Ok(()), Some(Err(e))) => Some(e.clone()),
                _ => None,
            };
            det.finish(surfaced.as_ref())
        }
        None => Vec::new(),
    };
    let obs = Observation {
        input_id: input.id,
        plan: format!("{}:{}", experiment.short(), plan),
        format: format.name().to_string(),
        write,
        read,
        trace: d.crossing.trace(),
        detections,
    };
    if recycle {
        // Recycling crosses the boundary too (DROP TABLE), but the
        // detector is already finished: those crossings are ignored.
        d.recycle(&table);
    }
    obs
}

/// The error that surfaced to the caller of an observation, exactly as
/// the §9 oracle and the online detector define it: the write error,
/// else the read error, else nothing.
pub(crate) fn surfaced_error(obs: &Observation) -> Option<InteractionError> {
    if let Err(e) = &obs.write.result {
        return Some(e.clone());
    }
    if let Some(read) = &obs.read {
        if let Err(e) = &read.result {
            return Some(e.clone());
        }
    }
    None
}

/// Runs the per-observation oracle for `input`: write–read for valid
/// inputs, error-handling for invalid ones. Shared between the serial
/// executor and the parallel merger so both evaluate observations
/// identically.
pub(crate) fn check_observation(input: &TestInput, obs: &Observation) -> Option<OracleFailure> {
    match input.validity {
        Validity::Valid => check_write_read(input.expected(), obs),
        Validity::Invalid => check_error_handling(&input.value, obs),
    }
}

/// Obtains a deployment for `config`: from its warm pool when one is
/// attached, built fresh otherwise. Every deployment the executors use
/// goes through here so pooled and unpooled campaigns share one code
/// path.
pub(crate) fn acquire_deployment(config: &CrossTestConfig) -> Deployment {
    match &config.pool {
        Some(pool) => pool.acquire(config),
        None => Deployment::new(config),
    }
}

/// Returns a deployment obtained from [`acquire_deployment`]: back to the
/// pool (reset to fresh) when one is attached, dropped otherwise.
pub(crate) fn release_deployment(config: &CrossTestConfig, deployment: Deployment) {
    if let Some(pool) = &config.pool {
        pool.release(config, deployment);
    }
}

/// The serial executor behind the [`crate::Campaign`] builder — the
/// builder is the only public entry point.
pub(crate) fn run_cross_test_impl(
    inputs: &[TestInput],
    config: &CrossTestConfig,
) -> CrossTestOutcome {
    let mut observations: Vec<(Experiment, Observation)> = Vec::new();
    let mut failures: Vec<OracleFailure> = Vec::new();
    for &experiment in &config.experiments {
        let deployment = acquire_deployment(config);
        let mut exp_observations: Vec<Observation> = Vec::new();
        for plan in experiment.plans() {
            for &format in &config.formats {
                for input in inputs {
                    let obs = run_one(
                        &deployment,
                        experiment,
                        plan,
                        format,
                        input,
                        config.recycle_tables,
                    );
                    if let Some(f) = check_observation(input, &obs) {
                        failures.push(f);
                    }
                    exp_observations.push(obs);
                }
            }
        }
        failures.extend(check_differential(&exp_observations));
        observations.extend(exp_observations.into_iter().map(|o| (experiment, o)));
        release_deployment(config, deployment);
    }
    let report = classify::classify(inputs, &observations, failures, config.detector.is_some());
    CrossTestOutcome {
        report,
        observations,
    }
}

/// Learns per-scenario detector baselines from a finished campaign's
/// observations: one profile per (experiment, plan, format, input) key.
/// Learning is keyed, each key occurs once per campaign, so the result is
/// independent of worker interleaving — the property that lets a sharded
/// calibration run feed a sharded detection run and still produce
/// byte-identical output to serial.
pub(crate) fn learn_baselines(observations: &[(Experiment, Observation)]) -> BaselineSet {
    let mut baselines = BaselineSet::default();
    for (_, obs) in observations {
        // obs.plan is already "{experiment.short()}:{plan}", so this key
        // matches what `run_one` passes to `OnlineDetector::begin`.
        let key = format!("{}:{}:{}", obs.plan, obs.format, obs.input_id);
        baselines.learn(&key, &obs.trace);
    }
    baselines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::generator::generate_inputs;
    use csi_core::value::{DataType, Decimal};

    fn one_input(column_type: DataType, value: Value, validity: Validity) -> Vec<TestInput> {
        vec![TestInput {
            id: 0,
            column_type,
            value,
            validity,
            label: "test".into(),
            expected_back: None,
        }]
    }

    #[test]
    fn literal_rendering_round_trips_through_both_dialects() {
        let cases = [
            Value::Int(42),
            Value::Byte(i8::MIN),
            Value::Long(i64::MIN),
            Value::Str("it's".into()),
            Value::Decimal(Decimal::parse("-1.50").unwrap()),
            Value::Binary(vec![0xCA, 0xFE]),
            Value::Date(0),
            Value::Interval {
                months: -3,
                micros: 0,
            },
        ];
        for v in cases {
            let lit = render_literal(&v);
            let stmt = format!("INSERT INTO t VALUES ({lit})");
            assert!(
                csi_core::sql::parse(&stmt).is_ok(),
                "literal {lit} does not parse"
            );
        }
    }

    #[test]
    fn render_literal_preserves_full_interval_precision() {
        use csi_core::sql::{eval_interval_parts, Expr, Statement};
        let cases = [
            (0, 0),
            (3, 0),
            (0, 604_800_000_000), // 7 days
            (0, 1_500_000),       // 1.5 s: sub-second fraction
            (0, -500_000),        // -0.5 s: negative pure fraction
            (2, 90_061_000_001),  // mixed: months AND day-time
            (-3, -3_600_000_000), // negative mixed
            (1, -1),              // months with -1 µs
            (0, i64::MIN + 1),
            (0, i64::MAX),
        ];
        for (months, micros) in cases {
            let v = Value::Interval { months, micros };
            let lit = render_literal(&v);
            let stmt = format!("INSERT INTO t VALUES ({lit})");
            let parsed = csi_core::sql::parse(&stmt)
                .unwrap_or_else(|e| panic!("literal {lit} does not parse: {e:?}"));
            let Statement::Insert { rows, .. } = parsed else {
                panic!("not an insert: {lit}");
            };
            let Expr::IntervalLit { parts } = &rows[0][0] else {
                panic!("not an interval literal: {lit}");
            };
            assert_eq!(
                eval_interval_parts(parts),
                Ok((months, micros)),
                "literal {lit} lost precision"
            );
        }
    }

    #[test]
    fn first_column_rejects_empty_rows_instead_of_panicking() {
        // Regression: `read_via` used to `remove(0)` unconditionally; a
        // zero-column row (possible from a garbled data file under
        // injection) was a panic, not an error.
        let ok = first_column(vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
        assert_eq!(ok, vec![Value::Int(1), Value::Int(2)]);
        let err = first_column(vec![vec![Value::Int(1)], vec![]]).unwrap_err();
        assert_eq!(err.kind, csi_core::ErrorKind::Crash);
        assert_eq!(err.code, "EMPTY_ROW");
    }

    #[test]
    fn pooled_run_is_byte_identical_to_fresh() {
        let inputs = one_input(DataType::Byte, Value::Byte(5), Validity::Valid);
        let fresh = run_cross_test_impl(&inputs, &CrossTestConfig::default());
        let pool = Arc::new(DeploymentPool::new());
        let pooled_config = CrossTestConfig {
            pool: Some(pool.clone()),
            ..CrossTestConfig::default()
        };
        // Two back-to-back runs: the second consumes deployments the first
        // released, so reuse (not just construction) is what's pinned.
        for round in 0..2 {
            let pooled = run_cross_test_impl(&inputs, &pooled_config);
            assert_eq!(
                serde_json::to_string(&pooled.report).unwrap(),
                serde_json::to_string(&fresh.report).unwrap(),
                "pooled round {round} diverged from the fresh run"
            );
        }
        // The serial loop releases each experiment's deployment before
        // acquiring the next, so one build serves all six acquires.
        let stats = pool.stats();
        assert_eq!(stats.created, 1);
        assert_eq!(stats.reused, 5);
    }

    #[test]
    fn happy_path_int_is_clean_everywhere() {
        let inputs = one_input(DataType::Int, Value::Int(7), Validity::Valid);
        let outcome = Campaign::new(&inputs).run();
        assert!(
            outcome.report.raw_failures.is_empty(),
            "unexpected failures: {:#?}",
            outcome.report.raw_failures
        );
        // 3 experiments x plans x 3 formats observations.
        assert_eq!(outcome.observations.len(), (4 + 2 + 2) * 3);
    }

    #[test]
    fn byte_input_reveals_d01_and_d03() {
        let inputs = one_input(DataType::Byte, Value::Byte(5), Validity::Valid);
        let outcome = Campaign::new(&inputs).run();
        let ids: Vec<&str> = outcome
            .report
            .discrepancies
            .iter()
            .map(|d| d.id.as_str())
            .collect();
        assert!(ids.contains(&"D01"), "found {ids:?}");
        assert!(ids.contains(&"D03"), "found {ids:?}");
        assert!(outcome.report.unattributed.is_empty());
    }

    #[test]
    fn full_catalogue_runs_clean_of_unattributed_failures() {
        let inputs = generate_inputs();
        let outcome = Campaign::new(&inputs).run();
        assert!(
            outcome.report.unattributed.is_empty(),
            "unattributed: {:#?}",
            outcome
                .report
                .unattributed
                .iter()
                .take(5)
                .collect::<Vec<_>>()
        );
        assert_eq!(outcome.report.distinct(), 15);
    }
}
