//! Coverage-guided campaign exploration (the `Campaign::explore` mode).
//!
//! The exhaustive Section 8 grid enumerates every (experiment, plan,
//! format, input) cell; its interesting discrepancies cluster in a small
//! residue. This mode spends a bounded observation budget where the
//! feedback says it matters: each observation's boundary-crossing trace is
//! distilled into a [`CoverageSignature`] (crossing tuples plus classifier
//! tags), inputs that produce *novel* signatures enter a corpus, and corpus
//! entries earn a full plan×format sweep, deterministic mutants
//! ([`crate::generator::mutate_input`]), and a fault overlay from
//! [`crate::inject::fault_catalogue`] — all scheduled ahead of fresh draws
//! from the grid.
//!
//! Determinism is load-bearing, exactly as everywhere else in the harness:
//! scheduling is a pure function of (seed, inputs, budget); workers claim
//! trials from a bump counter and write into pre-sized slots; absorption
//! happens in trial order. A sharded explore run is byte-identical to a
//! serial one, pinned by `tests/explore.rs`.

use crate::classify;
use crate::exec::{self, CrossTestConfig, Deployment};
use crate::generator::{mutate_input, TestInput, Validity};
use crate::inject;
use crate::plan::{Experiment, TestPlan};
use crate::shrink;
use csi_core::boundary::{CrossingContext, CrossingOutcome};
use csi_core::coverage::{CoverageMap, CoverageSignature};
use csi_core::fault::{classify_fault_outcome, Channel, FaultSpec, InjectedFault};
use csi_core::oracle::{check_differential, Observation, OracleFailure};
use csi_core::report::{CorpusRow, DiscoveryRow, DiscrepancyReport, ExplorationStats};
use csi_core::value::DataType;
use minihive::metastore::StorageFormat;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Trials scheduled (and absorbed) per round. Rounds bound how stale the
/// coverage feedback can get under sharding: every worker sees a schedule
/// derived from all observations of the previous round.
const ROUND: usize = 64;

/// Mutants scheduled per corpus admission.
const MUTANTS_PER_ENTRY: usize = 4;

/// Fault-overlay trials scheduled per corpus admission.
const FAULTS_PER_ENTRY: usize = 2;

/// The result of one exploration run, consumed by `Campaign::run`.
pub(crate) struct ExploreResult {
    /// The classified report over every fault-free observation.
    pub report: DiscrepancyReport,
    /// Fault-free observations, grouped by experiment in canonical order,
    /// execution order within.
    pub observations: Vec<(Experiment, Observation)>,
    /// Corpus / coverage / shrink statistics for the `Render` path.
    pub stats: ExplorationStats,
    /// One minimized reproducer per shrunk discrepancy.
    pub reproducers: Vec<shrink::ShrunkReproducer>,
}

/// One scheduled execution: an input on a (experiment, plan, format) cell,
/// optionally under an injected fault.
#[derive(Debug, Clone)]
struct Trial {
    input_idx: usize,
    combo: usize,
    fault: Option<FaultSpec>,
}

struct Explorer {
    combos: Vec<(Experiment, TestPlan, StorageFormat)>,
    experiments: Vec<Experiment>,
    pool: Vec<TestInput>,
    seed_count: usize,
    /// Inputs with ids at or above this are mutants.
    first_mutant_id: usize,
    /// Seed inputs with ids in `corpus_floor..first_mutant_id` are
    /// synthesized corpus seeds (`InputSelection::Corpus` appends them
    /// above the catalogue); with no corpus region this equals
    /// `first_mutant_id` and nothing qualifies.
    corpus_floor: usize,
    /// Seed-grid visiting order: corpus-region indices first, so a small
    /// budget reaches realistic inputs in round one. Identity when there
    /// is no corpus region.
    order: Vec<usize>,
    next_id: usize,
    shards: usize,
    /// Cells already scheduled: (input id, combo, fault id).
    scheduled: BTreeSet<(usize, usize, Option<String>)>,
    pending: VecDeque<Trial>,
    /// Fine-grained coverage (including `decl:` declared-type tags): the
    /// signature set reports expose and the corpus-vs-catalogue diff is
    /// computed on.
    map: CoverageMap,
    /// Coarse coverage (no `decl:` tags): the scheduling signal. Corpus
    /// admission keys off this map so splitting DECIMAL(10,2) from
    /// DECIMAL(38,10) in *reported* coverage does not flood the pending
    /// queue with sweeps — a catalogue-only exploration schedules exactly
    /// as it did before declared types were tracked.
    sched_map: CoverageMap,
    corpus_ids: BTreeSet<usize>,
    corpus: Vec<CorpusRow>,
    // Grid cursor state: pass-major, input-minor, combo rotated per pass.
    pass: usize,
    cursor: usize,
    seed_rot: usize,
    // Accumulated results.
    executed: usize,
    fresh: usize,
    mutated: usize,
    faulted: usize,
    novel_from_mutation: usize,
    novel_from_corpus: usize,
    exp_obs: Vec<Vec<Observation>>,
    obs_failures: Vec<OracleFailure>,
    summaries: BTreeMap<usize, classify::InputSummary>,
    discovered: BTreeMap<&'static str, DiscoveryRow>,
    faults: Vec<FaultSpec>,
    fault_rotor: usize,
}

fn type_tag(ty: &DataType) -> String {
    match ty {
        DataType::Decimal(_, _) => "decimal".into(),
        DataType::Char(_) => "char".into(),
        DataType::Varchar(_) => "varchar".into(),
        DataType::Array(_) => "array".into(),
        DataType::Map(_, _) => "map".into(),
        DataType::Struct(_) => "struct".into(),
        other => format!("{other:?}").to_ascii_lowercase(),
    }
}

impl Explorer {
    fn new(
        inputs: &[TestInput],
        experiments: &[Experiment],
        formats: &[StorageFormat],
        seed: u64,
        shards: usize,
        corpus_floor: Option<usize>,
    ) -> Explorer {
        let mut combos = Vec::new();
        for &exp in experiments {
            for plan in exp.plans() {
                for &fmt in formats {
                    combos.push((exp, plan, fmt));
                }
            }
        }
        let first_mutant_id = inputs.iter().map(|i| i.id + 1).max().unwrap_or(0);
        let corpus_floor = corpus_floor.unwrap_or(first_mutant_id);
        let mut order: Vec<usize> = (0..inputs.len())
            .filter(|&i| inputs[i].id >= corpus_floor)
            .collect();
        order.extend((0..inputs.len()).filter(|&i| inputs[i].id < corpus_floor));
        let seed_rot = if combos.is_empty() {
            0
        } else {
            (seed % combos.len() as u64) as usize
        };
        // Only metastore and filesystem faults can fire inside a
        // cross-testing deployment; the rest of the catalogue targets
        // stacks the explore trials never build.
        let faults: Vec<FaultSpec> = inject::fault_catalogue(seed)
            .faults
            .into_iter()
            .filter(|f| matches!(f.channel, Channel::Metastore | Channel::Hdfs))
            .collect();
        Explorer {
            combos,
            experiments: experiments.to_vec(),
            pool: inputs.to_vec(),
            seed_count: inputs.len(),
            first_mutant_id,
            corpus_floor,
            order,
            next_id: first_mutant_id,
            shards,
            scheduled: BTreeSet::new(),
            pending: VecDeque::new(),
            map: CoverageMap::new(),
            sched_map: CoverageMap::new(),
            corpus_ids: BTreeSet::new(),
            corpus: Vec::new(),
            pass: 0,
            cursor: 0,
            seed_rot,
            executed: 0,
            fresh: 0,
            mutated: 0,
            faulted: 0,
            novel_from_mutation: 0,
            novel_from_corpus: 0,
            exp_obs: vec![Vec::new(); experiments.len()],
            obs_failures: Vec::new(),
            summaries: BTreeMap::new(),
            discovered: BTreeMap::new(),
            faults,
            fault_rotor: 0,
        }
    }

    fn trial_key(&self, t: &Trial) -> (usize, usize, Option<String>) {
        (
            self.pool[t.input_idx].id,
            t.combo,
            t.fault.as_ref().map(|f| f.id.clone()),
        )
    }

    /// The fine-grained variant of a signature: the coarse signature plus
    /// the input's declared SQL type, width and precision included —
    /// reported coverage distinguishes DECIMAL(24,6) from DECIMAL(10,2)
    /// traffic, which is what lets corpus-only declarations register as
    /// novel signatures in the corpus-vs-catalogue diff.
    fn fine(&self, sig: &CoverageSignature, input: &TestInput) -> CoverageSignature {
        let mut fine = sig.clone();
        fine.tag(format!("decl:{}", input.column_type.sql_name()));
        fine
    }

    /// The `"grid"` / `"corpus"` / `"mutation"` origin of an input id.
    fn origin(&self, id: usize) -> &'static str {
        if id >= self.first_mutant_id {
            "mutation"
        } else if id >= self.corpus_floor {
            "corpus"
        } else {
            "grid"
        }
    }

    /// The next unexecuted cell of the seed grid, rotating the combo per
    /// pass so early passes spread inputs across plans and formats. The
    /// [`Explorer::order`] vector puts the corpus region ahead of the
    /// catalogue within each pass.
    fn next_grid(&mut self) -> Option<Trial> {
        let c = self.combos.len();
        while self.pass < c {
            while self.cursor < self.seed_count {
                let i = self.order[self.cursor];
                self.cursor += 1;
                let combo = (i + self.pass + self.seed_rot) % c;
                let key = (self.pool[i].id, combo, None);
                if !self.scheduled.contains(&key) {
                    self.scheduled.insert(key);
                    return Some(Trial {
                        input_idx: i,
                        combo,
                        fault: None,
                    });
                }
            }
            self.cursor = 0;
            self.pass += 1;
        }
        None
    }

    /// Schedules up to `n` trials: the corpus-derived queue first, fresh
    /// grid draws as filler. Pure function of prior absorption order.
    fn schedule_round(&mut self, n: usize) -> Vec<Trial> {
        let mut batch = Vec::new();
        while batch.len() < n {
            if let Some(t) = self.pending.pop_front() {
                let key = self.trial_key(&t);
                if self.scheduled.contains(&key) {
                    continue;
                }
                self.scheduled.insert(key);
                batch.push(t);
                continue;
            }
            match self.next_grid() {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        batch
    }

    fn run_trial(&self, trial: &Trial, pools: &mut BTreeMap<usize, Deployment>) -> Observation {
        let (exp, plan, fmt) = self.combos[trial.combo];
        let input = &self.pool[trial.input_idx];
        match &trial.fault {
            Some(fault) => {
                // Hermetic: a fresh context pre-armed with exactly this
                // fault, exactly like a fault-matrix probe cell.
                let ctx = CrossingContext::new();
                ctx.arm(fault.clone());
                let d = Deployment::with_crossing(&CrossTestConfig::default(), ctx);
                exec::run_one(&d, exp, plan, fmt, input, false)
            }
            None => {
                let exp_idx = self
                    .experiments
                    .iter()
                    .position(|e| *e == exp)
                    .expect("combo experiment is configured");
                let d = pools
                    .entry(exp_idx)
                    .or_insert_with(|| Deployment::new(&CrossTestConfig::default()));
                // Recycling keeps each worker's metastore footprint at one
                // table and makes observations independent of what the
                // deployment ran before — the sharding byte-identity lever.
                exec::run_one(d, exp, plan, fmt, input, true)
            }
        }
    }

    /// Executes a batch: serially, or on `shards` workers claiming trials
    /// off a bump counter into pre-sized slots (merge = slot order).
    fn execute_batch(&self, batch: &[Trial]) -> Vec<Observation> {
        let workers = self.shards.clamp(1, batch.len().max(1));
        if workers <= 1 {
            let mut pools = BTreeMap::new();
            return batch
                .iter()
                .map(|t| self.run_trial(t, &mut pools))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Observation>>> =
            (0..batch.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut pools = BTreeMap::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= batch.len() {
                            break;
                        }
                        let obs = self.run_trial(&batch[i], &mut pools);
                        *slots[i].lock() = Some(obs);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every slot claimed and filled"))
            .collect()
    }

    /// Absorbs one observation, in trial order: coverage, corpus
    /// admission, and (for fault-free trials) the report stream.
    fn absorb(&mut self, trial: &Trial, obs: Observation) {
        self.executed += 1;
        let input = self.pool[trial.input_idx].clone();
        let is_mutant = input.id >= self.first_mutant_id;
        let origin = self.origin(input.id);
        let mut sig = CoverageSignature::from_trace(&obs.trace);
        sig.tag(format!("ty:{}", type_tag(&input.column_type)));
        sig.tag(match input.validity {
            Validity::Valid => "valid",
            Validity::Invalid => "invalid",
        });
        if let Some(fault) = &trial.fault {
            self.faulted += 1;
            let fired: Vec<InjectedFault> = obs
                .trace
                .crossings
                .iter()
                .filter_map(|c| match &c.outcome {
                    CrossingOutcome::Faulted { fault } => Some(fault.clone()),
                    _ => None,
                })
                .collect();
            let surfaced = exec::surfaced_error(&obs);
            let bucket = classify_fault_outcome(&fired, surfaced.as_ref());
            sig.tag(format!("fault:{}:{bucket}", fault.channel));
            // Fault observations feed coverage only; they stay out of the
            // classified report, whose oracles assume a fault-free stack.
            self.sched_map.observe(&sig, self.executed);
            if self.map.observe(&self.fine(&sig, &input), self.executed) {
                match origin {
                    "mutation" => self.novel_from_mutation += 1,
                    "corpus" => self.novel_from_corpus += 1,
                    _ => {}
                }
            }
            return;
        }
        if is_mutant {
            self.mutated += 1;
        } else {
            self.fresh += 1;
        }
        // Fold this observation's error codes into the per-input summary
        // *before* matching predicates, exactly like the batch classifier.
        let summary = self.summaries.entry(input.id).or_default();
        if let Err(e) = &obs.write.result {
            summary.codes.insert(e.code.clone());
            sig.tag(format!("code:{}", e.code));
        }
        if let Some(read) = &obs.read {
            if let Err(e) = &read.result {
                summary.codes.insert(e.code.clone());
                sig.tag(format!("code:{}", e.code));
            }
        }
        let summary = summary.clone();
        let failure = exec::check_observation(&input, &obs);
        if let Some(f) = &failure {
            sig.tag(format!("oracle:{}", f.oracle));
            for id in classify::match_ids(&input, &summary, f) {
                sig.tag(format!("d:{id}"));
            }
        }
        if self.map.observe(&self.fine(&sig, &input), self.executed) {
            match origin {
                "mutation" => self.novel_from_mutation += 1,
                "corpus" => self.novel_from_corpus += 1,
                _ => {}
            }
        }
        // Admission keys off coarse novelty, so declared-type granularity
        // never changes what gets scheduled.
        let novel = self.sched_map.observe(&sig, self.executed);
        if novel && !self.corpus_ids.contains(&input.id) {
            self.corpus_ids.insert(input.id);
            self.corpus.push(CorpusRow {
                input_id: input.id,
                label: input.label.clone(),
                origin: origin.into(),
                executed: self.executed,
            });
            self.expand_corpus_entry(trial.input_idx, trial.combo, is_mutant);
        }
        let exp_idx = self
            .experiments
            .iter()
            .position(|e| *e == self.combos[trial.combo].0)
            .expect("combo experiment is configured");
        if let Some(f) = failure {
            self.obs_failures.push(f);
        }
        self.exp_obs[exp_idx].push(obs);
    }

    /// A corpus admission earns: a full combo sweep, deterministic mutants
    /// on a few spread-out combos, and a fault overlay on the discovering
    /// combo. Everything lands on the pending queue ahead of fresh draws.
    fn expand_corpus_entry(&mut self, input_idx: usize, parent_combo: usize, is_mutant: bool) {
        let c = self.combos.len();
        for combo in 0..c {
            self.pending.push_back(Trial {
                input_idx,
                combo,
                fault: None,
            });
        }
        if !is_mutant {
            let mutants = mutate_input(&self.pool[input_idx]);
            for (k, mut m) in mutants.into_iter().take(MUTANTS_PER_ENTRY).enumerate() {
                m.id = self.next_id;
                self.next_id += 1;
                self.pool.push(m);
                let mi = self.pool.len() - 1;
                for off in [0usize, 5, 11] {
                    self.pending.push_back(Trial {
                        input_idx: mi,
                        combo: (parent_combo + off + k) % c,
                        fault: None,
                    });
                }
            }
        }
        if !self.faults.is_empty() {
            for _ in 0..FAULTS_PER_ENTRY {
                let fault = self.faults[self.fault_rotor % self.faults.len()].clone();
                self.fault_rotor += 1;
                self.pending.push_back(Trial {
                    input_idx,
                    combo: parent_combo,
                    fault: Some(fault),
                });
            }
        }
    }

    /// Records first-discovery execution counts: after each round, every
    /// not-yet-seen catalogue id is checked against the failures known so
    /// far (per-observation plus freshly recomputed differential).
    fn update_discoveries(&mut self) {
        let undiscovered: Vec<&'static str> = classify::catalogue_ids()
            .into_iter()
            .filter(|id| !self.discovered.contains_key(id))
            .collect();
        if undiscovered.is_empty() {
            return;
        }
        let mut failures: Vec<OracleFailure> = self.obs_failures.clone();
        for obs in &self.exp_obs {
            failures.extend(check_differential(obs));
        }
        let empty = classify::InputSummary::default();
        for id in undiscovered {
            for f in &failures {
                let Some(input) = self.pool.iter().find(|i| i.id == f.input_id) else {
                    continue;
                };
                let summary = self.summaries.get(&f.input_id).unwrap_or(&empty);
                if classify::match_ids(input, summary, f).contains(&id) {
                    let origin = self.origin(f.input_id);
                    self.discovered.insert(
                        id,
                        DiscoveryRow {
                            id: id.to_string(),
                            executed: self.executed,
                            origin: origin.into(),
                        },
                    );
                    break;
                }
            }
        }
    }
}

/// Runs a coverage-guided exploration of `budget` observations over the
/// given experiments and formats, then shrinks every reported discrepancy
/// to a 1-row/1-column reproducer.
///
/// `corpus_floor` is the id of the first synthesized corpus seed when the
/// input pool carries a corpus region
/// ([`InputSelection::corpus_floor`](crate::InputSelection::corpus_floor));
/// `None` treats every seed input as catalogue.
pub(crate) fn run_explore(
    inputs: &[TestInput],
    experiments: &[Experiment],
    formats: &[StorageFormat],
    seed: u64,
    budget: usize,
    shards: usize,
    corpus_floor: Option<usize>,
) -> ExploreResult {
    let mut ex = Explorer::new(inputs, experiments, formats, seed, shards, corpus_floor);
    while ex.executed < budget {
        let batch = ex.schedule_round(ROUND.min(budget - ex.executed));
        if batch.is_empty() {
            break;
        }
        let observations = ex.execute_batch(&batch);
        for (trial, obs) in batch.iter().zip(observations) {
            ex.absorb(trial, obs);
        }
        ex.update_discoveries();
    }
    let mut failures = ex.obs_failures.clone();
    let mut observations: Vec<(Experiment, Observation)> = Vec::new();
    for (ei, &exp) in ex.experiments.iter().enumerate() {
        failures.extend(check_differential(&ex.exp_obs[ei]));
        observations.extend(ex.exp_obs[ei].iter().cloned().map(|o| (exp, o)));
    }
    let report = classify::classify(&ex.pool, &observations, failures, false);
    let (shrinks, reproducers) = shrink::shrink_report(&report, &ex.pool);
    let mut discoveries: Vec<DiscoveryRow> = ex.discovered.into_values().collect();
    discoveries.sort_by(|a, b| a.executed.cmp(&b.executed).then_with(|| a.id.cmp(&b.id)));
    let stats = ExplorationStats {
        seed,
        budget,
        grid_cells: ex.seed_count * ex.combos.len(),
        executed: ex.executed,
        fresh: ex.fresh,
        mutated: ex.mutated,
        faulted: ex.faulted,
        signatures: ex.map.distinct(),
        novel_from_mutation: ex.novel_from_mutation,
        novel_from_corpus: ex.novel_from_corpus,
        signatures_seen: ex.map.fingerprints(),
        corpus: ex.corpus,
        discoveries,
        shrinks,
    };
    ExploreResult {
        report,
        observations,
        stats,
        reproducers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_inputs;

    #[test]
    fn grid_cursor_visits_every_cell_exactly_once() {
        let inputs = generate_inputs();
        let mut ex = Explorer::new(
            &inputs[..5],
            &[Experiment::ALL[0]],
            StorageFormat::ALL.as_ref(),
            7,
            1,
            None,
        );
        let cells = ex.seed_count * ex.combos.len();
        let mut seen = BTreeSet::new();
        while let Some(t) = ex.next_grid() {
            assert!(seen.insert((ex.pool[t.input_idx].id, t.combo)), "revisit");
        }
        assert_eq!(seen.len(), cells);
    }

    #[test]
    fn exploration_is_deterministic_for_a_fixed_seed() {
        let inputs = generate_inputs();
        let run = || {
            run_explore(
                &inputs[..6],
                &[Experiment::ALL[0]],
                &[StorageFormat::Orc, StorageFormat::Avro],
                42,
                40,
                1,
                None,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a.stats).unwrap(),
            serde_json::to_string(&b.stats).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
        assert_eq!(a.stats.executed, 40);
    }

    #[test]
    fn corpus_grows_and_mutants_run_within_a_small_budget() {
        let inputs = generate_inputs();
        let result = run_explore(
            &inputs[..8],
            &[Experiment::ALL[0]],
            StorageFormat::ALL.as_ref(),
            1,
            120,
            1,
            None,
        );
        assert!(!result.stats.corpus.is_empty());
        assert!(result.stats.mutated > 0, "no mutants executed");
        assert!(result.stats.signatures > 1);
        assert_eq!(
            result.stats.fresh + result.stats.mutated + result.stats.faulted,
            result.stats.executed
        );
        assert_eq!(result.stats.signatures_seen.len(), result.stats.signatures);
    }

    #[test]
    fn corpus_region_is_scheduled_first_and_attributed_as_corpus() {
        // Three catalogue inputs plus a small corpus region above them.
        let mut inputs: Vec<TestInput> = generate_inputs().into_iter().take(3).collect();
        let floor = inputs.len();
        inputs.extend(crate::corpus::synthesize_inputs(
            &crate::corpus::CorpusShape {
                columns: 4,
                ..Default::default()
            },
            5,
            floor,
        ));
        let result = run_explore(
            &inputs,
            &[Experiment::ALL[0]],
            &[StorageFormat::Orc],
            3,
            24,
            1,
            Some(floor),
        );
        assert!(
            result.stats.novel_from_corpus >= 1,
            "no corpus-novel signature within the budget: {:?}",
            result.stats
        );
        assert!(
            result.stats.corpus.iter().any(|r| r.origin == "corpus"),
            "no corpus-origin admission: {:?}",
            result.stats.corpus
        );
        // Corpus-first scheduling: the very first admissions are corpus
        // inputs, not catalogue ones.
        assert_eq!(result.stats.corpus[0].origin, "corpus");
    }
}
