//! Real-shaped workload corpus with schema inference (ROADMAP item 2).
//!
//! The 422-input catalogue is hand-built from interface specifications;
//! real CSI failures surface on *messy production traffic* crossing system
//! boundaries. This module closes that gap from two directions:
//!
//! 1. **A seeded synthesizer** ([`synthesize`]) of real-shaped tables:
//!    log-normal per-column value cardinalities, configurable null rates,
//!    unicode / mojibake strings, mixed decimal precisions, wide (64+
//!    column) schemas, and geometrically skewed partition keys — all a
//!    pure function of ([`CorpusShape`], seed), so a corpus-seeded
//!    campaign is as byte-deterministic as every other mode.
//!
//! 2. **A schema-inference front door** ([`infer`]) that turns any
//!    CSV/JSON-lines byte stream into typed campaign inputs via
//!    per-column type voting (boolean / int / decimal / date / timestamp,
//!    with string as the universal fallback). Inference canonicalizes:
//!    [`InferredTable::render_csv`] emits a canonical CSV whose
//!    re-inference is a fixed point — `render → infer → render` is
//!    byte-stable, pinned by `tests/corpus.rs`.
//!
//! [`synthesize_inputs`] flattens a synthesized table into [`TestInput`]s
//! (one representative per column, plus deliberate representability edges
//! every few columns), which is what `InputSelection::Corpus` resolves to:
//! the catalogue stays, corpus inputs are appended with fresh ids, and
//! `Campaign::explore` schedules the corpus region first so the mutation
//! engine works realistic inputs from round one.

use crate::generator::{TestInput, Validity};
use csi_core::value::{
    format_date, format_timestamp, parse_date, parse_timestamp, DataType, Decimal, StructField,
    Value,
};
use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Upper bound on [`CorpusShape::columns`]: a wire spec asking for more is
/// a resource bomb, not a table.
pub const MAX_COLUMNS: usize = 4096;

/// Upper bound on [`CorpusShape::rows`].
pub const MAX_ROWS: usize = 65_536;

/// The shape of a synthesized corpus table. Serializable (it travels
/// inside `CampaignSpec` via `InputSelection::Corpus`), integer-only so
/// the wire round trip is trivially lossless.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusShape {
    /// Columns in the table (1..=[`MAX_COLUMNS`]); 64+ makes a wide schema.
    pub columns: usize,
    /// Rows per column (1..=[`MAX_ROWS`]).
    pub rows: usize,
    /// Percentage of cells that are NULL (0..=100).
    pub null_rate_pct: u8,
    /// Location (mu × 100, in ln-space) of the log-normal distribution the
    /// per-column value cardinalities are drawn from.
    pub cardinality_mu_x100: u32,
    /// Spread (sigma × 100, in ln-space) of the cardinality distribution.
    pub cardinality_sigma_x100: u32,
    /// Emit unicode / mixed-encoding (mojibake) strings.
    pub unicode: bool,
    /// Pool of (precision, scale) pairs the table's DECIMAL columns cycle
    /// through — mixed precisions are the point.
    pub decimal_precisions: Vec<(u8, u8)>,
    /// Distinct partition keys for column 0; `0` disables the partition
    /// column. Keys are drawn geometrically (key k is ~2× rarer than
    /// key k-1), the classic skewed-partition shape.
    pub partition_keys: usize,
    /// Every n-th column also emits a deliberately *invalid* edge input
    /// (excess decimal scale, overlong CHAR/VARCHAR, unparseable text);
    /// `0` emits valid representatives only.
    pub invalid_every: usize,
}

impl Default for CorpusShape {
    /// A modest messy table: 12 columns, 48 rows, 10% nulls, unicode
    /// strings, four decimal precisions the catalogue never declares,
    /// 8 skewed partition keys, an invalid edge every 3rd column.
    fn default() -> CorpusShape {
        CorpusShape {
            columns: 12,
            rows: 48,
            null_rate_pct: 10,
            cardinality_mu_x100: 250,
            cardinality_sigma_x100: 120,
            unicode: true,
            decimal_precisions: vec![(24, 6), (12, 4), (38, 18), (7, 3)],
            partition_keys: 8,
            invalid_every: 3,
        }
    }
}

impl CorpusShape {
    /// The wide-schema preset: 64 columns (the ROADMAP's "wide (64+
    /// column) schemas"), shorter rows to keep campaigns cheap.
    pub fn wide() -> CorpusShape {
        CorpusShape {
            columns: 64,
            rows: 24,
            ..CorpusShape::default()
        }
    }

    /// Validates the shape, returning a human-readable reason when a
    /// (typically wire-revived) shape cannot synthesize a table.
    pub fn validate(&self) -> Result<(), String> {
        if self.columns == 0 || self.columns > MAX_COLUMNS {
            return Err(format!(
                "corpus columns {} outside 1..={MAX_COLUMNS}",
                self.columns
            ));
        }
        if self.rows == 0 || self.rows > MAX_ROWS {
            return Err(format!("corpus rows {} outside 1..={MAX_ROWS}", self.rows));
        }
        if self.null_rate_pct > 100 {
            return Err(format!("null rate {}% exceeds 100%", self.null_rate_pct));
        }
        if self.decimal_precisions.is_empty() {
            return Err("decimal precision pool is empty".into());
        }
        for &(p, s) in &self.decimal_precisions {
            if p == 0 || p > Decimal::MAX_PRECISION || s > p {
                return Err(format!("invalid decimal precision ({p},{s})"));
            }
        }
        Ok(())
    }
}

/// A synthesized typed table: declared fields plus column-major cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusTable {
    /// Declared schema (names and types, including CHAR/VARCHAR widths and
    /// mixed decimal precisions inference alone could never declare).
    pub fields: Vec<StructField>,
    /// Column-major cells; `cells[c].len() == rows` for every column.
    pub cells: Vec<Vec<Value>>,
}

// --------------------------------------------------------------------------
// Deterministic randomness: the same xorshift the bulk generator uses, with
// per-column streams derived from the column index so column order is
// stable under shape edits that leave earlier columns alone.

fn rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn column_seed(seed: u64, col: usize) -> u64 {
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    s = s.wrapping_mul(0x0100_0000_01b3) ^ (col as u64).wrapping_add(1);
    s = s.wrapping_mul(0x0100_0000_01b3) ^ 0xc0_47;
    // xorshift must never see a zero state.
    if s == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        s
    }
}

/// A deterministic approximately-normal draw (Irwin–Hall over four
/// uniforms), used to place each column's cardinality on the log-normal.
fn approx_normal(state: &mut u64) -> f64 {
    let mut sum = 0.0;
    for _ in 0..4 {
        sum += (rng(state) >> 11) as f64 / (1u64 << 53) as f64;
    }
    // Sum of 4 U(0,1): mean 2, variance 1/3. Normalize to mean 0, sd 1.
    (sum - 2.0) / (1.0f64 / 3.0).sqrt()
}

fn lognormal_cardinality(shape: &CorpusShape, state: &mut u64) -> usize {
    let mu = shape.cardinality_mu_x100 as f64 / 100.0;
    let sigma = shape.cardinality_sigma_x100 as f64 / 100.0;
    let card = (mu + sigma * approx_normal(state)).exp();
    (card as usize).clamp(1, shape.rows)
}

/// Geometric (heavily skewed) index into `n` partition keys: key 0 is the
/// hot key, each successive key roughly half as likely.
fn skewed_index(r: u64, n: usize) -> usize {
    let mut j = 0;
    let mut bits = r;
    while j + 1 < n && bits & 1 == 1 {
        j += 1;
        bits >>= 1;
    }
    j
}

// --------------------------------------------------------------------------
// The synthesizer.

/// The declared type of column `col` under `shape`: column 0 is the skewed
/// partition key (when enabled), the rest cycle through a fixed pool with
/// the shape's decimal precisions spliced in.
fn column_type(shape: &CorpusShape, col: usize, state: &mut u64) -> DataType {
    if col == 0 && shape.partition_keys > 0 {
        return DataType::String;
    }
    let decimals = &shape.decimal_precisions;
    match col % 10 {
        0 => DataType::Int,
        1 => {
            let (p, s) = decimals[col / 10 % decimals.len()];
            DataType::Decimal(p, s)
        }
        2 => DataType::String,
        3 => DataType::Long,
        4 => DataType::Varchar([9, 17, 33, 63][(rng(state) % 4) as usize]),
        5 => DataType::Date,
        6 => {
            let (p, s) = decimals[(col / 10 + 1) % decimals.len()];
            DataType::Decimal(p, s)
        }
        7 => DataType::Char([2, 5, 7][(rng(state) % 3) as usize]),
        8 => DataType::Timestamp,
        _ => DataType::Boolean,
    }
}

/// One distinct dictionary value for slot `j` of a column of type `ty`.
fn dictionary_value(ty: &DataType, j: usize, base: u64, unicode: bool) -> Value {
    match ty {
        DataType::Int => Value::Int((base as i32).wrapping_add(j as i32 * 9973) / 2),
        DataType::Long => Value::Long((base as i64).wrapping_add(j as i64 * 99_991) / 2),
        DataType::Boolean => Value::Boolean(j.is_multiple_of(2)),
        DataType::Decimal(p, s) => {
            // At most p digits at exactly the declared scale; `j`-striped
            // so dictionary entries are distinct.
            let digits = 10i128.pow((*p).min(27) as u32 - 1);
            let unscaled = ((base as i128 + j as i128 * 1_000_003) % digits) - digits / 2;
            Value::Decimal(Decimal::new(unscaled, *p, *s).expect("corpus decimal within bounds"))
        }
        DataType::String => {
            if unicode {
                // Rotate through ASCII, accented, CJK, emoji, mojibake
                // (UTF-8 read as Latin-1 and re-encoded: "Ã©"), and
                // CSV-hostile strings with commas and quotes.
                match j % 6 {
                    0 => Value::Str(format!("plain-{j}-{base:08x}")),
                    1 => Value::Str(format!("caf\u{00e9}-{j}")),
                    2 => Value::Str(format!("\u{4e16}\u{754c}-{j}")),
                    3 => Value::Str(format!("id-{j}-\u{1f4c8}")),
                    4 => Value::Str(format!("mojibake-\u{00c3}\u{00a9}-{j}")),
                    _ => Value::Str(format!("a,b \"q\" {j}")),
                }
            } else {
                Value::Str(format!("v{j}-{base:08x}"))
            }
        }
        DataType::Varchar(w) => {
            let body = format!("w{j}x{base:x}");
            let mut s: String = body.chars().take(*w as usize).collect();
            if s.is_empty() {
                s.push('x');
            }
            Value::Str(s)
        }
        DataType::Char(w) => {
            // Exactly `w` characters: CHAR round trips are padding-free.
            let body = format!("c{j}{base:x}zzzzzzzzzz");
            Value::Str(body.chars().take(*w as usize).collect())
        }
        // 1970..~2098: inside both engines' ranges, past every ORC/Julian
        // cutover, so corpus dates never re-trip the catalogue's D06/D07.
        DataType::Date => Value::Date(((base.wrapping_add(j as u64 * 37)) % 47_000) as i32),
        DataType::Timestamp => Value::Timestamp(
            ((base.wrapping_add(j as u64 * 1_048_573)) % 4_000_000_000_000_000) as i64,
        ),
        other => panic!("corpus dictionary_value: unsupported type {other:?}"),
    }
}

/// Synthesizes a real-shaped table: a pure function of (shape, seed).
pub fn synthesize(shape: &CorpusShape, seed: u64) -> CorpusTable {
    shape
        .validate()
        .unwrap_or_else(|e| panic!("invalid corpus shape: {e}"));
    let mut fields = Vec::with_capacity(shape.columns);
    let mut cells = Vec::with_capacity(shape.columns);
    for col in 0..shape.columns {
        let mut state = column_seed(seed, col);
        let ty = column_type(shape, col, &mut state);
        let name = if col == 0 && shape.partition_keys > 0 {
            "pk".to_string()
        } else {
            format!("c{col}")
        };
        let card = lognormal_cardinality(shape, &mut state);
        let base = rng(&mut state);
        let partitioned = col == 0 && shape.partition_keys > 0;
        let dict: Vec<Value> = if partitioned {
            (0..shape.partition_keys)
                .map(|j| Value::Str(format!("part-{j:03}")))
                .collect()
        } else {
            let card = if ty == DataType::Boolean {
                card.min(2)
            } else {
                card
            };
            (0..card)
                .map(|j| dictionary_value(&ty, j, base, shape.unicode))
                .collect()
        };
        let mut column = Vec::with_capacity(shape.rows);
        for _ in 0..shape.rows {
            let r = rng(&mut state);
            if (r % 100) < shape.null_rate_pct as u64 {
                column.push(Value::Null);
                continue;
            }
            let idx = if partitioned {
                skewed_index(r >> 8, dict.len())
            } else {
                (r >> 8) as usize % dict.len()
            };
            column.push(dict[idx].clone());
        }
        fields.push(StructField::new(name, ty));
        cells.push(column);
    }
    CorpusTable { fields, cells }
}

impl CorpusTable {
    /// Renders the typed table as canonical CSV (header + rows). String
    /// cells are always quoted; other cells render in their canonical
    /// text form. Feeding these bytes to [`infer`] recovers the table's
    /// *inferable* shape (CHAR/VARCHAR collapse to STRING, declared
    /// decimal precision narrows to the observed digits — exactly the
    /// information a schemaless stream loses).
    pub fn render_csv(&self) -> Vec<u8> {
        let names: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
        let rows = self.cells.first().map_or(0, Vec::len);
        render_rows(&names, rows, |row, col| render_cell(&self.cells[col][row]))
    }
}

/// The deliberate representability edge emitted for column `col` (every
/// [`CorpusShape::invalid_every`]-th column): a value the declared type
/// documents as unrepresentable, so the error-handling oracle has corpus
/// traffic too.
fn invalid_edge(ty: &DataType) -> Option<(Value, &'static str)> {
    Some(match ty {
        DataType::Decimal(_, s) => (
            Value::Decimal(
                Decimal::parse(&format!("1.{}", "1".repeat(*s as usize + 1)))
                    .expect("static excess-scale decimal"),
            ),
            "excess-scale",
        ),
        DataType::Varchar(w) => (Value::Str("v".repeat(*w as usize + 1)), "overlong"),
        DataType::Char(w) => (Value::Str("c".repeat(*w as usize + 1)), "overlong"),
        DataType::Int | DataType::Long => (Value::Str(" 41 ".into()), "padded-numeral"),
        DataType::Date => (Value::Str("2026-13-40".into()), "unparseable-date"),
        DataType::Timestamp => (Value::Str("not a time".into()), "unparseable-timestamp"),
        DataType::Boolean => (Value::Str("yes".into()), "hive-lenient-boolean"),
        _ => return None,
    })
}

/// Flattens a synthesized table into typed campaign inputs with ids from
/// `first_id`: one valid representative per column (its first non-null
/// cell), plus a deliberate invalid edge for every
/// [`CorpusShape::invalid_every`]-th column that has one.
pub fn synthesize_inputs(shape: &CorpusShape, seed: u64, first_id: usize) -> Vec<TestInput> {
    let table = synthesize(shape, seed);
    let mut out = Vec::new();
    let mut id = first_id;
    let mut push = |ty: DataType, value: Value, validity: Validity, label: String| {
        out.push(TestInput {
            id,
            column_type: ty,
            value,
            validity,
            label,
            expected_back: None,
        });
        id += 1;
    };
    for (col, field) in table.fields.iter().enumerate() {
        let ty = &field.data_type;
        let rep = table.cells[col]
            .iter()
            .find(|v| !matches!(v, Value::Null))
            .cloned()
            .unwrap_or(Value::Null);
        push(
            ty.clone(),
            rep,
            Validity::Valid,
            format!("corpus {} {} rep", field.name, ty.sql_name()),
        );
        if shape.invalid_every > 0 && col % shape.invalid_every == 1 {
            if let Some((value, edge)) = invalid_edge(ty) {
                push(
                    ty.clone(),
                    value,
                    Validity::Invalid,
                    format!("corpus {} {} {edge}", field.name, ty.sql_name()),
                );
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Schema inference.

/// Why a byte stream could not be inferred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The stream holds no rows at all (it may still hold a BOM or
    /// whitespace).
    Empty,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Empty => write!(f, "input stream holds no rows"),
        }
    }
}

impl std::error::Error for InferError {}

/// One inferred column: a name, the voted type, and the materialized cells.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredColumn {
    /// Column name (header cell, JSON key, or generated `c{N}`).
    pub name: String,
    /// The type the per-cell votes agreed on.
    pub data_type: DataType,
    /// Cells parsed into the voted type (`Value::Null` for empties and
    /// rag-padded slots).
    pub cells: Vec<Value>,
}

/// A typed table inferred from a byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredTable {
    /// Columns in stream order.
    pub columns: Vec<InferredColumn>,
}

/// One raw cell: unescaped text plus whether it arrived quoted (a quoted
/// cell votes string unconditionally — the canonical renderer quotes every
/// string, which is what makes re-inference a fixed point).
#[derive(Debug, Clone)]
struct RawCell {
    text: String,
    quoted: bool,
}

impl RawCell {
    fn bare(text: impl Into<String>) -> RawCell {
        RawCell {
            text: text.into(),
            quoted: false,
        }
    }

    fn is_null(&self) -> bool {
        !self.quoted && self.text.is_empty()
    }
}

/// Strips a UTF-8 BOM and lossily decodes the stream (malformed UTF-8
/// becomes U+FFFD replacement characters and infers as string data).
fn decode(bytes: &[u8]) -> String {
    let bytes = bytes.strip_prefix(b"\xef\xbb\xbf").unwrap_or(bytes);
    String::from_utf8_lossy(bytes).into_owned()
}

/// Splits one CSV line into cells, honoring double-quoted cells with `""`
/// escapes.
fn split_csv_line(line: &str) -> Vec<RawCell> {
    let mut cells = Vec::new();
    let mut text = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    text.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                text.push(c);
            }
        } else {
            match c {
                '"' if text.is_empty() => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    cells.push(RawCell { text, quoted });
                    text = String::new();
                    quoted = false;
                }
                _ => text.push(c),
            }
        }
    }
    cells.push(RawCell { text, quoted });
    cells
}

/// A raw JSON value, deserialized through the vendored serde's [`Content`]
/// data model (this workspace's serde has no `Value` type).
struct RawJson(Content);

impl Deserialize for RawJson {
    fn from_content(c: &Content) -> Result<RawJson, String> {
        Ok(RawJson(c.clone()))
    }
}

fn json_cell(content: &Content) -> RawCell {
    match content {
        Content::Null => RawCell::bare(""),
        Content::Bool(b) => RawCell::bare(if *b { "true" } else { "false" }),
        Content::Int(i) => RawCell::bare(i.to_string()),
        Content::Float(x) => RawCell::bare(format!("{x}")),
        Content::Str(s) => RawCell {
            text: s.clone(),
            quoted: true,
        },
        // Nested structures flatten to their JSON text, as string data.
        nested => RawCell {
            text: serde_json::to_string(&RawJsonSer(nested.clone())).unwrap_or_default(),
            quoted: true,
        },
    }
}

struct RawJsonSer(Content);

impl Serialize for RawJsonSer {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

/// Parses the stream into (names, row-major cells): JSON-lines when the
/// first non-empty line starts with `{`, CSV (first row = header)
/// otherwise. Ragged CSV rows are padded with nulls to the widest row;
/// JSON objects contribute columns in first-seen key order.
fn parse_rows(text: &str) -> (Vec<String>, Vec<Vec<RawCell>>) {
    let lines: Vec<&str> = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.trim().is_empty())
        .collect();
    if lines.is_empty() {
        return (Vec::new(), Vec::new());
    }
    if lines
        .first()
        .is_some_and(|l| l.trim_start().starts_with('{'))
    {
        let mut names: Vec<String> = Vec::new();
        let mut objects: Vec<Vec<(String, RawCell)>> = Vec::new();
        for line in &lines {
            let Ok(RawJson(Content::Map(entries))) = serde_json::from_str::<RawJson>(line) else {
                // A malformed JSON line degrades to one string cell in a
                // catch-all column, rather than poisoning the stream.
                objects.push(vec![(
                    "raw".to_string(),
                    RawCell {
                        text: (*line).to_string(),
                        quoted: true,
                    },
                )]);
                if !names.iter().any(|n| n == "raw") {
                    names.push("raw".to_string());
                }
                continue;
            };
            let mut row = Vec::new();
            for (k, v) in &entries {
                let key = match k {
                    Content::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                };
                if !names.contains(&key) {
                    names.push(key.clone());
                }
                row.push((key, json_cell(v)));
            }
            objects.push(row);
        }
        let rows = objects
            .into_iter()
            .map(|obj| {
                names
                    .iter()
                    .map(|name| {
                        obj.iter()
                            .find(|(k, _)| k == name)
                            .map(|(_, c)| c.clone())
                            .unwrap_or_else(|| RawCell::bare(""))
                    })
                    .collect()
            })
            .collect();
        (names, rows)
    } else {
        let mut parsed: Vec<Vec<RawCell>> = lines.iter().map(|l| split_csv_line(l)).collect();
        let header = parsed.remove(0);
        let width = parsed
            .iter()
            .map(Vec::len)
            .chain([header.len()])
            .max()
            .unwrap_or(0);
        let mut names: Vec<String> = header.into_iter().map(|c| c.text).collect();
        for i in names.len()..width {
            names.push(format!("c{i}"));
        }
        for row in &mut parsed {
            while row.len() < width {
                row.push(RawCell::bare(""));
            }
        }
        (names, parsed)
    }
}

/// What one bare (unquoted) cell could be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellClass {
    Bool,
    /// Integer with its digit count; `fits_i32` narrows the column type.
    Int {
        fits_i32: bool,
        digits: u8,
    },
    /// Decimal with integral digit and scale counts.
    Dec {
        int_digits: u8,
        scale: u8,
    },
    Date,
    Timestamp,
    Text,
}

fn classify_cell(text: &str) -> CellClass {
    if text == "true" || text == "false" {
        return CellClass::Bool;
    }
    let body = text.strip_prefix('-').unwrap_or(text);
    if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
        // Integer — but one that overflows i64 falls back to string (the
        // documented numeric-overflow fallback; DECIMAL(38,0) could hold
        // it, yet silently promoting 25-digit "integers" hides overflow
        // bugs the campaign exists to find).
        return match text.parse::<i64>() {
            Ok(v) => CellClass::Int {
                fits_i32: i32::try_from(v).is_ok(),
                digits: body.len() as u8,
            },
            Err(_) => CellClass::Text,
        };
    }
    if let Some((int_part, frac_part)) = body.split_once('.') {
        let digits_ok = |s: &str| s.bytes().all(|b| b.is_ascii_digit());
        if (!int_part.is_empty() || !frac_part.is_empty())
            && digits_ok(int_part)
            && digits_ok(frac_part)
            && !frac_part.is_empty()
        {
            let int_digits = int_part.trim_start_matches('0').len().max(1) as u8;
            let scale = frac_part.len() as u8;
            if int_digits as u32 + scale as u32 <= Decimal::MAX_PRECISION as u32 {
                return CellClass::Dec { int_digits, scale };
            }
            return CellClass::Text; // precision overflow → string fallback
        }
    }
    if parse_date(text).is_some() {
        return CellClass::Date;
    }
    if parse_timestamp(text).is_some() {
        return CellClass::Timestamp;
    }
    CellClass::Text
}

/// Per-column vote accumulator: a class survives only if *every* non-null
/// cell is compatible with it; string is compatible with everything.
#[derive(Debug, Clone)]
struct Vote {
    non_null: usize,
    bool_ok: bool,
    int_ok: bool,
    dec_ok: bool,
    date_ok: bool,
    ts_ok: bool,
    fits_i32: bool,
    saw_dec: bool,
    max_int_digits: u8,
    max_scale: u8,
}

impl Vote {
    fn new() -> Vote {
        Vote {
            non_null: 0,
            bool_ok: true,
            int_ok: true,
            dec_ok: true,
            date_ok: true,
            ts_ok: true,
            fits_i32: true,
            saw_dec: false,
            max_int_digits: 0,
            max_scale: 0,
        }
    }

    fn absorb(&mut self, cell: &RawCell) {
        if cell.is_null() {
            return;
        }
        self.non_null += 1;
        let class = if cell.quoted {
            CellClass::Text
        } else {
            classify_cell(&cell.text)
        };
        match class {
            CellClass::Bool => {
                self.int_ok = false;
                self.dec_ok = false;
                self.date_ok = false;
                self.ts_ok = false;
            }
            CellClass::Int { fits_i32, digits } => {
                self.bool_ok = false;
                self.date_ok = false;
                self.ts_ok = false;
                self.fits_i32 &= fits_i32;
                self.max_int_digits = self.max_int_digits.max(digits);
            }
            CellClass::Dec { int_digits, scale } => {
                self.bool_ok = false;
                self.int_ok = false;
                self.date_ok = false;
                self.ts_ok = false;
                self.saw_dec = true;
                self.max_int_digits = self.max_int_digits.max(int_digits);
                self.max_scale = self.max_scale.max(scale);
            }
            CellClass::Date => {
                self.bool_ok = false;
                self.int_ok = false;
                self.dec_ok = false;
                self.ts_ok = false;
            }
            CellClass::Timestamp => {
                self.bool_ok = false;
                self.int_ok = false;
                self.dec_ok = false;
                self.date_ok = false;
            }
            CellClass::Text => {
                self.bool_ok = false;
                self.int_ok = false;
                self.dec_ok = false;
                self.date_ok = false;
                self.ts_ok = false;
            }
        }
    }

    /// The column type the surviving votes elect.
    fn elect(&self) -> DataType {
        if self.non_null == 0 {
            // An all-null column carries no type evidence; string is the
            // universal fallback.
            return DataType::String;
        }
        if self.bool_ok {
            return DataType::Boolean;
        }
        if self.date_ok {
            return DataType::Date;
        }
        if self.ts_ok {
            return DataType::Timestamp;
        }
        if self.dec_ok && self.saw_dec {
            let precision = self.max_int_digits as u32 + self.max_scale as u32;
            if precision >= 1 && precision <= Decimal::MAX_PRECISION as u32 {
                return DataType::Decimal(precision as u8, self.max_scale);
            }
            return DataType::String; // mixed cells overflow DECIMAL(38)
        }
        if self.int_ok {
            return if self.fits_i32 {
                DataType::Int
            } else {
                DataType::Long
            };
        }
        DataType::String
    }
}

/// Materializes one raw cell into the elected column type.
fn materialize(cell: &RawCell, ty: &DataType) -> Value {
    if cell.is_null() {
        return Value::Null;
    }
    let text = cell.text.as_str();
    match ty {
        DataType::Boolean => Value::Boolean(text == "true"),
        DataType::Int => Value::Int(text.parse().expect("voted int cell parses")),
        DataType::Long => Value::Long(text.parse().expect("voted long cell parses")),
        DataType::Decimal(p, s) => {
            let d = Decimal::parse(text).expect("voted decimal cell parses");
            Value::Decimal(d.rescale(*p, *s).expect("voted decimal rescales"))
        }
        DataType::Date => Value::Date(parse_date(text).expect("voted date cell parses")),
        DataType::Timestamp => {
            Value::Timestamp(parse_timestamp(text).expect("voted timestamp cell parses"))
        }
        _ => Value::Str(text.to_string()),
    }
}

/// Infers a typed table from a CSV or JSON-lines byte stream.
///
/// The front door of the corpus subsystem: UTF-8 BOMs are stripped,
/// malformed UTF-8 is lossily replaced, ragged rows are null-padded, and
/// each column's type is elected by per-cell voting (boolean / int /
/// decimal / date / timestamp, string fallback — quoted cells always vote
/// string, integers overflowing `i64` and decimals overflowing
/// `DECIMAL(38)` fall back to string). An empty stream is
/// [`InferError::Empty`].
pub fn infer(bytes: &[u8]) -> Result<InferredTable, InferError> {
    let text = decode(bytes);
    let (names, rows) = parse_rows(&text);
    if names.is_empty() {
        return Err(InferError::Empty);
    }
    let mut votes = vec![Vote::new(); names.len()];
    for row in &rows {
        for (c, cell) in row.iter().enumerate() {
            votes[c].absorb(cell);
        }
    }
    let columns = names
        .into_iter()
        .enumerate()
        .map(|(c, name)| {
            let data_type = votes[c].elect();
            let cells = rows
                .iter()
                .map(|row| materialize(&row[c], &data_type))
                .collect();
            InferredColumn {
                name,
                data_type,
                cells,
            }
        })
        .collect();
    Ok(InferredTable { columns })
}

/// Renders one canonical CSV cell for a value.
fn render_cell(value: &Value) -> String {
    match value {
        Value::Null => String::new(),
        Value::Boolean(b) => if *b { "true" } else { "false" }.to_string(),
        Value::Int(v) => v.to_string(),
        Value::Long(v) => v.to_string(),
        Value::Double(v) => format!("{v}"),
        Value::Decimal(d) => d.to_string(),
        Value::Date(d) => format_date(*d),
        Value::Timestamp(us) => format_timestamp(*us),
        Value::Str(s) => quote_csv(s),
        other => quote_csv(&format!("{other:?}")),
    }
}

fn quote_csv(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

fn render_rows(names: &[&str], rows: usize, cell: impl Fn(usize, usize) -> String) -> Vec<u8> {
    let mut out = String::new();
    let header: Vec<String> = names
        .iter()
        .map(|n| {
            if n.contains(',') || n.contains('"') || n.contains('\n') || n.contains('\r') {
                quote_csv(n)
            } else {
                (*n).to_string()
            }
        })
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..rows {
        let line: Vec<String> = (0..names.len()).map(|col| cell(row, col)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out.into_bytes()
}

impl InferredTable {
    /// Renders the canonical CSV of this table. The round-trip guarantee:
    /// for any inferred table `t`, `infer(&t.render_csv())` re-elects the
    /// same types and values, and its `render_csv()` is byte-identical —
    /// `render → infer → render` is a fixed point.
    pub fn render_csv(&self) -> Vec<u8> {
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        let rows = self.columns.first().map_or(0, |c| c.cells.len());
        render_rows(&names, rows, |row, col| {
            render_cell(&self.columns[col].cells[row])
        })
    }

    /// Flattens the inferred table into typed campaign inputs with ids
    /// from `first_id`: one input per column, carrying its first non-null
    /// cell (all-null columns carry `Value::Null`). Inference only elects
    /// types its cells are representable in, so every input is `Valid`.
    pub fn inputs(&self, first_id: usize) -> Vec<TestInput> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, col)| {
                let value = col
                    .cells
                    .iter()
                    .find(|v| !matches!(v, Value::Null))
                    .cloned()
                    .unwrap_or(Value::Null);
                TestInput {
                    id: first_id + i,
                    column_type: col.data_type.clone(),
                    value,
                    validity: Validity::Valid,
                    label: format!("inferred {} {}", col.name, col.data_type.sql_name()),
                    expected_back: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_a_pure_function_of_shape_and_seed() {
        let shape = CorpusShape::default();
        let a = synthesize(&shape, 7);
        let b = synthesize(&shape, 7);
        assert_eq!(a, b);
        let c = synthesize(&shape, 8);
        assert_ne!(a, c, "seed must perturb the table");
        assert_eq!(a.fields.len(), shape.columns);
        assert!(a.cells.iter().all(|col| col.len() == shape.rows));
    }

    #[test]
    fn wide_shape_is_wide_and_mixes_decimal_precisions() {
        let shape = CorpusShape::wide();
        assert!(shape.columns >= 64);
        let table = synthesize(&shape, 42);
        let precisions: std::collections::BTreeSet<(u8, u8)> = table
            .fields
            .iter()
            .filter_map(|f| match f.data_type {
                DataType::Decimal(p, s) => Some((p, s)),
                _ => None,
            })
            .collect();
        assert!(
            precisions.len() >= 2,
            "expected mixed decimal precisions, got {precisions:?}"
        );
        // None of them collide with the catalogue's declared decimals.
        for d in [(10, 2), (38, 10), (5, 0)] {
            assert!(
                !precisions.contains(&d),
                "{d:?} collides with the catalogue"
            );
        }
    }

    #[test]
    fn partition_keys_are_skewed_toward_the_hot_key() {
        let shape = CorpusShape {
            rows: 512,
            partition_keys: 8,
            null_rate_pct: 0,
            ..CorpusShape::default()
        };
        let table = synthesize(&shape, 3);
        let hot = table.cells[0]
            .iter()
            .filter(|v| matches!(v, Value::Str(s) if s == "part-000"))
            .count();
        let cold = table.cells[0]
            .iter()
            .filter(|v| matches!(v, Value::Str(s) if s == "part-007"))
            .count();
        assert!(
            hot > 4 * cold.max(1),
            "hot key {hot} not skewed over cold {cold}"
        );
    }

    #[test]
    fn null_rate_is_respected_approximately() {
        let shape = CorpusShape {
            rows: 1000,
            null_rate_pct: 30,
            ..CorpusShape::default()
        };
        let table = synthesize(&shape, 11);
        let nulls: usize = table.cells[2]
            .iter()
            .filter(|v| matches!(v, Value::Null))
            .count();
        assert!(
            (200..=400).contains(&nulls),
            "expected ~300 nulls of 1000, got {nulls}"
        );
    }

    #[test]
    fn synthesized_inputs_are_deterministic_and_cover_both_validities() {
        let shape = CorpusShape::default();
        let a = synthesize_inputs(&shape, 9, 1000);
        let b = synthesize_inputs(&shape, 9, 1000);
        assert_eq!(a, b);
        assert_eq!(a.first().map(|i| i.id), Some(1000));
        assert!(a.windows(2).all(|w| w[1].id == w[0].id + 1));
        assert!(a.iter().any(|i| i.validity == Validity::Valid));
        assert!(a.iter().any(|i| i.validity == Validity::Invalid));
    }

    #[test]
    fn csv_voting_elects_int_decimal_timestamp_and_string() {
        let csv = b"i,d,ts,s\n1,1.50,2020-05-01 10:00:00,\"x\"\n2,2.25,2021-06-02 11:30:00,\"7\"\n";
        let t = infer(csv).expect("infers");
        let types: Vec<DataType> = t.columns.iter().map(|c| c.data_type.clone()).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Decimal(3, 2),
                DataType::Timestamp,
                DataType::String, // quoted "7" stays a string
            ]
        );
    }

    #[test]
    fn mixed_incompatible_cells_fall_back_to_string() {
        let t = infer(b"a\n1\n2020-01-01\n").expect("infers");
        assert_eq!(t.columns[0].data_type, DataType::String);
    }

    #[test]
    fn i32_boundary_splits_int_from_long() {
        let t = infer(b"a,b\n2147483647,2147483648\n1,1\n").expect("infers");
        assert_eq!(t.columns[0].data_type, DataType::Int);
        assert_eq!(t.columns[1].data_type, DataType::Long);
    }

    #[test]
    fn json_lines_infer_with_first_seen_key_order() {
        let stream = br#"{"id": 1, "name": "a"}
{"id": 2, "name": "b", "extra": 3.5}
"#;
        let t = infer(stream).expect("infers");
        let names: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "name", "extra"]);
        assert_eq!(t.columns[0].data_type, DataType::Int);
        assert_eq!(t.columns[1].data_type, DataType::String);
        assert_eq!(t.columns[2].data_type, DataType::Decimal(2, 1));
        // The missing first-line "extra" slot padded to null.
        assert_eq!(t.columns[2].cells[0], Value::Null);
    }

    #[test]
    fn render_infer_render_is_byte_stable_for_synthesized_tables() {
        for seed in [1u64, 42, 999] {
            for shape in [CorpusShape::default(), CorpusShape::wide()] {
                let bytes = synthesize(&shape, seed).render_csv();
                let once = infer(&bytes).expect("infers").render_csv();
                let twice = infer(&once).expect("re-infers").render_csv();
                assert_eq!(
                    once, twice,
                    "render->infer->render not a fixed point (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn inferred_inputs_carry_fresh_ids_and_valid_values() {
        let t = infer(b"a,b\n5,x\n").expect("infers");
        let inputs = t.inputs(500);
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].id, 500);
        assert_eq!(inputs[1].id, 501);
        assert!(inputs.iter().all(|i| i.validity == Validity::Valid));
    }

    #[test]
    fn shape_validation_rejects_degenerate_shapes() {
        let bad = |f: fn(&mut CorpusShape)| {
            let mut s = CorpusShape::default();
            f(&mut s);
            s.validate().expect_err("invalid shape accepted")
        };
        bad(|s| s.columns = 0);
        bad(|s| s.columns = MAX_COLUMNS + 1);
        bad(|s| s.rows = 0);
        bad(|s| s.null_rate_pct = 101);
        bad(|s| s.decimal_precisions.clear());
        bad(|s| s.decimal_precisions = vec![(39, 2)]);
        bad(|s| s.decimal_precisions = vec![(5, 9)]);
        CorpusShape::default().validate().expect("default is valid");
    }
}
