//! The discrepancy classifier: groups raw oracle failures into the 15
//! distinct discrepancies of Section 8.2.
//!
//! "There will be many more test failures produced than the ones listed,
//! but they correspond to the same discrepancies as those shown" — this
//! module performs that correspondence. Each discrepancy has a predicate
//! over (input, input-wide error summary, failure); a failure may evidence
//! several discrepancies (the paper's own category lists overlap), and a
//! failure matching none lands in `unattributed`.

use crate::exec;
use crate::generator::{TestInput, Validity};
use crate::plan::Experiment;
use csi_core::boundary::CrossingOutcome;
use csi_core::detect::{flags_error_handling, DetectorAgreement};
use csi_core::fault::{classify_fault_outcome, FaultOutcome, InjectedFault};
use csi_core::oracle::{Observation, OracleFailure};
use csi_core::report::{Discrepancy, DiscrepancyReport, ProblemCategory};
use csi_core::value::{parse_timestamp, DataType, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Error codes observed anywhere for one input, across every plan/format.
#[derive(Debug, Default, Clone)]
pub struct InputSummary {
    /// Machine-readable error codes from writes and reads.
    pub codes: BTreeSet<String>,
}

fn ty_contains_small_int(ty: &DataType) -> bool {
    match ty {
        DataType::Byte | DataType::Short => true,
        DataType::Array(e) => ty_contains_small_int(e),
        DataType::Map(k, v) => ty_contains_small_int(k) || ty_contains_small_int(v),
        DataType::Struct(fields) => fields.iter().any(|f| ty_contains_small_int(&f.data_type)),
        _ => false,
    }
}

fn map_with_non_string_key(ty: &DataType) -> bool {
    match ty {
        DataType::Map(k, _) => **k != DataType::String,
        DataType::Array(e) => map_with_non_string_key(e),
        DataType::Struct(fields) => fields.iter().any(|f| map_with_non_string_key(&f.data_type)),
        _ => false,
    }
}

fn struct_with_mixed_case(ty: &DataType) -> bool {
    match ty {
        DataType::Struct(fields) => fields
            .iter()
            .any(|f| f.name != f.name.to_ascii_lowercase() || struct_with_mixed_case(&f.data_type)),
        DataType::Array(e) => struct_with_mixed_case(e),
        DataType::Map(k, v) => struct_with_mixed_case(k) || struct_with_mixed_case(v),
        _ => false,
    }
}

fn timestamp_before(value: &Value, instant: &str) -> bool {
    match value {
        Value::Timestamp(us) => *us < parse_timestamp(instant).expect("static instant"),
        _ => false,
    }
}

fn date_out_of_range(value: &Value) -> bool {
    matches!(value, Value::Date(d)
        if !(minispark::types::MIN_DATE_DAYS..=minispark::types::MAX_DATE_DAYS).contains(d))
}

fn interval_negative(value: &Value) -> bool {
    matches!(value, Value::Interval { months, micros } if *months < 0 || *micros < 0)
}

struct Descriptor {
    id: &'static str,
    issue_keys: &'static [&'static str],
    title: &'static str,
    categories: &'static [ProblemCategory],
    /// The oracle that *identifies* this discrepancy (the artifact names
    /// each finding by its oracle: `ss_difft 0`, `ss_eh 198`, ...). Used to
    /// decide whether a discrepancy is still *active* under a different
    /// configuration: evidence from secondary oracles (e.g. a WR failure
    /// on a value legitimately stored in converted form) does not keep a
    /// resolved discrepancy alive.
    primary: csi_core::oracle::OracleKind,
    predicate: fn(&TestInput, &InputSummary, &OracleFailure) -> bool,
}

use ProblemCategory::{
    CannotReadWritten as CRW, CustomConfigReliance as CCR, InconsistentErrorBehavior as IEB,
    InternalConfigExposure as ICE, TypeViolation as TV,
};

/// The discrepancy catalogue (DESIGN.md's D01–D15 table).
const CATALOGUE: &[Descriptor] = &[
    Descriptor {
        id: "D01",
        primary: csi_core::oracle::OracleKind::WriteRead,
        issue_keys: &["SPARK-39075"],
        title: "BYTE/SHORT written through Avro cannot be read back (widened to INT, \
                narrowing case missing)",
        categories: &[CRW, ICE, IEB],
        predicate: |input, summary, _| {
            ty_contains_small_int(&input.column_type)
                && summary.codes.contains("INCOMPATIBLE_SCHEMA")
        },
    },
    Descriptor {
        id: "D02",
        primary: csi_core::oracle::OracleKind::WriteRead,
        issue_keys: &["SPARK-39158"],
        title: "Valid decimals written from DataFrame (runtime scale) cannot be read \
                from HiveQL (declared-scale validation)",
        categories: &[CRW, ICE],
        predicate: |input, summary, _| {
            matches!(input.column_type, DataType::Decimal(_, _))
                && input.validity == Validity::Valid
                && summary.codes.contains("SERDE_ERROR")
        },
    },
    Descriptor {
        id: "D03",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["HIVE-26533", "SPARK-40409"],
        title: "SparkSQL DDL widens BYTE/SHORT to INT and folds identifier case \
                ('not case preserving')",
        categories: &[TV, ICE],
        predicate: |input, _, failure| {
            // Valid BYTE/SHORT inputs come back widened ("i32:" in the
            // evidence); invalid ones get *silently accepted* because the
            // widened INT column no longer overflows — both are fruits of
            // the same DDL conversion.
            ty_contains_small_int(&input.column_type)
                && (failure.detail.contains("i32:") || input.validity == Validity::Invalid)
        },
    },
    Descriptor {
        id: "D04",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["HIVE-26531"],
        title: "Avro rejects non-STRING map keys; ORC and Parquet accept them",
        categories: &[ICE],
        predicate: |input, _, _| map_with_non_string_key(&input.column_type),
    },
    Descriptor {
        id: "D05",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40439"],
        title: "Numeric overflow: SparkSQL (ANSI) raises, DataFrame silently writes NULL",
        categories: &[IEB, CCR],
        predicate: |_, summary, _| summary.codes.contains("CAST_OVERFLOW"),
    },
    Descriptor {
        id: "D06",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["HIVE-26528"],
        title: "Pre-1900 timestamps in ORC: Spark raises, HiveQL writes NULL with a log line",
        categories: &[ICE],
        predicate: |input, summary, failure| {
            timestamp_before(&input.value, "1900-01-01 00:00:00")
                && (summary.codes.contains("ORC_TIMESTAMP_RANGE")
                    || failure.formats.iter().any(|f| f == "ORC"))
        },
    },
    Descriptor {
        id: "D07",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["HIVE-26528"],
        title: "Pre-1582 timestamps in Parquet: Hive writes Julian-rebased, Spark reads \
                the raw (shifted) instant",
        categories: &[],
        predicate: |input, _, failure| {
            timestamp_before(&input.value, "1582-10-15 00:00:00")
                && failure.formats.iter().any(|f| f == "PARQUET")
        },
    },
    Descriptor {
        id: "D08",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40616"],
        title: "CHAR/VARCHAR overflow: SparkSQL raises, HiveQL truncates",
        categories: &[TV, CCR],
        predicate: |_, summary, _| summary.codes.contains("EXCEEDS_CHAR_VARCHAR_LENGTH"),
    },
    Descriptor {
        id: "D09",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40525"],
        title: "Unparseable/unpadded inputs: SparkSQL (ANSI) raises CAST_INVALID_INPUT, \
                Hive and DataFrame coerce",
        categories: &[IEB, CCR],
        predicate: |input, summary, _| {
            summary.codes.contains("CAST_INVALID_INPUT") && input.column_type != DataType::Boolean
        },
    },
    Descriptor {
        id: "D10",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40624"],
        title: "INTERVAL columns: SparkSQL rejects the Hive table type, DataFrame stores \
                them as STRING",
        categories: &[IEB, CCR],
        predicate: |input, _, _| {
            input.column_type == DataType::Interval && !interval_negative(&input.value)
        },
    },
    Descriptor {
        id: "D11",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40624"],
        title: "Negative INTERVAL values: same root cause, resolved by the same \
                configuration",
        categories: &[IEB, CCR],
        predicate: |input, _, _| {
            input.column_type == DataType::Interval && interval_negative(&input.value)
        },
    },
    Descriptor {
        id: "D12",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40629"],
        title: "String-to-BOOLEAN: HiveQL accepts 't'/'1'/'yes', SparkSQL (ANSI) only \
                'true'/'false'",
        categories: &[IEB, CCR],
        predicate: |input, _, _| {
            input.column_type == DataType::Boolean && input.validity == Validity::Invalid
        },
    },
    Descriptor {
        id: "D13",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["spark.sql.legacy.charVarcharAsString"],
        title: "CHAR padding: SparkSQL reads blank-padded values, DataFrame trims them",
        categories: &[IEB, CCR],
        predicate: |input, _, _| {
            matches!(input.column_type, DataType::Char(_)) && input.validity == Validity::Valid
        },
    },
    Descriptor {
        id: "D14",
        primary: csi_core::oracle::OracleKind::Differential,
        issue_keys: &["SPARK-40637"],
        title: "Nested STRUCT field names: Hive folds to lowercase, Spark resolves \
                case-sensitively",
        categories: &[],
        predicate: |input, _, _| struct_with_mixed_case(&input.column_type),
    },
    Descriptor {
        id: "D15",
        primary: csi_core::oracle::OracleKind::ErrorHandling,
        issue_keys: &["SPARK-40630"],
        title: "Out-of-range DATE accepted silently by the DataFrame writer (inserted \
                and read back)",
        categories: &[CCR],
        predicate: |input, summary, _| {
            date_out_of_range(&input.value) || summary.codes.contains("DATE_OUT_OF_RANGE")
        },
    },
];

/// The catalogue ids a single failure evidences, given the per-input error
/// summary accumulated so far. Shared between the batch classifier and the
/// explore mode's incremental discovery tracker so both attribute failures
/// identically.
pub(crate) fn match_ids(
    input: &TestInput,
    summary: &InputSummary,
    failure: &OracleFailure,
) -> Vec<&'static str> {
    CATALOGUE
        .iter()
        .filter(|desc| (desc.predicate)(input, summary, failure))
        .map(|desc| desc.id)
        .collect()
}

/// Every catalogue id, in catalogue (report) order.
pub(crate) fn catalogue_ids() -> Vec<&'static str> {
    CATALOGUE.iter().map(|d| d.id).collect()
}

/// The discrepancies *active* in a report: those with evidence from their
/// primary oracle.
///
/// This is the presence notion used to decide which discrepancies a custom
/// configuration resolves (Section 8.2: "developers pointed out that the
/// discrepancies can be resolved by custom configurations"): a discrepancy
/// identified by the differential oracle is resolved once all interfaces
/// behave consistently, even if individual write–read conversions remain.
pub fn active_ids(report: &DiscrepancyReport) -> Vec<String> {
    let primary: BTreeMap<&str, csi_core::oracle::OracleKind> =
        CATALOGUE.iter().map(|d| (d.id, d.primary)).collect();
    report
        .discrepancies
        .iter()
        .filter(|d| {
            let Some(kind) = primary.get(d.id.as_str()) else {
                return true;
            };
            d.evidence.iter().any(|f| f.oracle == *kind)
        })
        .map(|d| d.id.clone())
        .collect()
}

/// Classifies raw failures into the discrepancy catalogue.
///
/// `detector_enabled` marks whether the campaign ran the online detector:
/// it gates the detection aggregates so a detection-free report and a
/// detection-off report stay distinguishable.
pub fn classify(
    inputs: &[TestInput],
    observations: &[(Experiment, Observation)],
    failures: Vec<OracleFailure>,
    detector_enabled: bool,
) -> DiscrepancyReport {
    // Build per-input error summaries across all observations.
    let mut summaries: BTreeMap<usize, InputSummary> = BTreeMap::new();
    for (_, obs) in observations {
        let s = summaries.entry(obs.input_id).or_default();
        if let Err(e) = &obs.write.result {
            s.codes.insert(e.code.clone());
        }
        if let Some(read) = &obs.read {
            if let Err(e) = &read.result {
                s.codes.insert(e.code.clone());
            }
        }
    }
    let empty = InputSummary::default();
    let mut evidence: BTreeMap<&'static str, Vec<OracleFailure>> = BTreeMap::new();
    let mut unattributed = Vec::new();
    for failure in &failures {
        let Some(input) = inputs.iter().find(|i| i.id == failure.input_id) else {
            unattributed.push(failure.clone());
            continue;
        };
        let summary = summaries.get(&failure.input_id).unwrap_or(&empty);
        let ids = match_ids(input, summary, failure);
        if ids.is_empty() {
            unattributed.push(failure.clone());
        }
        for id in ids {
            evidence.entry(id).or_default().push(failure.clone());
        }
    }
    let discrepancies: Vec<Discrepancy> = CATALOGUE
        .iter()
        .filter_map(|desc| {
            let ev = evidence.remove(desc.id)?;
            let trace = representative_trace(&ev, observations);
            Some(Discrepancy {
                id: desc.id.to_string(),
                issue_keys: desc.issue_keys.iter().map(|s| s.to_string()).collect(),
                title: desc.title.to_string(),
                categories: desc.categories.to_vec(),
                evidence: ev,
                trace,
            })
        })
        .collect();
    let mut trace_totals: BTreeMap<String, usize> = BTreeMap::new();
    for (_, obs) in observations {
        for (channel, n) in obs.trace.channel_counts() {
            *trace_totals.entry(channel).or_insert(0) += n;
        }
    }
    // Detection aggregates: per-channel and per-kind totals, plus the
    // agreement score against the offline §9 oracle over every
    // observation whose trace shows a fired fault.
    let mut detection_totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut detection_kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut agreement = DetectorAgreement::default();
    let mut any_fired = false;
    if detector_enabled {
        for (_, obs) in observations {
            for d in &obs.detections {
                *detection_kinds.entry(d.kind.to_string()).or_insert(0) += 1;
                for channel in &d.channels {
                    *detection_totals.entry(channel.to_string()).or_insert(0) += 1;
                }
            }
            let fired: Vec<InjectedFault> = obs
                .trace
                .crossings
                .iter()
                .filter_map(|c| match &c.outcome {
                    CrossingOutcome::Faulted { fault } => Some(fault.clone()),
                    _ => None,
                })
                .collect();
            if fired.is_empty() {
                continue;
            }
            any_fired = true;
            let surfaced = exec::surfaced_error(obs);
            let oracle = classify_fault_outcome(&fired, surfaced.as_ref());
            let oracle_positive = matches!(
                oracle,
                FaultOutcome::Swallowed | FaultOutcome::Mistranslated
            );
            agreement.score(oracle_positive, flags_error_handling(&obs.detections));
        }
    }
    let valid = inputs
        .iter()
        .filter(|i| i.validity == Validity::Valid)
        .count();
    DiscrepancyReport {
        inputs_total: inputs.len(),
        inputs_valid: valid,
        inputs_invalid: inputs.len() - valid,
        observations: observations.len(),
        raw_failures: failures,
        discrepancies,
        unattributed,
        trace_totals,
        detector_enabled,
        detection_totals,
        detection_kinds,
        detector_agreement: any_fired.then_some(agreement),
    }
}

/// The compact crossing sequence of the first evidencing observation that
/// recorded one — the causal witness rendered under each discrepancy.
fn representative_trace(
    evidence: &[OracleFailure],
    observations: &[(Experiment, Observation)],
) -> Vec<String> {
    for failure in evidence {
        for (_, obs) in observations {
            if obs.input_id == failure.input_id
                && failure.plans.contains(&obs.plan)
                && failure.formats.contains(&obs.format)
                && !obs.trace.is_empty()
            {
                return obs.trace.compact();
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_the_paper_counts() {
        assert_eq!(CATALOGUE.len(), 15);
        let count = |c: ProblemCategory| {
            CATALOGUE
                .iter()
                .filter(|d| d.categories.contains(&c))
                .count()
        };
        // Section 8.2: 2 / 2 / 5 / 7 / 8.
        assert_eq!(count(CRW), 2, "cannot read what was written");
        assert_eq!(count(TV), 2, "type violations");
        assert_eq!(count(ICE), 5, "internal configuration exposure");
        assert_eq!(count(IEB), 7, "inconsistent error behavior");
        assert_eq!(count(CCR), 8, "custom configuration reliance");
    }

    #[test]
    fn type_predicates_recurse() {
        assert!(ty_contains_small_int(&DataType::Array(Box::new(
            DataType::Byte
        ))));
        assert!(!ty_contains_small_int(&DataType::Int));
        assert!(map_with_non_string_key(&DataType::Map(
            Box::new(DataType::Int),
            Box::new(DataType::String)
        )));
        assert!(!map_with_non_string_key(&DataType::Map(
            Box::new(DataType::String),
            Box::new(DataType::Int)
        )));
        let mixed = DataType::Struct(vec![csi_core::value::StructField::new(
            "Inner",
            DataType::Int,
        )]);
        assert!(struct_with_mixed_case(&mixed));
    }

    #[test]
    fn value_predicates() {
        assert!(timestamp_before(
            &Value::Timestamp(parse_timestamp("1850-01-01 00:00:00").unwrap()),
            "1900-01-01 00:00:00"
        ));
        assert!(!timestamp_before(
            &Value::Timestamp(parse_timestamp("1950-01-01 00:00:00").unwrap()),
            "1900-01-01 00:00:00"
        ));
        assert!(date_out_of_range(&Value::Date(
            minispark::types::MAX_DATE_DAYS + 1
        )));
        assert!(!date_out_of_range(&Value::Date(0)));
        assert!(interval_negative(&Value::Interval {
            months: -1,
            micros: 0
        }));
    }
}
