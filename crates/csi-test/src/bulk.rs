//! Bulk (columnar) cross-testing campaigns.
//!
//! The 422-input catalogue exercises *breadth*: every type, every edge
//! value, one row at a time. Bulk campaigns exercise *depth*: a wide
//! table of clean round-tripping data at thousands to millions of rows,
//! written and read through the engines' columnar entry points
//! ([`DataFrameApi::insert_columns`] / [`HiveQl::insert_columns`]) and
//! checked by the vectorized write–read oracle
//! ([`check_write_read_columns`]) plus a fingerprint-based differential
//! oracle across plans.
//!
//! Everything is deterministic in `(rows, seed, formats)`: the generator
//! is a seeded xorshift and the oracles are pure, so two runs of the same
//! config produce byte-identical reports — the same property the row
//! campaigns pin for serial-vs-sharded execution.
//!
//! [`DataFrameApi::insert_columns`]: minispark::dataframe::DataFrameApi::insert_columns
//! [`HiveQl::insert_columns`]: minihive::hiveql::HiveQl::insert_columns
//! [`check_write_read_columns`]: csi_core::oracle::check_write_read_columns

use crate::exec::{CrossTestConfig, Deployment};
use crate::generator::{bulk_schema, generate_bulk_columns};
use crate::plan::Interface;
use csi_core::column::ValueColumn;
use csi_core::oracle::{check_write_read_columns, OracleFailure};
use csi_core::InteractionError;
use minihive::metastore::StorageFormat;
use serde::Serialize;
use std::fmt::Write as _;

/// Configuration of a bulk campaign.
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// Rows per table.
    pub rows: usize,
    /// Generator seed.
    pub seed: u64,
    /// Backend formats to exercise.
    pub formats: Vec<StorageFormat>,
}

impl Default for BulkConfig {
    fn default() -> BulkConfig {
        BulkConfig {
            rows: 4096,
            seed: 42,
            formats: StorageFormat::ALL.to_vec(),
        }
    }
}

/// The bulk interface pairs: the two engines' columnar entry points
/// crossed both ways. SparkSQL has no bulk API (INSERT literals are
/// row-by-row by construction), so it stays in the row campaigns.
const BULK_PLANS: [(Interface, Interface); 4] = [
    (Interface::DataFrame, Interface::DataFrame),
    (Interface::DataFrame, Interface::HiveQl),
    (Interface::HiveQl, Interface::DataFrame),
    (Interface::HiveQl, Interface::HiveQl),
];

/// One (plan, format) cell of a bulk campaign.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct BulkCell {
    /// `write->read` plan label.
    pub plan: String,
    /// Storage format name.
    pub format: String,
    /// Rows read back.
    pub rows_read: usize,
    /// Combined FNV fingerprint over all read columns (0 on crash).
    pub digest: u64,
    /// A crash before the oracle could run, rendered.
    pub crash: Option<String>,
    /// Write–read oracle failures (one per diverging column).
    pub failures: Vec<String>,
}

/// The deterministic result of [`run_bulk`].
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct BulkReport {
    /// Rows per table.
    pub rows: usize,
    /// Generator seed.
    pub seed: u64,
    /// Every (plan, format) cell, in plan-major order.
    pub cells: Vec<BulkCell>,
    /// Differential oracle: formats whose plans disagreed on the read
    /// digest, with the diverging plan labels.
    pub differential: Vec<String>,
}

impl BulkReport {
    /// Total write–read failures across all cells.
    pub fn failure_count(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// Whether every cell round-tripped cleanly and all plans agreed.
    pub fn clean(&self) -> bool {
        self.failure_count() == 0
            && self.differential.is_empty()
            && self.cells.iter().all(|c| c.crash.is_none())
    }

    /// Renders the report in the artifact's section style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== Bulk campaign: {} rows x {} columns (seed {}) ==",
            self.rows,
            bulk_schema().len(),
            self.seed
        );
        for cell in &self.cells {
            let status = match (&cell.crash, cell.failures.len()) {
                (Some(c), _) => format!("CRASH {c}"),
                (None, 0) => format!("ok digest {:016x}", cell.digest),
                (None, n) => format!("{n} write-read failure(s)"),
            };
            let _ = writeln!(
                out,
                "  {:22} {:8} {:>9} rows  {}",
                cell.plan, cell.format, cell.rows_read, status
            );
            for f in &cell.failures {
                let _ = writeln!(out, "      {f}");
            }
        }
        if self.differential.is_empty() {
            let _ = writeln!(out, "  differential: all plans agree per format");
        } else {
            for d in &self.differential {
                let _ = writeln!(out, "  differential: {d}");
            }
        }
        out
    }
}

fn bulk_write(
    d: &Deployment,
    interface: Interface,
    table: &str,
    format: StorageFormat,
    cols: &[ValueColumn],
) -> Result<(), InteractionError> {
    let schema = bulk_schema();
    match interface {
        Interface::DataFrame => {
            let df = d.spark.dataframe();
            df.create_table(table, &schema, format)
                .map_err(InteractionError::from)?;
            df.insert_columns(table, cols)
                .map_err(InteractionError::from)
        }
        Interface::HiveQl => {
            let cols_sql: Vec<String> = schema
                .iter()
                .map(|f| format!("{} {}", f.name, f.data_type.sql_name()))
                .collect();
            d.hive
                .execute(&format!(
                    "CREATE TABLE {table} ({}) STORED AS {}",
                    cols_sql.join(", "),
                    format.name()
                ))
                .map_err(InteractionError::from)?;
            d.hive
                .insert_columns(table, cols)
                .map_err(InteractionError::from)
        }
        Interface::SparkSql => unreachable!("SparkSQL has no bulk interface"),
    }
}

fn bulk_read(
    d: &Deployment,
    interface: Interface,
    table: &str,
) -> Result<Vec<ValueColumn>, InteractionError> {
    match interface {
        Interface::DataFrame => d
            .spark
            .dataframe()
            .read_table_columns(table)
            .map(|(_, cols)| cols)
            .map_err(InteractionError::from),
        Interface::HiveQl => d
            .hive
            .read_table_columns(table)
            .map_err(InteractionError::from),
        Interface::SparkSql => unreachable!("SparkSQL has no bulk interface"),
    }
}

/// Combined digest over a table's columns: FNV-1a over the per-column
/// fingerprints, so two reads agree iff every column fingerprints equally.
pub fn table_digest(cols: &[ValueColumn]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in cols {
        for b in c.fingerprint().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs a bulk campaign: every bulk plan crossed with every format, each
/// in a fresh deployment, checked by the vectorized write–read oracle and
/// a per-format digest differential.
pub fn run_bulk(config: &BulkConfig) -> BulkReport {
    let schema = bulk_schema();
    let expected = generate_bulk_columns(config.rows, config.seed);
    let mut cells = Vec::with_capacity(BULK_PLANS.len() * config.formats.len());
    let mut differential = Vec::new();
    for format in &config.formats {
        let mut digests: Vec<(String, u64)> = Vec::new();
        for (write, read) in BULK_PLANS {
            let plan = format!("{write}->{read}");
            // Tracing off: bulk campaigns measure the data plane, and the
            // per-op trace sink would dominate at millions of rows.
            let d = Deployment::new(&CrossTestConfig {
                trace_boundaries: false,
                ..CrossTestConfig::default()
            });
            let table = format!("bulk_{}", format.extension());
            let outcome = bulk_write(&d, write, &table, *format, &expected)
                .and_then(|()| bulk_read(&d, read, &table));
            let cell = match outcome {
                Err(e) => BulkCell {
                    plan: plan.clone(),
                    format: format.name().to_string(),
                    rows_read: 0,
                    digest: 0,
                    crash: Some(e.to_string()),
                    failures: Vec::new(),
                },
                Ok(actual) => {
                    let mut failures: Vec<String> = Vec::new();
                    for (i, (exp, act)) in expected.iter().zip(&actual).enumerate() {
                        if let Some(OracleFailure { detail, .. }) =
                            check_write_read_columns(i, &plan, format.name(), exp, act)
                        {
                            failures.push(format!("column {}: {detail}", schema[i].name));
                        }
                    }
                    let digest = table_digest(&actual);
                    digests.push((plan.clone(), digest));
                    BulkCell {
                        plan: plan.clone(),
                        format: format.name().to_string(),
                        rows_read: actual.first().map_or(0, ValueColumn::len),
                        digest,
                        crash: None,
                        failures,
                    }
                }
            };
            cells.push(cell);
        }
        if let Some((first_plan, first)) = digests.first().cloned() {
            let diverging: Vec<&(String, u64)> =
                digests.iter().filter(|(_, d)| *d != first).collect();
            if !diverging.is_empty() {
                let plans: Vec<String> = diverging
                    .iter()
                    .map(|(p, d)| format!("{p} ({d:016x})"))
                    .collect();
                differential.push(format!(
                    "{}: {} disagree(s) with {first_plan} ({first:016x})",
                    format.name(),
                    plans.join(", ")
                ));
            }
        }
    }
    BulkReport {
        rows: config.rows,
        seed: config.seed,
        cells,
        differential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_campaign_is_clean_and_deterministic() {
        let config = BulkConfig {
            rows: 128,
            ..BulkConfig::default()
        };
        let a = run_bulk(&config);
        assert!(a.clean(), "unexpected bulk failures:\n{}", a.render());
        assert_eq!(a.cells.len(), 12); // 4 plans x 3 formats
        let b = run_bulk(&config);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn bulk_digests_agree_across_formats_on_clean_data() {
        // Clean round-trippers come back identical regardless of backend,
        // so even the *cross-format* digests agree.
        let report = run_bulk(&BulkConfig {
            rows: 64,
            ..BulkConfig::default()
        });
        let digests: Vec<u64> = report.cells.iter().map(|c| c.digest).collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn bulk_digest_tracks_content() {
        let a = run_bulk(&BulkConfig {
            rows: 32,
            seed: 1,
            formats: vec![StorageFormat::Orc],
        });
        let b = run_bulk(&BulkConfig {
            rows: 32,
            seed: 2,
            formats: vec![StorageFormat::Orc],
        });
        assert_ne!(a.cells[0].digest, b.cells[0].digest);
    }
}
