//! Delta-debugging shrinker for discrepancy-triggering inputs.
//!
//! Every harness observation already writes a 1-row/1-column table, so the
//! interesting minimization axes are the *plan set* (how many interface
//! pairs are needed before the discrepancy class fires) and the *value*
//! (how simple can the input get while preserving the class). The shrinker
//! runs ddmin-lite over the plans — singletons, then pairs — and then a
//! greedy weight-decreasing walk over value candidates, accepting a step
//! only when the candidate reproducer still triggers the same catalogue id
//! through the real classifier. Fully deterministic: no randomness, fixed
//! candidate order, bounded steps.

use crate::classify;
use crate::exec::{self, CrossTestConfig, Deployment};
use crate::generator::TestInput;
use crate::plan::{Experiment, TestPlan};
use csi_core::oracle::{check_differential, Observation, OracleFailure};
use csi_core::report::{DiscrepancyReport, ShrinkRow};
use csi_core::value::{DataType, Value};
use minihive::metastore::StorageFormat;

/// Upper bound on accepted shrink steps per discrepancy.
const MAX_STEPS: usize = 16;

/// Upper bound on triggering checks per discrepancy (each check executes
/// one observation per plan in the candidate reproducer).
const MAX_CHECKS: usize = 80;

/// A minimized, self-contained reproducer: one input, one experiment, the
/// surviving plan set, one format — a 1-row/1-column table per plan.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The (possibly value-shrunk) input.
    pub input: TestInput,
    /// The experiment whose plans reproduce the class.
    pub experiment: Experiment,
    /// The minimal plan set that still triggers.
    pub plans: Vec<TestPlan>,
    /// The storage format.
    pub format: StorageFormat,
}

/// A reproducer paired with the discrepancy id it preserves.
#[derive(Debug, Clone)]
pub struct ShrunkReproducer {
    /// The catalogue id (e.g. `"D08"`).
    pub id: String,
    /// The minimized reproducer.
    pub reproducer: Reproducer,
}

/// Executes a reproducer on a fresh deployment and reports whether the
/// classified result still contains discrepancy `id`. This is the
/// shrinker's oracle, public so tests can re-verify shipped reproducers.
pub fn reproducer_triggers(id: &str, r: &Reproducer) -> bool {
    let d = Deployment::new(&CrossTestConfig::default());
    let mut observations: Vec<Observation> = Vec::new();
    let mut failures: Vec<OracleFailure> = Vec::new();
    for &plan in &r.plans {
        let obs = exec::run_one(&d, r.experiment, plan, r.format, &r.input, true);
        if let Some(f) = exec::check_observation(&r.input, &obs) {
            failures.push(f);
        }
        observations.push(obs);
    }
    failures.extend(check_differential(&observations));
    let tagged: Vec<(Experiment, Observation)> = observations
        .into_iter()
        .map(|o| (r.experiment, o))
        .collect();
    let report = classify::classify(std::slice::from_ref(&r.input), &tagged, failures, false);
    report.discrepancies.iter().any(|d| d.id == id)
}

/// A coarse size metric; every accepted value-shrink step strictly
/// decreases it, so the walk terminates.
fn weight(value: &Value) -> u64 {
    match value {
        Value::Null | Value::Boolean(_) => 0,
        Value::Byte(v) => v.unsigned_abs() as u64,
        Value::Short(v) => v.unsigned_abs() as u64,
        Value::Int(v) => v.unsigned_abs() as u64,
        Value::Long(v) => v.unsigned_abs(),
        Value::Float(v) => v.abs() as u64,
        Value::Double(v) => v.abs() as u64,
        Value::Decimal(d) => d.unscaled.unsigned_abs().min(u64::MAX as u128) as u64,
        Value::Str(s) => s.chars().count() as u64,
        Value::Binary(b) => b.len() as u64,
        Value::Date(d) => d.unsigned_abs() as u64,
        Value::Timestamp(us) => us.unsigned_abs(),
        Value::Interval { months, micros } => months.unsigned_abs() as u64 + micros.unsigned_abs(),
        Value::Array(items) => 1 + items.iter().map(weight).sum::<u64>(),
        Value::Map(pairs) => {
            1 + pairs
                .iter()
                .map(|(k, v)| weight(k) + weight(v))
                .sum::<u64>()
        }
        Value::Struct(fields) => 1 + fields.iter().map(|(_, v)| weight(v)).sum::<u64>(),
    }
}

fn half_str(s: &str) -> Option<Value> {
    let n = s.chars().count();
    if n == 0 {
        return None;
    }
    Some(Value::Str(s.chars().take(n / 2).collect()))
}

/// Strictly-smaller candidate values, most aggressive first. Candidates
/// keep the declared column type; the triggering check decides acceptance.
fn value_candidates(input: &TestInput) -> Vec<Value> {
    let mut out = Vec::new();
    match &input.value {
        Value::Str(s) => {
            out.extend(half_str(s));
        }
        Value::Binary(b) if !b.is_empty() => {
            out.push(Value::Binary(b[..b.len() / 2].to_vec()));
        }
        Value::Byte(v) if *v != 0 => out.push(Value::Byte(v / 2)),
        Value::Short(v) if *v != 0 => out.push(Value::Short(v / 2)),
        Value::Int(v) if *v != 0 => out.push(Value::Int(v / 2)),
        Value::Long(v) if *v != 0 => out.push(Value::Long(v / 2)),
        Value::Decimal(d) if d.unscaled != 0 => {
            if let Ok(smaller) = csi_core::Decimal::new(d.unscaled / 2, d.precision, d.scale) {
                out.push(Value::Decimal(smaller));
            }
        }
        Value::Date(d) if *d != 0 => out.push(Value::Date(d / 2)),
        Value::Timestamp(us) if *us != 0 => out.push(Value::Timestamp(us / 2)),
        Value::Interval { months, micros } if *months != 0 || *micros != 0 => {
            out.push(Value::Interval {
                months: months / 2,
                micros: micros / 2,
            });
            if *months != 0 && *micros != 0 {
                out.push(Value::Interval {
                    months: *months,
                    micros: 0,
                });
            }
        }
        Value::Array(items) if !items.is_empty() => {
            out.push(Value::Array(items[..items.len() / 2].to_vec()));
        }
        Value::Map(pairs) if !pairs.is_empty() => {
            out.push(Value::Map(pairs[..pairs.len() / 2].to_vec()));
        }
        Value::Struct(fields) => {
            for (i, (_, v)) in fields.iter().enumerate() {
                if weight(v) > 0 {
                    let mut smaller = fields.clone();
                    smaller[i].1 = Value::Null;
                    out.push(Value::Struct(smaller));
                    break;
                }
            }
        }
        _ => {}
    }
    let w = weight(&input.value);
    out.retain(|c| weight(c) < w);
    out
}

/// Drops the last field from a struct input, in both the declared type and
/// the value — the one schema-level shrink the harness supports.
fn drop_struct_field(input: &TestInput) -> Option<TestInput> {
    let DataType::Struct(fields) = &input.column_type else {
        return None;
    };
    let Value::Struct(values) = &input.value else {
        return None;
    };
    if fields.len() < 2 || values.len() != fields.len() {
        return None;
    }
    let mut out = input.clone();
    out.column_type = DataType::Struct(fields[..fields.len() - 1].to_vec());
    out.value = Value::Struct(values[..values.len() - 1].to_vec());
    Some(out)
}

struct Shrinker {
    id: String,
    checks: usize,
}

impl Shrinker {
    fn triggers(&mut self, r: &Reproducer) -> bool {
        self.checks += 1;
        reproducer_triggers(&self.id, r)
    }
}

fn parse_experiment(plan: &str) -> Option<Experiment> {
    let short = plan.split(':').next()?;
    Experiment::ALL.iter().copied().find(|e| e.short() == short)
}

fn parse_format(name: &str) -> Option<StorageFormat> {
    StorageFormat::ALL
        .iter()
        .copied()
        .find(|f| f.name() == name)
}

/// Shrinks every discrepancy in `report` to a minimal reproducer. Returns
/// the render rows and the reproducers themselves (for re-verification).
pub(crate) fn shrink_report(
    report: &DiscrepancyReport,
    pool: &[TestInput],
) -> (Vec<ShrinkRow>, Vec<ShrunkReproducer>) {
    let mut rows = Vec::new();
    let mut reproducers = Vec::new();
    for disc in &report.discrepancies {
        let Some(evidence) = disc.evidence.first() else {
            continue;
        };
        let Some(input) = pool.iter().find(|i| i.id == evidence.input_id) else {
            continue;
        };
        let Some(experiment) = evidence.plans.first().and_then(|p| parse_experiment(p)) else {
            continue;
        };
        // Formats: the evidence's first, then the rest as fallback.
        let mut formats: Vec<StorageFormat> = evidence
            .formats
            .iter()
            .filter_map(|f| parse_format(f))
            .collect();
        for &f in StorageFormat::ALL.iter() {
            if !formats.contains(&f) {
                formats.push(f);
            }
        }
        let mut shrinker = Shrinker {
            id: disc.id.clone(),
            checks: 0,
        };
        let mut current: Option<Reproducer> = None;
        for format in formats {
            let candidate = Reproducer {
                input: input.clone(),
                experiment,
                plans: experiment.plans(),
                format,
            };
            if shrinker.triggers(&candidate) {
                current = Some(candidate);
                break;
            }
        }
        let Some(mut current) = current else {
            continue;
        };
        let mut steps = 0;
        // ddmin-lite over the plan set: singletons, then pairs.
        'plans: for size in [1usize, 2] {
            if current.plans.len() <= size {
                break;
            }
            let plans = current.plans.clone();
            let subsets: Vec<Vec<TestPlan>> = if size == 1 {
                plans.iter().map(|&p| vec![p]).collect()
            } else {
                let mut v = Vec::new();
                for i in 0..plans.len() {
                    for j in (i + 1)..plans.len() {
                        v.push(vec![plans[i], plans[j]]);
                    }
                }
                v
            };
            for subset in subsets {
                if shrinker.checks >= MAX_CHECKS {
                    break 'plans;
                }
                let candidate = Reproducer {
                    plans: subset,
                    ..current.clone()
                };
                if shrinker.triggers(&candidate) {
                    current = candidate;
                    steps += 1;
                    break 'plans;
                }
            }
        }
        // Greedy weight-decreasing value (and struct-schema) shrink.
        while steps < MAX_STEPS && shrinker.checks < MAX_CHECKS {
            let mut advanced = false;
            // Schema shrink first: dropping a struct field simplifies the
            // most.
            if let Some(smaller) = drop_struct_field(&current.input) {
                let candidate = Reproducer {
                    input: smaller,
                    ..current.clone()
                };
                if shrinker.triggers(&candidate) {
                    current = candidate;
                    steps += 1;
                    continue;
                }
            }
            // Value shrinks are only safe when the round-trip expectation
            // is the value itself.
            if current.input.expected_back.is_none() {
                for value in value_candidates(&current.input) {
                    if shrinker.checks >= MAX_CHECKS {
                        break;
                    }
                    let mut input = current.input.clone();
                    input.value = value;
                    let candidate = Reproducer {
                        input,
                        ..current.clone()
                    };
                    if shrinker.triggers(&candidate) {
                        current = candidate;
                        steps += 1;
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        let scenario = format!(
            "{}:{}/{}",
            current.experiment.short(),
            current
                .plans
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            current.format.name()
        );
        rows.push(ShrinkRow {
            id: disc.id.clone(),
            scenario,
            label: current.input.label.clone(),
            rows: 1,
            columns: 1,
            steps,
            checks: shrinker.checks,
        });
        reproducers.push(ShrunkReproducer {
            id: disc.id.clone(),
            reproducer: current,
        });
    }
    (rows, reproducers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Validity;

    #[test]
    fn weights_strictly_decrease_along_candidates() {
        let cases = [
            Value::Str("hello world".into()),
            Value::Int(1000),
            Value::Timestamp(-3_000_000_000_000_000),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        ];
        for value in cases {
            let input = TestInput {
                id: 0,
                column_type: DataType::String,
                value: value.clone(),
                validity: Validity::Valid,
                label: "t".into(),
                expected_back: None,
            };
            for c in value_candidates(&input) {
                assert!(weight(&c) < weight(&value), "{c:?} !< {value:?}");
            }
        }
    }

    #[test]
    fn a_byte_reproducer_triggers_and_plan_shrinks() {
        // One valid BYTE input reveals D01 through Avro's widening.
        let input = TestInput {
            id: 0,
            column_type: DataType::Byte,
            value: Value::Byte(5),
            validity: Validity::Valid,
            label: "tinyint".into(),
            expected_back: None,
        };
        let experiment = Experiment::ALL[0];
        let r = Reproducer {
            input,
            experiment,
            plans: experiment.plans(),
            format: StorageFormat::Avro,
        };
        assert!(reproducer_triggers("D01", &r));
        assert!(!reproducer_triggers("D08", &r));
    }
}
