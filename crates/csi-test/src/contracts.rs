//! Specification-driven cross-system checking.
//!
//! Bridges the harness to [`csi_core::spec`]: every observation of a valid
//! input becomes a [`ChannelOutcome`] checked against a [`DataContract`]
//! for its (writer, reader, format) channel.
//!
//! Two contract catalogues ship:
//!
//! - [`naive_contracts`]: what today's deployments implicitly assume —
//!   every type round-trips exactly. Checking the real systems against it
//!   reproduces the Section 8 discrepancy surface as *specification
//!   violations*.
//! - [`documented_contracts`]: the same channels with the systems'
//!   *documented* behaviors written down (BYTE widens on SparkSQL DDL,
//!   INTERVAL is unsupported, CHAR pads). Violations against this
//!   catalogue are the residue that no documentation covers — the genuine
//!   bugs.

use crate::generator::{TestInput, Validity};
use crate::plan::Experiment;
use csi_core::oracle::Observation;
use csi_core::spec::{check, ChannelOutcome, DataContract, SpecViolation, TypeRule};
use csi_core::value::DataType;

/// A catalogue: resolves the contract for a channel.
pub type ContractCatalogue = fn(writer: &str, reader: &str, format: &str) -> DataContract;

/// The naive catalogue: everything round-trips exactly.
pub fn naive_contracts(writer: &str, reader: &str, format: &str) -> DataContract {
    csi_core::spec::naive_contract(writer, reader, format)
}

/// The documented catalogue: each channel's known, *documented*
/// conversions and restrictions written down as rules.
pub fn documented_contracts(writer: &str, reader: &str, format: &str) -> DataContract {
    let mut c = naive_contracts(writer, reader, format);
    let set = |c: &mut DataContract, ty: DataType, rule: TypeRule| {
        if let Some(slot) = c.rules.iter_mut().find(|(t, _)| *t == ty) {
            slot.1 = rule;
        }
    };
    // SparkSQL's Hive DDL widens small integers (documented in the
    // migration guide): reads come back as INT.
    if writer == "SparkSQL" {
        set(
            &mut c,
            DataType::Byte,
            TypeRule::Converts {
                to: "widened to INT".into(),
            },
        );
        set(
            &mut c,
            DataType::Short,
            TypeRule::Converts {
                to: "widened to INT".into(),
            },
        );
    }
    // INTERVAL has no Hive table type: SparkSQL and HiveQL must reject it;
    // the DataFrame writer documents storage as STRING.
    let interval_rule = if writer == "DataFrame" {
        TypeRule::Converts {
            to: "stored as STRING".into(),
        }
    } else {
        TypeRule::Unsupported
    };
    set(&mut c, DataType::Interval, interval_rule);
    // CHAR(n) is blank-padded by definition; reads legitimately differ
    // from the unpadded input.
    set(
        &mut c,
        DataType::Char(8),
        TypeRule::Converts {
            to: "blank-padded".into(),
        },
    );
    // Decimals: the runtime-scale representation is documented Spark
    // behavior, visible to any reader.
    if writer == "DataFrame" {
        set(
            &mut c,
            DataType::Decimal(10, 2),
            TypeRule::Converts {
                to: "runtime-scaled twos-complement".into(),
            },
        );
    }
    c
}

fn outcome_of(obs: &Observation) -> ChannelOutcome {
    match (&obs.write.result, &obs.read) {
        (Err(_), _) => ChannelOutcome::WriteRejected,
        (Ok(()), Some(read)) => match &read.result {
            Err(_) => ChannelOutcome::ReadFailed,
            Ok(values) => match values.first() {
                Some(v) => ChannelOutcome::ReadBack(v.clone()),
                None => ChannelOutcome::ReadFailed,
            },
        },
        (Ok(()), None) => ChannelOutcome::ReadFailed,
    }
}

fn split_plan(plan: &str) -> Option<(String, String)> {
    // Plans are tagged "ss:SparkSQL->HiveQL".
    let (_, pair) = plan.split_once(':')?;
    let (w, r) = pair.split_once("->")?;
    Some((w.to_string(), r.to_string()))
}

/// Checks every valid-input observation against a contract catalogue.
pub fn check_observations(
    inputs: &[TestInput],
    observations: &[(Experiment, Observation)],
    catalogue: ContractCatalogue,
) -> Vec<SpecViolation> {
    let mut violations = Vec::new();
    for (_, obs) in observations {
        let Some(input) = inputs.iter().find(|i| i.id == obs.input_id) else {
            continue;
        };
        if input.validity != Validity::Valid {
            continue;
        }
        let Some((writer, reader)) = split_plan(&obs.plan) else {
            continue;
        };
        let contract = catalogue(&writer, &reader, &obs.format);
        if let Err(v) = check(
            &contract,
            &input.column_type,
            input.expected(),
            &outcome_of(obs),
        ) {
            violations.push(v);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use csi_core::value::Value;

    fn inputs() -> Vec<TestInput> {
        vec![
            TestInput {
                id: 0,
                column_type: DataType::Byte,
                value: Value::Byte(5),
                validity: Validity::Valid,
                label: "byte".into(),
                expected_back: None,
            },
            TestInput {
                id: 1,
                column_type: DataType::Int,
                value: Value::Int(7),
                validity: Validity::Valid,
                label: "int".into(),
                expected_back: None,
            },
            TestInput {
                id: 2,
                column_type: DataType::Interval,
                value: Value::Interval {
                    months: 3,
                    micros: 0,
                },
                validity: Validity::Valid,
                label: "interval".into(),
                expected_back: None,
            },
        ]
    }

    #[test]
    fn naive_contracts_reproduce_the_discrepancy_surface() {
        let inputs = inputs();
        let outcome = Campaign::new(&inputs).run();
        let naive = check_observations(&inputs, &outcome.observations, naive_contracts);
        // The naive assumption is violated by bytes (widening/Avro) and
        // intervals (rejections/stringification), never by plain ints.
        assert!(!naive.is_empty());
        assert!(
            naive.iter().all(|v| v.data_type != DataType::Int),
            "{naive:#?}"
        );
        assert!(naive.iter().any(|v| v.data_type == DataType::Byte));
        assert!(naive.iter().any(|v| v.data_type == DataType::Interval));
    }

    #[test]
    fn documented_contracts_filter_out_the_documented_conversions() {
        let inputs = inputs();
        let outcome = Campaign::new(&inputs).run();
        let naive = check_observations(&inputs, &outcome.observations, naive_contracts);
        let documented = check_observations(&inputs, &outcome.observations, documented_contracts);
        // Documentation explains part of the surface; the remainder are
        // genuine, undocumented discrepancies (the SPARK-39075 read
        // failures on DataFrame-written Avro bytes survive).
        assert!(documented.len() < naive.len());
        assert!(
            documented
                .iter()
                .any(|v| v.data_type == DataType::Byte && v.observed.contains("read failed")),
            "{documented:#?}"
        );
    }
}
