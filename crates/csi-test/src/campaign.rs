//! The unified campaign API: one builder in front of the serial executor,
//! the sharded executor, and the fault matrix.
//!
//! Historically each campaign style had its own entrypoint
//! (`run_cross_test`, `run_cross_test_parallel`, `run_fault_matrix`,
//! `run_fault_matrix_sharded`) and callers wired tracing, fault plans, and
//! worker pools by hand. [`Campaign`] folds all of that into one builder:
//!
//! ```
//! use csi_test::generator::generate_inputs;
//! use csi_test::Campaign;
//!
//! let inputs = generate_inputs();
//! let outcome = Campaign::new(&inputs[..2]).shards(2).detect(true).run();
//! assert!(outcome.report.detector_enabled);
//! ```
//!
//! With `.detect(true)`, a cross-test campaign first replays the same
//! (experiment × plan × format × input) space fault-free to learn the
//! per-scenario baseline crossing profiles, freezes them, and then runs
//! the real campaign with an [`OnlineDetector`] streaming over every
//! observation — so pattern-anomaly detection has a meaningful "normal"
//! to compare against. Fault-matrix cells self-calibrate instead (each
//! cell learns its own baseline from an unarmed run), so
//! `.fault_matrix(seed)` needs no separate calibration pass.
//!
//! [`OnlineDetector`]: csi_core::detect::OnlineDetector

use crate::classify;
use crate::exec::{self, CrossTestConfig, CrossTestOutcome};
use crate::explore;
use crate::generator::TestInput;
use crate::inject::{self, FaultMatrixConfig, FaultMatrixReport};
use crate::multi::{self, CompoundConfig};
use crate::plan::Experiment;
use crate::shard::{self, CampaignMetrics, ParallelConfig};
use crate::shrink::ShrunkReproducer;
use csi_core::detect::{DetectorConfig, DetectorSpec};
use csi_core::fault::FaultPlan;
use csi_core::oracle::Observation;
use csi_core::report::{ClusterRow, CompoundStats, DiscrepancyReport, ExplorationStats, Render};
use minihive::metastore::StorageFormat;
use std::sync::Arc;

/// Builder for a cross-testing or fault-matrix campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    inputs: Vec<TestInput>,
    experiments: Vec<Experiment>,
    formats: Vec<StorageFormat>,
    spark_overrides: Vec<(String, String)>,
    recycle_tables: bool,
    shards: usize,
    chunk_size: usize,
    faults: Option<FaultPlan>,
    matrix_seed: Option<u64>,
    trace: bool,
    detect: bool,
    detector_config: DetectorConfig,
    seed: u64,
    explore_budget: Option<usize>,
    kfaults: usize,
    jobs: usize,
}

/// The result of [`Campaign::run`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The discrepancy report (empty in fault-matrix mode except for the
    /// detection aggregates, which are copied from the matrix).
    pub report: DiscrepancyReport,
    /// Every observation, tagged with its experiment (empty in
    /// fault-matrix mode; the cells live in `matrix`).
    pub observations: Vec<(Experiment, Observation)>,
    /// Throughput metrics, when the campaign ran sharded.
    pub metrics: Option<CampaignMetrics>,
    /// The fault-matrix report, when the campaign ran in matrix mode.
    pub matrix: Option<FaultMatrixReport>,
    /// Corpus, coverage, and shrink statistics, when the campaign ran in
    /// explore mode.
    pub exploration: Option<ExplorationStats>,
    /// One minimized reproducer per shrunk discrepancy (explore mode).
    pub reproducers: Vec<ShrunkReproducer>,
    /// Aggregates of the compound (fault-set × interleaving) pass, when
    /// the campaign ran with [`Campaign::kfaults`] ≥ 1.
    pub compound: Option<CompoundStats>,
    /// Co-failure clusters of the compound pass, each shrunk to a minimal
    /// fault-set + interleaving reproducer.
    pub clusters: Vec<ClusterRow>,
}

impl CampaignOutcome {
    /// Renders the campaign through the single [`Render`] path — the
    /// standard report sections, plus the fault-matrix cells when the
    /// campaign ran in matrix mode.
    pub fn render(&self) -> String {
        let rows = self.matrix.as_ref().map(|m| m.fault_cell_rows());
        let mut render = Render::standard(&self.report);
        if let Some(rows) = &rows {
            render = render.fault_cells(rows);
        }
        if let Some(stats) = &self.exploration {
            render = render.exploration(stats);
        }
        if let Some(stats) = &self.compound {
            render = render.clusters(stats, &self.clusters);
        }
        render.to_string()
    }
}

impl Campaign {
    /// A campaign over `inputs`, with the full experiment × format cross,
    /// serial execution, tracing on, and no faults or detection.
    pub fn new(inputs: &[TestInput]) -> Campaign {
        Campaign {
            inputs: inputs.to_vec(),
            experiments: Experiment::ALL.to_vec(),
            formats: StorageFormat::ALL.to_vec(),
            spark_overrides: Vec::new(),
            recycle_tables: false,
            shards: 1,
            chunk_size: 64,
            faults: None,
            matrix_seed: None,
            trace: true,
            detect: false,
            detector_config: DetectorConfig::default(),
            seed: 42,
            explore_budget: None,
            kfaults: 0,
            jobs: 2,
        }
    }

    /// Restricts the experiments.
    pub fn experiments(mut self, experiments: Vec<Experiment>) -> Campaign {
        self.experiments = experiments;
        self
    }

    /// Restricts the storage formats.
    pub fn formats(mut self, formats: Vec<StorageFormat>) -> Campaign {
        self.formats = formats;
        self
    }

    /// Applies Spark configuration overrides to every deployment.
    pub fn spark_overrides(mut self, overrides: Vec<(String, String)>) -> Campaign {
        self.spark_overrides = overrides;
        self
    }

    /// Drops each table right after its observation is recorded.
    pub fn recycle_tables(mut self, recycle: bool) -> Campaign {
        self.recycle_tables = recycle;
        self
    }

    /// Runs the campaign on `n` workers; `0` or `1` runs serially
    /// (`0` in matrix mode still means serial).
    pub fn shards(mut self, n: usize) -> Campaign {
        self.shards = n;
        self
    }

    /// Maximum inputs per shard (sharded cross-test campaigns only).
    pub fn chunk_size(mut self, chunk_size: usize) -> Campaign {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Arms a fault plan: on every deployment in cross-test mode, or as
    /// the cell catalogue in matrix mode (replacing the seed-derived
    /// standard catalogue).
    pub fn faults(mut self, plan: FaultPlan) -> Campaign {
        self.faults = Some(plan);
        self
    }

    /// Switches the campaign to fault-matrix mode: every catalogue fault
    /// crossed with the scenarios of its channel, cells classified by the
    /// §9 oracle. Uses the builder's experiments/formats for probe cells
    /// and [`inject::fault_catalogue`]`(seed)` unless [`Campaign::faults`]
    /// supplied a catalogue.
    pub fn fault_matrix(mut self, seed: u64) -> Campaign {
        self.matrix_seed = Some(seed);
        self
    }

    /// Records an interaction trace per observation (on by default;
    /// forced on when detection is enabled).
    pub fn trace(mut self, trace: bool) -> Campaign {
        self.trace = trace;
        self
    }

    /// Runs the online CSI failure detector over every observation (or
    /// matrix cell).
    pub fn detect(mut self, detect: bool) -> Campaign {
        self.detect = detect;
        self
    }

    /// Overrides the detector thresholds.
    pub fn detector_config(mut self, config: DetectorConfig) -> Campaign {
        self.detector_config = config;
        self
    }

    /// Sets the exploration/mutation seed (default 42). Only explore mode
    /// consumes it; the standard and matrix modes are seedless (matrix
    /// mode has its own seed via [`Campaign::fault_matrix`]).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Switches the campaign to coverage-guided explore mode with an
    /// observation budget: novel boundary-crossing signatures admit inputs
    /// to a corpus, corpus entries are swept, mutated, and fault-overlaid
    /// ahead of fresh grid draws, and every reported discrepancy is shrunk
    /// to a 1-row/1-column reproducer. A budget of `0` degrades exactly to
    /// the standard exhaustive catalogue. Explore mode forces the online
    /// detector off and ignores [`Campaign::faults`] (it schedules its own
    /// overlay from [`inject::fault_catalogue`]).
    pub fn explore(mut self, budget: usize) -> Campaign {
        self.explore_budget = Some(budget);
        self
    }

    /// Adds a compound pass after the campaign's main mode: k-fault
    /// combinations (arity ≤ `k`, from [`csi_core::fault::fault_combinations`])
    /// crossed with seeded cross-job interleavings on a shared deployment,
    /// searched coverage-guided, with the resulting discrepancies clustered
    /// by causal-trace prefix and ddmin-shrunk ([`crate::multi`]). The
    /// default (`0`) disables the pass and leaves every existing mode
    /// byte-identical.
    pub fn kfaults(mut self, k: usize) -> Campaign {
        self.kfaults = k;
        self
    }

    /// Number of jobs sharing each compound trial's deployment (default 2;
    /// only the compound pass consumes it).
    pub fn jobs(mut self, n: usize) -> Campaign {
        self.jobs = n;
        self
    }

    /// Runs a *bulk* campaign alongside (not instead of) the builder's
    /// row-oriented modes: the wide clean-data table of
    /// [`crate::generator::bulk_schema`] at `rows` rows, written and read
    /// through both engines' columnar entry points over this builder's
    /// formats and seed, checked by the vectorized write–read and digest
    /// differential oracles. This is the million-row path: the row
    /// campaigns' table-size ceiling (one row per observation) does not
    /// apply.
    pub fn run_bulk(self, rows: usize) -> crate::bulk::BulkReport {
        crate::bulk::run_bulk(&crate::bulk::BulkConfig {
            rows,
            seed: self.seed,
            formats: self.formats,
        })
    }

    /// Executes the campaign.
    pub fn run(self) -> CampaignOutcome {
        let compound = (self.kfaults > 0).then(|| {
            let mut config = CompoundConfig::new(self.seed, self.kfaults);
            config.jobs = self.jobs;
            config.shards = self.shards;
            if let Some(budget) = self.explore_budget {
                if budget > 0 {
                    config.budget = budget;
                }
            }
            config
        });
        let mut outcome = match self.explore_budget {
            Some(0) | None if self.matrix_seed.is_some() => self.run_matrix(),
            Some(budget) if budget > 0 => self.run_explore(budget),
            _ => self.run_cross(),
        };
        if let Some(config) = compound {
            let result = multi::run_compound(&config);
            outcome.compound = Some(result.stats);
            outcome.clusters = result.clusters;
        }
        outcome
    }

    fn run_explore(self, budget: usize) -> CampaignOutcome {
        let result = explore::run_explore(
            &self.inputs,
            &self.experiments,
            &self.formats,
            self.seed,
            budget,
            self.shards,
        );
        CampaignOutcome {
            report: result.report,
            observations: result.observations,
            metrics: None,
            matrix: None,
            exploration: Some(result.stats),
            reproducers: result.reproducers,
            compound: None,
            clusters: Vec::new(),
        }
    }

    fn run_matrix(self) -> CampaignOutcome {
        let seed = self.matrix_seed.expect("matrix mode");
        let config = FaultMatrixConfig {
            seed,
            experiments: self.experiments,
            formats: self.formats,
            faults: self.faults.unwrap_or_else(|| inject::fault_catalogue(seed)),
            detect: self.detect.then_some(self.detector_config),
        };
        let matrix = if self.shards > 1 {
            inject::run_fault_matrix_sharded_impl(&config, self.shards)
        } else {
            inject::run_fault_matrix_impl(&config)
        };
        // The campaign-level report carries the matrix's detection
        // aggregates so the unified Render path shows them alongside the
        // fault cells.
        let mut report = classify::classify(&[], &[], Vec::new(), matrix.detector_enabled);
        report.detection_kinds = matrix.detection_kinds.clone();
        report.detection_totals = matrix.detection_totals.clone();
        report.detector_agreement = matrix.agreement;
        CampaignOutcome {
            report,
            observations: Vec::new(),
            metrics: None,
            matrix: Some(matrix),
            exploration: None,
            reproducers: Vec::new(),
            compound: None,
            clusters: Vec::new(),
        }
    }

    fn run_cross(self) -> CampaignOutcome {
        let mut config = CrossTestConfig {
            experiments: self.experiments,
            formats: self.formats,
            spark_overrides: self.spark_overrides,
            recycle_tables: self.recycle_tables,
            fault_plan: self.faults,
            // The baseline learner and the agreement scorer both read
            // observation traces, so detection forces tracing on.
            trace_boundaries: self.trace || self.detect,
            detector: None,
        };
        if self.detect {
            // Fault-free calibration replay over the identical scenario
            // space: learn what "normal" looks like per scenario, then
            // freeze. Runs in the same mode (serial/sharded) as the real
            // campaign; learning is keyed, so worker interleaving cannot
            // change the result.
            let calibration_config = CrossTestConfig {
                fault_plan: None,
                trace_boundaries: true,
                detector: None,
                ..config.clone()
            };
            let (calibration, _) = run_mode(
                &self.inputs,
                &calibration_config,
                self.shards,
                self.chunk_size,
            );
            let baselines = exec::learn_baselines(&calibration.observations);
            config.detector = Some(DetectorSpec {
                config: self.detector_config,
                baselines: Arc::new(baselines),
            });
        }
        let (outcome, metrics) = run_mode(&self.inputs, &config, self.shards, self.chunk_size);
        CampaignOutcome {
            report: outcome.report,
            observations: outcome.observations,
            metrics,
            matrix: None,
            exploration: None,
            reproducers: Vec::new(),
            compound: None,
            clusters: Vec::new(),
        }
    }
}

fn run_mode(
    inputs: &[TestInput],
    config: &CrossTestConfig,
    shards: usize,
    chunk_size: usize,
) -> (CrossTestOutcome, Option<CampaignMetrics>) {
    if shards > 1 {
        let out = shard::run_cross_test_parallel_impl(
            inputs,
            config,
            &ParallelConfig {
                workers: shards,
                chunk_size,
            },
        );
        (out.outcome, Some(out.metrics))
    } else {
        (exec::run_cross_test_impl(inputs, config), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Validity;
    use csi_core::value::{DataType, Value};

    fn byte_input() -> Vec<TestInput> {
        vec![TestInput {
            id: 0,
            column_type: DataType::Byte,
            value: Value::Byte(5),
            validity: Validity::Valid,
            label: "a tinyint".into(),
            expected_back: None,
        }]
    }

    #[test]
    fn builder_matches_the_legacy_serial_entrypoint() {
        let inputs = byte_input();
        let campaign = Campaign::new(&inputs).run();
        let legacy = exec::run_cross_test_impl(&inputs, &CrossTestConfig::default());
        assert_eq!(
            serde_json::to_string(&campaign.report).unwrap(),
            serde_json::to_string(&legacy.report).unwrap()
        );
        assert!(campaign.metrics.is_none());
        assert!(campaign.matrix.is_none());
    }

    #[test]
    fn sharded_campaign_reports_metrics_and_identical_output() {
        let inputs = byte_input();
        let serial = Campaign::new(&inputs).run();
        let sharded = Campaign::new(&inputs).shards(3).chunk_size(1).run();
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&sharded.report).unwrap()
        );
        let metrics = sharded.metrics.expect("sharded campaigns carry metrics");
        assert_eq!(metrics.observations, sharded.observations.len());
    }

    #[test]
    fn matrix_mode_renders_fault_cells_through_the_unified_path() {
        let outcome = Campaign::new(&[])
            .fault_matrix(11)
            .faults(inject::small_fault_catalogue(11))
            .experiments(vec![Experiment::ALL[0]])
            .formats(vec![StorageFormat::Orc])
            .run();
        let matrix = outcome.matrix.as_ref().expect("matrix mode");
        assert!(!matrix.cases.is_empty());
        let rendered = outcome.render();
        assert!(rendered.contains("fault matrix cells:"), "{rendered}");
        assert!(rendered.contains("ms-unavail-get"), "{rendered}");
    }

    #[test]
    fn detection_campaign_is_clean_on_a_fault_free_plan() {
        let inputs = byte_input();
        let outcome = Campaign::new(&inputs).detect(true).run();
        assert!(outcome.report.detector_enabled);
        assert!(
            outcome.report.detection_totals.is_empty(),
            "fault-free campaign produced detections: {:?}",
            outcome.report.detection_totals
        );
        assert!(outcome.report.detector_agreement.is_none());
        let rendered = outcome.render();
        assert!(rendered.contains("online detections: none"), "{rendered}");
    }
}
