//! The unified campaign API: one builder in front of the serial executor,
//! the sharded executor, and the fault matrix.
//!
//! Historically each campaign style had its own entrypoint
//! (`run_cross_test`, `run_cross_test_parallel`, `run_fault_matrix`,
//! `run_fault_matrix_sharded`) and callers wired tracing, fault plans, and
//! worker pools by hand. [`Campaign`] folds all of that into one builder:
//!
//! ```
//! use csi_test::generator::generate_inputs;
//! use csi_test::Campaign;
//!
//! let inputs = generate_inputs();
//! let outcome = Campaign::new(&inputs[..2]).shards(2).detect(true).run();
//! assert!(outcome.report.detector_enabled);
//! ```
//!
//! The builder itself is a thin mutation layer over a serializable
//! [`CampaignSpec`]: [`Campaign::spec`] extracts the spec,
//! [`Campaign::from_spec`] rebuilds the campaign (validating with typed
//! [`SpecError`]s instead of panicking), and the round trip is lossless —
//! running a serialized-and-revived spec is byte-identical to running the
//! builder it came from. The wire surface of the `csi-serve` daemon is
//! exactly this spec. Two attachments stay *outside* the spec because
//! they describe the runtime, not the campaign: a [`DetectionTap`]
//! ([`Campaign::detection_tap`]) for streaming detections out mid-run,
//! and a shared [`DeploymentPool`] ([`Campaign::pool`]) that amortizes
//! deployment construction across campaigns.
//!
//! With `.detect(true)`, a cross-test campaign first replays the same
//! (experiment × plan × format × input) space fault-free to learn the
//! per-scenario baseline crossing profiles, freezes them, and then runs
//! the real campaign with an [`OnlineDetector`] streaming over every
//! observation — so pattern-anomaly detection has a meaningful "normal"
//! to compare against. Fault-matrix cells self-calibrate instead (each
//! cell learns its own baseline from an unarmed run), so
//! `.fault_matrix(seed)` needs no separate calibration pass.
//!
//! [`OnlineDetector`]: csi_core::detect::OnlineDetector

use crate::classify;
use crate::corpus::CorpusShape;
use crate::exec::{self, CrossTestConfig, CrossTestOutcome};
use crate::explore;
use crate::generator::TestInput;
use crate::inject::{self, FaultMatrixConfig, FaultMatrixReport};
use crate::multi::{self, CompoundConfig};
use crate::plan::Experiment;
use crate::pool::DeploymentPool;
use crate::shard::{self, CampaignMetrics, ParallelConfig};
use crate::shrink::ShrunkReproducer;
use crate::spec::{CampaignSpec, InputSelection, SpecError};
use csi_core::detect::{DetectionTap, DetectorConfig, DetectorSpec};
use csi_core::fault::FaultPlan;
use csi_core::oracle::Observation;
use csi_core::report::{ClusterRow, CompoundStats, DiscrepancyReport, ExplorationStats, Render};
use minihive::metastore::StorageFormat;
use std::sync::Arc;

/// Builder for a cross-testing or fault-matrix campaign: a serializable
/// [`CampaignSpec`] plus the runtime-only attachments (detection tap,
/// deployment pool) that never travel over the wire.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    tap: Option<DetectionTap>,
    pool: Option<Arc<DeploymentPool>>,
}

/// The result of [`Campaign::run`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The discrepancy report (empty in fault-matrix mode except for the
    /// detection aggregates, which are copied from the matrix).
    pub report: DiscrepancyReport,
    /// Every observation, tagged with its experiment (empty in
    /// fault-matrix mode; the cells live in `matrix`).
    pub observations: Vec<(Experiment, Observation)>,
    /// Throughput metrics, when the campaign ran sharded.
    pub metrics: Option<CampaignMetrics>,
    /// The fault-matrix report, when the campaign ran in matrix mode.
    pub matrix: Option<FaultMatrixReport>,
    /// Corpus, coverage, and shrink statistics, when the campaign ran in
    /// explore mode.
    pub exploration: Option<ExplorationStats>,
    /// One minimized reproducer per shrunk discrepancy (explore mode).
    pub reproducers: Vec<ShrunkReproducer>,
    /// Aggregates of the compound (fault-set × interleaving) pass, when
    /// the campaign ran with [`Campaign::kfaults`] ≥ 1.
    pub compound: Option<CompoundStats>,
    /// Co-failure clusters of the compound pass, each shrunk to a minimal
    /// fault-set + interleaving reproducer.
    pub clusters: Vec<ClusterRow>,
}

impl CampaignOutcome {
    /// Renders the campaign through the single [`Render`] path — the
    /// standard report sections, plus the fault-matrix cells when the
    /// campaign ran in matrix mode.
    pub fn render(&self) -> String {
        let rows = self.matrix.as_ref().map(|m| m.fault_cell_rows());
        let mut render = Render::standard(&self.report);
        if let Some(rows) = &rows {
            render = render.fault_cells(rows);
        }
        if let Some(stats) = &self.exploration {
            render = render.exploration(stats);
        }
        if let Some(stats) = &self.compound {
            render = render.clusters(stats, &self.clusters);
        }
        render.to_string()
    }
}

impl Campaign {
    /// A campaign over `inputs`, with the full experiment × format cross,
    /// serial execution, tracing on, and no faults or detection.
    pub fn new(inputs: &[TestInput]) -> Campaign {
        Campaign {
            spec: CampaignSpec {
                inputs: InputSelection::Inline(inputs.to_vec()),
                ..CampaignSpec::default()
            },
            tap: None,
            pool: None,
        }
    }

    /// Rebuilds a campaign from a (typically deserialized) spec,
    /// rejecting invalid specs with a typed [`SpecError`] instead of
    /// panicking — the validation gate every wire request passes through.
    pub fn from_spec(spec: CampaignSpec) -> Result<Campaign, SpecError> {
        spec.validate()?;
        Ok(Campaign {
            spec,
            tap: None,
            pool: None,
        })
    }

    /// The campaign's serializable spec. `Campaign::from_spec(c.spec().clone())`
    /// round-trips losslessly: the revived campaign runs byte-identically.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Restricts the experiments.
    pub fn experiments(mut self, experiments: Vec<Experiment>) -> Campaign {
        self.spec.experiments = experiments;
        self
    }

    /// Restricts the storage formats.
    pub fn formats(mut self, formats: Vec<StorageFormat>) -> Campaign {
        self.spec.formats = formats;
        self
    }

    /// Applies Spark configuration overrides to every deployment.
    pub fn spark_overrides(mut self, overrides: Vec<(String, String)>) -> Campaign {
        self.spec.spark_overrides = overrides;
        self
    }

    /// Drops each table right after its observation is recorded.
    pub fn recycle_tables(mut self, recycle: bool) -> Campaign {
        self.spec.recycle_tables = recycle;
        self
    }

    /// Runs the campaign on `n` workers; `0` or `1` runs serially
    /// (`0` in matrix mode still means serial). Clamped to
    /// [`MAX_SHARDS`](crate::spec::MAX_SHARDS) — only specs revived from
    /// the wire can carry an out-of-range value.
    pub fn shards(mut self, n: usize) -> Campaign {
        self.spec.shards = n.min(crate::spec::MAX_SHARDS);
        self
    }

    /// Maximum inputs per shard (sharded cross-test campaigns only).
    pub fn chunk_size(mut self, chunk_size: usize) -> Campaign {
        self.spec.chunk_size = chunk_size.max(1);
        self
    }

    /// Arms a fault plan: on every deployment in cross-test mode, or as
    /// the cell catalogue in matrix mode (replacing the seed-derived
    /// standard catalogue).
    pub fn faults(mut self, plan: FaultPlan) -> Campaign {
        self.spec.faults = Some(plan);
        self
    }

    /// Switches the campaign to fault-matrix mode: every catalogue fault
    /// crossed with the scenarios of its channel, cells classified by the
    /// §9 oracle. Uses the builder's experiments/formats for probe cells
    /// and [`inject::fault_catalogue`]`(seed)` unless [`Campaign::faults`]
    /// supplied a catalogue.
    pub fn fault_matrix(mut self, seed: u64) -> Campaign {
        self.spec.matrix_seed = Some(seed);
        self
    }

    /// Records an interaction trace per observation (on by default;
    /// forced on when detection is enabled).
    pub fn trace(mut self, trace: bool) -> Campaign {
        self.spec.trace = trace;
        self
    }

    /// Runs the online CSI failure detector over every observation (or
    /// matrix cell).
    pub fn detect(mut self, detect: bool) -> Campaign {
        self.spec.detect = detect;
        self
    }

    /// Overrides the detector thresholds.
    pub fn detector_config(mut self, config: DetectorConfig) -> Campaign {
        self.spec.detector_config = config;
        self
    }

    /// Sets the exploration/mutation seed (default 42). Only explore mode
    /// consumes it; the standard and matrix modes are seedless (matrix
    /// mode has its own seed via [`Campaign::fault_matrix`]).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.spec.seed = seed;
        self
    }

    /// Switches the campaign to coverage-guided explore mode with an
    /// observation budget: novel boundary-crossing signatures admit inputs
    /// to a corpus, corpus entries are swept, mutated, and fault-overlaid
    /// ahead of fresh grid draws, and every reported discrepancy is shrunk
    /// to a 1-row/1-column reproducer. A budget of `0` degrades exactly to
    /// the standard exhaustive catalogue (the spec records it as "no
    /// explore pass", which is the same campaign). Explore mode forces the
    /// online detector off and ignores [`Campaign::faults`] (it schedules
    /// its own overlay from [`inject::fault_catalogue`]).
    pub fn explore(mut self, budget: usize) -> Campaign {
        self.spec.explore_budget = (budget > 0).then_some(budget);
        self
    }

    /// Replaces the campaign's inputs with the full catalogue *plus* a
    /// synthesized real-shaped corpus region
    /// ([`InputSelection::Corpus`]): `shape` and `seed` fully determine
    /// the synthesized inputs, which explore mode schedules first and
    /// attributes as the `corpus` origin in coverage and discovery rows.
    /// Panics on a shape that cannot synthesize; wire requests go through
    /// [`Campaign::from_spec`], which rejects the same shapes with a typed
    /// [`SpecError::BadCorpusShape`].
    pub fn corpus(mut self, shape: CorpusShape, seed: u64) -> Campaign {
        shape
            .validate()
            .unwrap_or_else(|e| panic!("invalid corpus shape: {e}"));
        self.spec.inputs = InputSelection::Corpus { shape, seed };
        self
    }

    /// Adds a compound pass after the campaign's main mode: k-fault
    /// combinations (arity ≤ `k`, from [`csi_core::fault::fault_combinations`])
    /// crossed with seeded cross-job interleavings on a shared deployment,
    /// searched coverage-guided, with the resulting discrepancies clustered
    /// by causal-trace prefix and ddmin-shrunk ([`crate::multi`]). The
    /// default (`0`) disables the pass and leaves every existing mode
    /// byte-identical. Clamped to
    /// [`MAX_KFAULTS`](crate::spec::MAX_KFAULTS).
    pub fn kfaults(mut self, k: usize) -> Campaign {
        self.spec.kfaults = k.min(crate::spec::MAX_KFAULTS);
        self
    }

    /// Number of jobs sharing each compound trial's deployment (default 2;
    /// only the compound pass consumes it). Clamped to at least 1.
    pub fn jobs(mut self, n: usize) -> Campaign {
        self.spec.jobs = n.max(1);
        self
    }

    /// Attaches a streaming detection observer: every [`Detection`] the
    /// campaign's online detectors emit is handed to `tap` the moment it
    /// is recorded, long before the final report exists. Taps only
    /// observe — a tapped campaign's outcome is byte-identical to an
    /// untapped one. Only modes that build detectors (cross-test and
    /// matrix with `.detect(true)`) ever invoke it.
    ///
    /// [`Detection`]: csi_core::detect::Detection
    pub fn detection_tap(mut self, tap: DetectionTap) -> Campaign {
        self.tap = Some(tap);
        self
    }

    /// Draws this campaign's deployments from a shared warm
    /// [`DeploymentPool`] instead of building them fresh, returning them
    /// (reset) when done. Pooling changes wall time only: pooled output
    /// is byte-identical to unpooled. Only the standard cross-test path
    /// consumes the pool; matrix, explore, and compound modes build
    /// hermetic per-cell state by design.
    pub fn pool(mut self, pool: Arc<DeploymentPool>) -> Campaign {
        self.pool = Some(pool);
        self
    }

    /// Runs a *bulk* campaign alongside (not instead of) the builder's
    /// row-oriented modes: the wide clean-data table of
    /// [`crate::generator::bulk_schema`] at `rows` rows, written and read
    /// through both engines' columnar entry points over this builder's
    /// formats and seed, checked by the vectorized write–read and digest
    /// differential oracles. This is the million-row path: the row
    /// campaigns' table-size ceiling (one row per observation) does not
    /// apply.
    pub fn run_bulk(self, rows: usize) -> crate::bulk::BulkReport {
        crate::bulk::run_bulk(&crate::bulk::BulkConfig {
            rows,
            seed: self.spec.seed,
            formats: self.spec.formats,
        })
    }

    /// Executes the campaign, panicking on an invalid spec. Specs built
    /// through the builder methods are always valid; prefer
    /// [`Campaign::try_run`] for campaigns revived from untrusted specs.
    pub fn run(self) -> CampaignOutcome {
        self.try_run()
            .unwrap_or_else(|e| panic!("invalid campaign spec: {e}"))
    }

    /// Executes the campaign, returning a typed [`SpecError`] instead of
    /// panicking when the spec is invalid.
    pub fn try_run(self) -> Result<CampaignOutcome, SpecError> {
        self.spec.validate()?;
        let compound = (self.spec.kfaults > 0).then(|| {
            let mut config = CompoundConfig::new(self.spec.seed, self.spec.kfaults);
            config.jobs = self.spec.jobs;
            config.shards = self.spec.shards;
            if let Some(budget) = self.spec.explore_budget {
                config.budget = budget;
            }
            config
        });
        // A validated spec never carries `Some(0)` (the builder records
        // `.explore(0)` as `None`), so `Some` always means explore mode.
        let mut outcome = match self.spec.explore_budget {
            Some(budget) => self.run_explore(budget),
            None if self.spec.matrix_seed.is_some() => self.run_matrix(),
            None => self.run_cross(),
        };
        if let Some(config) = compound {
            let result = multi::run_compound(&config);
            outcome.compound = Some(result.stats);
            outcome.clusters = result.clusters;
        }
        Ok(outcome)
    }

    fn run_explore(self, budget: usize) -> CampaignOutcome {
        let inputs = self.spec.inputs.resolve();
        let result = explore::run_explore(
            &inputs,
            &self.spec.experiments,
            &self.spec.formats,
            self.spec.seed,
            budget,
            self.spec.shards,
            self.spec.inputs.corpus_floor(),
        );
        CampaignOutcome {
            report: result.report,
            observations: result.observations,
            metrics: None,
            matrix: None,
            exploration: Some(result.stats),
            reproducers: result.reproducers,
            compound: None,
            clusters: Vec::new(),
        }
    }

    fn run_matrix(self) -> CampaignOutcome {
        let seed = self.spec.matrix_seed.expect("matrix mode");
        let config = FaultMatrixConfig {
            seed,
            experiments: self.spec.experiments,
            formats: self.spec.formats,
            faults: self
                .spec
                .faults
                .unwrap_or_else(|| inject::fault_catalogue(seed)),
            detect: self.spec.detect.then_some(self.spec.detector_config),
            tap: self.tap,
        };
        let matrix = if self.spec.shards > 1 {
            inject::run_fault_matrix_sharded_impl(&config, self.spec.shards)
        } else {
            inject::run_fault_matrix_impl(&config)
        };
        // The campaign-level report carries the matrix's detection
        // aggregates so the unified Render path shows them alongside the
        // fault cells.
        let mut report = classify::classify(&[], &[], Vec::new(), matrix.detector_enabled);
        report.detection_kinds = matrix.detection_kinds.clone();
        report.detection_totals = matrix.detection_totals.clone();
        report.detector_agreement = matrix.agreement;
        CampaignOutcome {
            report,
            observations: Vec::new(),
            metrics: None,
            matrix: Some(matrix),
            exploration: None,
            reproducers: Vec::new(),
            compound: None,
            clusters: Vec::new(),
        }
    }

    fn run_cross(self) -> CampaignOutcome {
        let inputs = self.spec.inputs.resolve();
        let mut config = CrossTestConfig {
            experiments: self.spec.experiments,
            formats: self.spec.formats,
            spark_overrides: self.spec.spark_overrides,
            recycle_tables: self.spec.recycle_tables,
            fault_plan: self.spec.faults,
            // The baseline learner and the agreement scorer both read
            // observation traces, so detection forces tracing on.
            trace_boundaries: self.spec.trace || self.spec.detect,
            detector: None,
            pool: self.pool,
        };
        if self.spec.detect {
            // Fault-free calibration replay over the identical scenario
            // space: learn what "normal" looks like per scenario, then
            // freeze. Runs in the same mode (serial/sharded) as the real
            // campaign; learning is keyed, so worker interleaving cannot
            // change the result.
            let calibration_config = CrossTestConfig {
                fault_plan: None,
                trace_boundaries: true,
                detector: None,
                ..config.clone()
            };
            let (calibration, _) = run_mode(
                &inputs,
                &calibration_config,
                self.spec.shards,
                self.spec.chunk_size,
            );
            let baselines = exec::learn_baselines(&calibration.observations);
            config.detector = Some(DetectorSpec {
                config: self.spec.detector_config,
                baselines: Arc::new(baselines),
                tap: self.tap,
            });
        }
        let (outcome, metrics) = run_mode(&inputs, &config, self.spec.shards, self.spec.chunk_size);
        CampaignOutcome {
            report: outcome.report,
            observations: outcome.observations,
            metrics,
            matrix: None,
            exploration: None,
            reproducers: Vec::new(),
            compound: None,
            clusters: Vec::new(),
        }
    }
}

fn run_mode(
    inputs: &[TestInput],
    config: &CrossTestConfig,
    shards: usize,
    chunk_size: usize,
) -> (CrossTestOutcome, Option<CampaignMetrics>) {
    if shards > 1 {
        let out = shard::run_cross_test_parallel_impl(
            inputs,
            config,
            &ParallelConfig {
                workers: shards,
                chunk_size,
            },
        );
        (out.outcome, Some(out.metrics))
    } else {
        (exec::run_cross_test_impl(inputs, config), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Validity;
    use csi_core::value::{DataType, Value};
    use parking_lot::Mutex;

    fn byte_input() -> Vec<TestInput> {
        vec![TestInput {
            id: 0,
            column_type: DataType::Byte,
            value: Value::Byte(5),
            validity: Validity::Valid,
            label: "a tinyint".into(),
            expected_back: None,
        }]
    }

    #[test]
    fn builder_matches_the_legacy_serial_entrypoint() {
        let inputs = byte_input();
        let campaign = Campaign::new(&inputs).run();
        let legacy = exec::run_cross_test_impl(&inputs, &CrossTestConfig::default());
        assert_eq!(
            serde_json::to_string(&campaign.report).unwrap(),
            serde_json::to_string(&legacy.report).unwrap()
        );
        assert!(campaign.metrics.is_none());
        assert!(campaign.matrix.is_none());
    }

    #[test]
    fn spec_round_trip_is_lossless_and_byte_identical() {
        let inputs = byte_input();
        let original = Campaign::new(&inputs).shards(2).chunk_size(1);
        let spec = original.spec().clone();
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let revived: CampaignSpec = serde_json::from_str(&json).expect("spec deserializes");
        assert_eq!(revived, spec);
        let a = original.run();
        let b = Campaign::from_spec(revived).expect("valid spec").run();
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }

    #[test]
    fn from_spec_rejects_invalid_specs_with_typed_errors() {
        let spec = CampaignSpec {
            explore_budget: Some(0),
            ..CampaignSpec::default()
        };
        assert_eq!(
            Campaign::from_spec(spec).expect_err("invalid"),
            SpecError::ZeroExploreBudget
        );
        // The builder's `.explore(0)` documents degrade-to-grid instead.
        let campaign = Campaign::new(&byte_input()).explore(0);
        assert_eq!(campaign.spec().explore_budget, None);
    }

    #[test]
    #[should_panic(expected = "invalid campaign spec")]
    fn run_panics_on_an_invalid_revived_spec() {
        let mut campaign = Campaign::new(&[]);
        campaign.spec.jobs = 0;
        let _ = campaign.run();
    }

    #[test]
    fn detection_tap_streams_every_detection_before_the_report() {
        let plan = inject::small_fault_catalogue(5);
        let streamed = Arc::new(Mutex::new(Vec::new()));
        let sink = streamed.clone();
        let tap = DetectionTap::new(move |d| sink.lock().push(d.clone()));
        let outcome = Campaign::new(&[])
            .fault_matrix(5)
            .faults(plan)
            .experiments(vec![Experiment::ALL[0]])
            .formats(vec![StorageFormat::Orc])
            .detect(true)
            .detection_tap(tap)
            .run();
        let matrix = outcome.matrix.expect("matrix mode");
        let reported: Vec<_> = matrix
            .cases
            .iter()
            .flat_map(|c| c.detections.iter().cloned())
            .collect();
        assert!(!reported.is_empty(), "smoke matrix detects nothing");
        assert_eq!(*streamed.lock(), reported);

        // And a tapped campaign stays byte-identical to an untapped one.
        let untapped = Campaign::new(&[])
            .fault_matrix(5)
            .faults(inject::small_fault_catalogue(5))
            .experiments(vec![Experiment::ALL[0]])
            .formats(vec![StorageFormat::Orc])
            .detect(true)
            .run();
        assert_eq!(
            serde_json::to_string(&untapped.matrix.unwrap()).unwrap(),
            serde_json::to_string(&matrix).unwrap()
        );
    }

    #[test]
    fn sharded_campaign_reports_metrics_and_identical_output() {
        let inputs = byte_input();
        let serial = Campaign::new(&inputs).run();
        let sharded = Campaign::new(&inputs).shards(3).chunk_size(1).run();
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&sharded.report).unwrap()
        );
        let metrics = sharded.metrics.expect("sharded campaigns carry metrics");
        assert_eq!(metrics.observations, sharded.observations.len());
    }

    #[test]
    fn pooled_campaign_is_byte_identical_across_reuse() {
        let inputs = byte_input();
        let fresh = Campaign::new(&inputs).detect(true).run();
        let pool = Arc::new(DeploymentPool::new());
        for _ in 0..2 {
            let pooled = Campaign::new(&inputs).detect(true).pool(pool.clone()).run();
            assert_eq!(
                serde_json::to_string(&pooled.report).unwrap(),
                serde_json::to_string(&fresh.report).unwrap()
            );
        }
        assert!(pool.stats().reused > 0, "second run never hit the shelves");
    }

    #[test]
    fn matrix_mode_renders_fault_cells_through_the_unified_path() {
        let outcome = Campaign::new(&[])
            .fault_matrix(11)
            .faults(inject::small_fault_catalogue(11))
            .experiments(vec![Experiment::ALL[0]])
            .formats(vec![StorageFormat::Orc])
            .run();
        let matrix = outcome.matrix.as_ref().expect("matrix mode");
        assert!(!matrix.cases.is_empty());
        let rendered = outcome.render();
        assert!(rendered.contains("fault matrix cells:"), "{rendered}");
        assert!(rendered.contains("ms-unavail-get"), "{rendered}");
    }

    #[test]
    fn detection_campaign_is_clean_on_a_fault_free_plan() {
        let inputs = byte_input();
        let outcome = Campaign::new(&inputs).detect(true).run();
        assert!(outcome.report.detector_enabled);
        assert!(
            outcome.report.detection_totals.is_empty(),
            "fault-free campaign produced detections: {:?}",
            outcome.report.detection_totals
        );
        assert!(outcome.report.detector_agreement.is_none());
        let rendered = outcome.render();
        assert!(rendered.contains("online detections: none"), "{rendered}");
    }
}
