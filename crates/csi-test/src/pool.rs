//! A warm pool of [`Deployment`]s shared across campaigns.
//!
//! Building a deployment (metastore + namenode + two engine frontends)
//! is the fixed cost of every campaign. A long-running host — the
//! `csi-serve` daemon above all — runs thousands of campaigns against
//! identical deployment *shapes*, so the pool keeps finished stacks warm
//! on per-shape shelves and hands them back out instead of rebuilding.
//!
//! The invariant that makes pooling safe is the same one `vacuum`
//! enforces for recycled tables, taken to its limit: **a released
//! deployment is reset until it is construction-identical to a fresh
//! one**. [`Metastore::reset`](minihive::metastore::Metastore::reset) and
//! [`MiniHdfs::reset`](minihdfs::MiniHdfs::reset) rebuild both stores
//! from scratch (erasing residue like `next_part` / `next_block_id`
//! cursors that `vacuum` deliberately preserves), the crossing context is
//! disarmed and its counters, clock and trace cleared, and the diag sink
//! drained. Pooled campaigns are therefore byte-identical to unpooled
//! ones — pinned by `exec::tests::pooled_run_is_byte_identical_to_fresh`.
//!
//! Shelves are keyed by the parts of a [`CrossTestConfig`] that are baked
//! in at construction time (Spark overrides, boundary tracing); per-run
//! attachments — fault plans, detectors — are armed on acquire and torn
//! down on release, so one shelf serves faulty and fault-free campaigns
//! alike.

use crate::exec::{CrossTestConfig, Deployment};
use csi_core::detect::DetectorSpec;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing how well a pool is amortizing deployment
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Deployments built from scratch (shelf misses).
    pub created: u64,
    /// Deployments handed back out from a shelf (hits).
    pub reused: u64,
    /// Deployments currently sitting on shelves.
    pub shelved: usize,
}

/// A thread-safe pool of reset-to-fresh [`Deployment`]s, keyed by
/// deployment shape.
pub struct DeploymentPool {
    shelves: Mutex<BTreeMap<String, Vec<Deployment>>>,
    created: AtomicU64,
    reused: AtomicU64,
}

impl fmt::Debug for DeploymentPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("DeploymentPool")
            .field("created", &stats.created)
            .field("reused", &stats.reused)
            .field("shelved", &stats.shelved)
            .finish()
    }
}

impl Default for DeploymentPool {
    fn default() -> DeploymentPool {
        DeploymentPool::new()
    }
}

/// The shelf key: exactly the configuration a deployment bakes in at
/// construction time. Everything else (faults, detectors) is armed per
/// acquire.
fn shelf_key(config: &CrossTestConfig) -> String {
    let mut key = String::from(if config.trace_boundaries {
        "trace"
    } else {
        "notrace"
    });
    for (k, v) in &config.spark_overrides {
        key.push('|');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

/// `config` with every per-run attachment stripped: what a pooled
/// deployment is *built* from, so a shelf miss constructs exactly the
/// stack a fresh unpooled run would.
fn construction_config(config: &CrossTestConfig) -> CrossTestConfig {
    CrossTestConfig {
        fault_plan: None,
        detector: None,
        pool: None,
        ..config.clone()
    }
}

impl DeploymentPool {
    /// An empty pool.
    pub fn new() -> DeploymentPool {
        DeploymentPool {
            shelves: Mutex::new(BTreeMap::new()),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// Pre-builds `n` deployments of `config`'s shape so the first `n`
    /// acquires are shelf hits. The daemon calls this at startup to hide
    /// construction cost from the first wave of tenants.
    pub fn warm(&self, config: &CrossTestConfig, n: usize) {
        let key = shelf_key(config);
        let clean = construction_config(config);
        let fresh: Vec<Deployment> = (0..n)
            .map(|_| {
                self.created.fetch_add(1, Ordering::Relaxed);
                Deployment::new(&clean)
            })
            .collect();
        self.shelves.lock().entry(key).or_default().extend(fresh);
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            shelved: self.shelves.lock().values().map(Vec::len).sum(),
        }
    }

    /// Takes a deployment of `config`'s shape off its shelf (or builds
    /// one), then arms `config`'s per-run attachments on it: the fault
    /// plan, and a freshly built detector wired in as the crossing sink.
    pub(crate) fn acquire(&self, config: &CrossTestConfig) -> Deployment {
        let shelved = self
            .shelves
            .lock()
            .get_mut(&shelf_key(config))
            .and_then(Vec::pop);
        let mut deployment = match shelved {
            Some(d) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                d
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Deployment::new(&construction_config(config))
            }
        };
        if let Some(plan) = &config.fault_plan {
            deployment.crossing.arm_plan(plan);
        }
        deployment.detector = config.detector.as_ref().map(DetectorSpec::build);
        if let Some(d) = &deployment.detector {
            deployment.crossing.set_sink(d.sink());
        }
        deployment
    }

    /// Resets `deployment` to construction-identical-to-fresh and shelves
    /// it for the next acquire of the same shape.
    pub(crate) fn release(&self, config: &CrossTestConfig, mut deployment: Deployment) {
        deployment.crossing.clear_sink();
        deployment.detector = None;
        deployment.crossing.disarm_all();
        deployment.crossing.reset();
        deployment.metastore.lock().reset();
        deployment.fs.lock().reset();
        deployment.sink.drain();
        self.shelves
            .lock()
            .entry(shelf_key(config))
            .or_default()
            .push(deployment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shelves_are_keyed_by_deployment_shape() {
        let pool = DeploymentPool::new();
        let plain = CrossTestConfig::default();
        let tuned = CrossTestConfig {
            spark_overrides: CrossTestConfig::custom_resolving_overrides(),
            ..CrossTestConfig::default()
        };
        assert_ne!(shelf_key(&plain), shelf_key(&tuned));

        let d = pool.acquire(&plain);
        pool.release(&plain, d);
        // A different shape misses the shelf...
        let d = pool.acquire(&tuned);
        pool.release(&tuned, d);
        // ...while the same shape hits it.
        let d = pool.acquire(&plain);
        pool.release(&plain, d);
        let stats = pool.stats();
        assert_eq!((stats.created, stats.reused), (2, 1));
        assert_eq!(stats.shelved, 2);
    }

    #[test]
    fn warm_prebuilds_shelf_hits() {
        let pool = DeploymentPool::new();
        let config = CrossTestConfig::default();
        pool.warm(&config, 2);
        assert_eq!(pool.stats().shelved, 2);
        let a = pool.acquire(&config);
        let b = pool.acquire(&config);
        assert_eq!(pool.stats().reused, 2);
        pool.release(&config, a);
        pool.release(&config, b);
        assert_eq!(pool.stats().shelved, 2);
    }

    #[test]
    fn per_run_attachments_are_armed_on_acquire_and_stripped_on_release() {
        use csi_core::boundary::BoundaryCall;
        use csi_core::fault::{Channel, FaultKind, FaultPlan, FaultSpec, Trigger};

        fn probe_call() -> BoundaryCall {
            BoundaryCall::new(Channel::Metastore, "get_table")
        }

        let pool = DeploymentPool::new();
        let plan = FaultPlan {
            seed: 7,
            faults: vec![FaultSpec {
                id: "probe".into(),
                channel: Channel::Metastore,
                op: "get_table".into(),
                kind: FaultKind::Unavailable,
                trigger: Trigger::Always,
            }],
        };
        let config = CrossTestConfig {
            fault_plan: Some(plan),
            ..CrossTestConfig::default()
        };
        let d = pool.acquire(&config);
        assert!(
            d.crossing.intercept(probe_call()).is_some(),
            "armed fault did not fire"
        );
        pool.release(&config, d);

        let fault_free = CrossTestConfig::default();
        let d = pool.acquire(&fault_free);
        assert!(
            d.crossing.intercept(probe_call()).is_none(),
            "armed faults leaked the shelf"
        );
        pool.release(&fault_free, d);
    }
}
