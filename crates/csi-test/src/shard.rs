//! Parallel sharded campaign executor.
//!
//! The serial executor in [`crate::exec`] walks the (experiment, plan,
//! format, input) space one observation at a time; a full-catalogue
//! campaign is embarrassingly parallel but single-threaded. This module
//! shards that space into (experiment, plan, format, input-chunk) work
//! units and drains them with a worker pool:
//!
//! - **Deployment pooling** — each worker owns its *own*
//!   Metastore/MiniHdfs/SparkSession/HiveQl stack (one per experiment,
//!   created lazily, mirroring the serial executor's
//!   fresh-deployment-per-experiment discipline), so workers never contend
//!   on engine locks.
//! - **Deterministic merge** — workers only *record* observations, tagged
//!   with their shard index. The merger restores canonical (experiment,
//!   plan, format, input-id) order and only then runs the write–read,
//!   error-handling, and differential oracles, so failures are produced in
//!   exactly the serial order and the resulting [`DiscrepancyReport`] is
//!   byte-identical to the serial executor's.
//! - **Campaign metrics** — observations/sec, per-phase wall time, and
//!   per-worker utilization are surfaced in [`CampaignMetrics`] for the
//!   `campaign` bench binary.
//!
//! [`DiscrepancyReport`]: csi_core::report::DiscrepancyReport

use crate::classify;
use crate::exec::{
    acquire_deployment, check_observation, release_deployment, run_one, CrossTestConfig,
    CrossTestOutcome, Deployment,
};
use crate::generator::TestInput;
use crate::plan::{Experiment, TestPlan};
use csi_core::oracle::{check_differential, Observation, OracleFailure};
use minihive::metastore::StorageFormat;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of the parallel campaign executor.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker-pool size; `0` uses [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Maximum number of inputs per shard. Smaller chunks balance better
    /// across workers; larger chunks amortize queue traffic.
    pub chunk_size: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            workers: 0,
            chunk_size: 64,
        }
    }
}

/// Execution statistics for one worker of the pool.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Shards this worker executed.
    pub shards: usize,
    /// Observations this worker recorded.
    pub observations: usize,
    /// Time spent executing shards, in microseconds.
    pub busy_micros: u64,
    /// `busy` as a fraction of the worker's lifetime (0.0–1.0).
    pub utilization: f64,
}

/// Wall-time and throughput metrics for one parallel campaign.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignMetrics {
    /// Workers in the pool.
    pub workers: usize,
    /// Work units the campaign was sharded into.
    pub shards: usize,
    /// Total observations recorded.
    pub observations: usize,
    /// Wall time of the parallel execute phase, in microseconds.
    pub execute_micros: u64,
    /// Wall time of the merge phase (oracles + classification) — the
    /// campaign's oracle overhead, in microseconds.
    pub oracle_micros: u64,
    /// End-to-end wall time, in microseconds.
    pub total_micros: u64,
    /// Observations recorded per second of execute-phase wall time.
    pub observations_per_sec: f64,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

/// The result of a sharded campaign: the same outcome the serial
/// executor produces, plus campaign metrics.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Report and observations, identical to the serial run's.
    pub outcome: CrossTestOutcome,
    /// Throughput and utilization metrics.
    pub metrics: CampaignMetrics,
}

/// One work unit: a contiguous slice of the input catalogue under a fixed
/// (experiment, plan, format). Shards are generated in canonical executor
/// order, so a shard's position in the vector *is* its merge position.
struct Shard {
    experiment_idx: usize,
    experiment: Experiment,
    plan: TestPlan,
    format: StorageFormat,
    lo: usize,
    hi: usize,
}

/// Enumerates shards in the serial executor's canonical nesting order:
/// experiment, then plan, then format, then input chunks.
fn build_shards(inputs_len: usize, config: &CrossTestConfig, chunk_size: usize) -> Vec<Shard> {
    let mut shards = Vec::new();
    for (experiment_idx, &experiment) in config.experiments.iter().enumerate() {
        for plan in experiment.plans() {
            for &format in &config.formats {
                let mut lo = 0;
                while lo < inputs_len {
                    let hi = (lo + chunk_size).min(inputs_len);
                    shards.push(Shard {
                        experiment_idx,
                        experiment,
                        plan,
                        format,
                        lo,
                        hi,
                    });
                    lo = hi;
                }
            }
        }
    }
    shards
}

/// Runs the full cross-test on a worker pool and merges the shard results
/// back into canonical order — the sharded executor behind
/// [`crate::Campaign::shards`].
///
/// The returned [`CrossTestOutcome`] — observations, failure ordering, and
/// the classified [`DiscrepancyReport`] — is identical to what
/// [`crate::exec::run_cross_test_impl`] produces for the same `inputs` and
/// `config`; only the wall time differs. See the module docs for how the
/// merge guarantees this.
///
/// [`DiscrepancyReport`]: csi_core::report::DiscrepancyReport
pub(crate) fn run_cross_test_parallel_impl(
    inputs: &[TestInput],
    config: &CrossTestConfig,
    parallel: &ParallelConfig,
) -> ParallelOutcome {
    let campaign_started = Instant::now();
    let chunk_size = parallel.chunk_size.max(1);
    let shards = build_shards(inputs.len(), config, chunk_size);
    let workers = if parallel.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        parallel.workers
    }
    .clamp(1, shards.len().max(1));

    // Shared work queue (a bump counter over the shard list) and one result
    // slot per shard, so workers never serialize on a single collection
    // lock while another worker is storing a large batch.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<Observation>>>> =
        shards.iter().map(|_| Mutex::new(None)).collect();
    let stats: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::with_capacity(workers));

    {
        let shards = &shards;
        let slots = &slots;
        let next = &next;
        let stats = &stats;
        std::thread::scope(|scope| {
            for worker in 0..workers {
                scope.spawn(move || {
                    let worker_started = Instant::now();
                    let mut busy_micros = 0u64;
                    let mut my_shards = 0usize;
                    let mut my_observations = 0usize;
                    // Deployment set: one lazily-acquired stack per
                    // experiment, so observations come from a deployment
                    // that only ever served that experiment (as in the
                    // serial executor). With a warm pool on `config`,
                    // acquisition hits the pool's shelves instead of
                    // building; every stack goes back on release below.
                    let mut deployments: Vec<Option<Deployment>> =
                        config.experiments.iter().map(|_| None).collect();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= shards.len() {
                            break;
                        }
                        let shard = &shards[i];
                        let shard_started = Instant::now();
                        let deployment = deployments[shard.experiment_idx]
                            .get_or_insert_with(|| acquire_deployment(config));
                        let mut batch = Vec::with_capacity(shard.hi - shard.lo);
                        for input in &inputs[shard.lo..shard.hi] {
                            batch.push(run_one(
                                deployment,
                                shard.experiment,
                                shard.plan,
                                shard.format,
                                input,
                                config.recycle_tables,
                            ));
                        }
                        my_shards += 1;
                        my_observations += batch.len();
                        *slots[i].lock() = Some(batch);
                        busy_micros += shard_started.elapsed().as_micros() as u64;
                    }
                    // Hand every acquired stack back to the warm pool (a
                    // no-op without one).
                    for deployment in deployments.into_iter().flatten() {
                        release_deployment(config, deployment);
                    }
                    let lifetime_micros = worker_started.elapsed().as_micros().max(1) as u64;
                    stats.lock().push(WorkerStats {
                        worker,
                        shards: my_shards,
                        observations: my_observations,
                        busy_micros,
                        utilization: busy_micros as f64 / lifetime_micros as f64,
                    });
                });
            }
        });
    }

    let execute_micros = campaign_started.elapsed().as_micros() as u64;
    let merge_started = Instant::now();

    // Deterministic merge: slot order is canonical shard order, so walking
    // the slots replays the serial executor's observation sequence; the
    // oracles then fire in exactly the serial order.
    let mut batches: Vec<Vec<Observation>> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every shard was executed"))
        .collect();
    let mut observations: Vec<(Experiment, Observation)> = Vec::new();
    let mut failures: Vec<OracleFailure> = Vec::new();
    let mut cursor = 0;
    for (experiment_idx, &experiment) in config.experiments.iter().enumerate() {
        let mut exp_observations: Vec<Observation> = Vec::new();
        while cursor < shards.len() && shards[cursor].experiment_idx == experiment_idx {
            let shard = &shards[cursor];
            let batch = std::mem::take(&mut batches[cursor]);
            for (input, obs) in inputs[shard.lo..shard.hi].iter().zip(&batch) {
                if let Some(f) = check_observation(input, obs) {
                    failures.push(f);
                }
            }
            exp_observations.extend(batch);
            cursor += 1;
        }
        failures.extend(check_differential(&exp_observations));
        observations.extend(exp_observations.into_iter().map(|o| (experiment, o)));
    }
    let report = classify::classify(inputs, &observations, failures, config.detector.is_some());

    let oracle_micros = merge_started.elapsed().as_micros() as u64;
    let total_micros = campaign_started.elapsed().as_micros() as u64;
    let mut per_worker = stats.into_inner();
    per_worker.sort_by_key(|w| w.worker);
    let metrics = CampaignMetrics {
        workers,
        shards: shards.len(),
        observations: observations.len(),
        execute_micros,
        oracle_micros,
        total_micros,
        observations_per_sec: observations.len() as f64
            / (execute_micros.max(1) as f64 / 1_000_000.0),
        per_worker,
    };
    ParallelOutcome {
        outcome: CrossTestOutcome {
            report,
            observations,
        },
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_cross_test_impl;
    use crate::generator::Validity;
    use csi_core::value::{DataType, Value};

    fn small_inputs() -> Vec<TestInput> {
        [
            (DataType::Byte, Value::Byte(5), Validity::Valid),
            (DataType::Int, Value::Int(7), Validity::Valid),
            (DataType::Byte, Value::Int(4096), Validity::Invalid),
            (DataType::String, Value::Str("x".into()), Validity::Valid),
        ]
        .into_iter()
        .enumerate()
        .map(|(id, (column_type, value, validity))| TestInput {
            id,
            column_type,
            value,
            validity,
            label: format!("input {id}"),
            expected_back: None,
        })
        .collect()
    }

    #[test]
    fn shards_cover_the_space_in_canonical_order() {
        let config = CrossTestConfig::default();
        let shards = build_shards(10, &config, 3);
        // 8 plans x 3 formats x ceil(10 / 3) chunks.
        assert_eq!(shards.len(), 8 * 3 * 4);
        let mut prev = (0, 0);
        let mut covered = 0;
        for s in &shards {
            assert!((s.experiment_idx, s.lo) >= (prev.0, 0));
            prev = (s.experiment_idx, s.lo);
            assert!(s.lo < s.hi && s.hi <= 10);
            covered += s.hi - s.lo;
        }
        assert_eq!(covered, 8 * 3 * 10);
    }

    #[test]
    fn parallel_matches_serial_on_small_catalogue() {
        let inputs = small_inputs();
        let config = CrossTestConfig::default();
        let serial = run_cross_test_impl(&inputs, &config);
        for workers in [1, 3] {
            let out = run_cross_test_parallel_impl(
                &inputs,
                &config,
                &ParallelConfig {
                    workers,
                    chunk_size: 2,
                },
            );
            assert_eq!(out.outcome.observations, serial.observations);
            assert_eq!(out.outcome.report, serial.report);
            assert_eq!(out.metrics.workers, workers);
            assert_eq!(out.metrics.observations, serial.observations.len());
            let by_worker: usize = out.metrics.per_worker.iter().map(|w| w.observations).sum();
            assert_eq!(by_worker, serial.observations.len());
        }
    }

    #[test]
    fn recycling_does_not_change_the_report() {
        let inputs = small_inputs();
        let plain = run_cross_test_impl(&inputs, &CrossTestConfig::default());
        let recycled = run_cross_test_parallel_impl(
            &inputs,
            &CrossTestConfig {
                recycle_tables: true,
                ..CrossTestConfig::default()
            },
            &ParallelConfig {
                workers: 2,
                chunk_size: 1,
            },
        );
        assert_eq!(recycled.outcome.report, plain.report);
        assert_eq!(recycled.outcome.observations, plain.observations);
    }

    #[test]
    fn metrics_are_serializable_to_json() {
        let inputs = small_inputs();
        let out = run_cross_test_parallel_impl(
            &inputs,
            &CrossTestConfig::default(),
            &ParallelConfig {
                workers: 2,
                chunk_size: 2,
            },
        );
        let json = serde_json::to_string(&out.metrics).expect("metrics serialize");
        assert!(json.contains("\"observations_per_sec\""));
        assert!(json.contains("\"per_worker\""));
    }
}
