//! Determinism and coverage properties of the fault-matrix campaign.
//!
//! The contract mirrors `tests/determinism.rs` for the fault dimension:
//! same seed → byte-identical report (serial, sharded at any worker
//! count, and across repeated runs), a fault-free `FaultPlan` is
//! indistinguishable from no plan at all, every fired fault lands in
//! exactly one taxonomy bucket, and every interaction channel of the
//! catalogue actually fires somewhere.

use csi_core::fault::{Channel, FaultPlan};
use csi_test::{
    fault_catalogue, generate_inputs, small_fault_catalogue, Campaign, Experiment,
    FaultMatrixReport,
};
use minihive::metastore::StorageFormat;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

/// The standard matrix campaign (full catalogue, full experiment × format
/// cross) at the given seed and worker count, through the builder.
fn standard_matrix(seed: u64, shards: usize) -> FaultMatrixReport {
    Campaign::new(&[])
        .fault_matrix(seed)
        .shards(shards)
        .run()
        .matrix
        .expect("matrix mode")
}

/// The smoke matrix campaign (small catalogue, one experiment, one
/// format) at the given seed and worker count, through the builder.
fn smoke_matrix(seed: u64, shards: usize) -> FaultMatrixReport {
    Campaign::new(&[])
        .fault_matrix(seed)
        .experiments(vec![Experiment::ALL[0]])
        .formats(vec![StorageFormat::Orc])
        .faults(small_fault_catalogue(seed))
        .shards(shards)
        .run()
        .matrix
        .expect("matrix mode")
}

#[test]
fn sharded_matrix_is_identical_to_serial_at_any_worker_count() {
    let serial = standard_matrix(42, 1);
    for workers in [1, 2, 5] {
        let sharded = standard_matrix(42, workers);
        assert_eq!(
            json(&serial),
            json(&sharded),
            "report diverges at {workers} workers"
        );
        assert_eq!(serial.render(), sharded.render());
    }
}

#[test]
fn every_fired_fault_is_classified_and_every_channel_fires() {
    let report = standard_matrix(42, 1);
    let mut fired_channels = BTreeSet::new();
    for case in &report.cases {
        assert_eq!(
            case.outcome.is_some(),
            !case.fired.is_empty(),
            "cell {}/{} must be classified iff its fault fired",
            case.fault.id,
            case.scenario
        );
        for fired in &case.fired {
            fired_channels.insert(fired.channel);
        }
    }
    for channel in Channel::ALL {
        assert!(fired_channels.contains(&channel), "{channel} never fired");
    }
    // The standard catalogue exercises the whole taxonomy: the paper's
    // four outcome buckets all occur.
    for bucket in [
        "swallowed",
        "mistranslated",
        "propagated-with-context",
        "crash",
    ] {
        assert!(
            report.outcomes.contains_key(bucket),
            "bucket {bucket} missing from {:?}",
            report.outcomes
        );
    }
}

#[test]
fn catalogue_has_at_least_one_fault_per_channel() {
    let plan = fault_catalogue(42);
    for channel in Channel::ALL {
        assert!(plan.faults.iter().any(|f| f.channel == channel));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Replaying the same seeded plan — serially or sharded — yields a
    /// byte-identical fault-matrix report.
    #[test]
    fn same_seed_replay_is_byte_identical(seed in any::<u64>()) {
        let first = smoke_matrix(seed, 1);
        let again = smoke_matrix(seed, 1);
        let sharded = smoke_matrix(seed, 3);
        prop_assert_eq!(json(&first), json(&again));
        prop_assert_eq!(json(&first), json(&sharded));
        prop_assert_eq!(first.render(), sharded.render());
    }

    /// A fault-free `FaultPlan` is inert: the campaign report is exactly
    /// the report of a run with no plan at all, for any seed.
    #[test]
    fn fault_free_plan_reproduces_the_seed_campaign(seed in any::<u64>()) {
        let inputs = generate_inputs();
        let inputs = &inputs[..12];
        let baseline = Campaign::new(inputs).run();
        let with_empty_plan = Campaign::new(inputs).faults(FaultPlan::empty(seed)).run();
        prop_assert_eq!(json(&baseline.report), json(&with_empty_plan.report));
        prop_assert_eq!(
            baseline.observations.len(),
            with_empty_plan.observations.len()
        );
        for (b, w) in baseline.observations.iter().zip(&with_empty_plan.observations) {
            prop_assert_eq!(b.0, w.0);
            prop_assert_eq!(json(&b.1), json(&w.1));
        }
    }
}
