//! Properties of the boundary-crossing trace.
//!
//! The tentpole contract: traces are *deterministic* (same seed, serial
//! or sharded, byte-identical crossing sequences), *side-effect-free*
//! (disabling tracing changes nothing but the trace fields), and
//! *complete* (every reported discrepancy carries a non-empty causal
//! crossing sequence).

use csi_test::{generate_inputs, Campaign};
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

#[test]
fn every_discrepancy_carries_a_nonempty_trace() {
    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs).run();
    assert_eq!(outcome.report.distinct(), 15);
    for d in &outcome.report.discrepancies {
        assert!(
            !d.trace.is_empty(),
            "discrepancy {} reported without a crossing trace",
            d.id
        );
    }
    assert!(!outcome.report.trace_totals.is_empty());
}

#[test]
fn disabling_tracing_changes_nothing_but_the_trace_fields() {
    let inputs = generate_inputs();
    let inputs = &inputs[..40];
    let traced = Campaign::new(inputs).run();
    let untraced = Campaign::new(inputs).trace(false).run();
    // Scrub the trace fields from the traced report; everything else —
    // observations, failures, classification, ordering — must be
    // byte-identical, because a disabled context still drives the
    // injection registry and the virtual clock the same way.
    let mut scrubbed = traced.report.clone();
    for d in &mut scrubbed.discrepancies {
        d.trace.clear();
    }
    scrubbed.trace_totals.clear();
    assert_eq!(json(&scrubbed), json(&untraced.report));
    assert_eq!(traced.observations.len(), untraced.observations.len());
    for ((te, to), (ue, uo)) in traced.observations.iter().zip(&untraced.observations) {
        assert_eq!(te, ue);
        assert!(uo.trace.is_empty(), "disabled run recorded a crossing");
        let mut scrubbed = to.clone();
        scrubbed.trace = Default::default();
        assert_eq!(json(&scrubbed), json(uo));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Serial and sharded runs of the same catalogue window record
    /// byte-identical crossing sequences, observation by observation —
    /// deployment pooling and table recycling included.
    #[test]
    fn serial_and_sharded_traces_are_byte_identical(
        start in 0usize..380,
        workers in 1usize..5,
    ) {
        let inputs = generate_inputs();
        let inputs = &inputs[start..start + 16];
        let serial = Campaign::new(inputs).recycle_tables(true).run();
        let parallel = Campaign::new(inputs)
            .recycle_tables(true)
            .shards(workers)
            .chunk_size(5)
            .run();
        prop_assert_eq!(serial.observations.len(), parallel.observations.len());
        for (i, ((se, so), (pe, po))) in serial
            .observations
            .iter()
            .zip(&parallel.observations)
            .enumerate()
        {
            prop_assert_eq!(se, pe);
            prop_assert!(!so.trace.is_empty(), "observation {} recorded no crossings", i);
            prop_assert_eq!(
                json(&so.trace),
                json(&po.trace),
                "trace diverges at observation {}",
                i
            );
            prop_assert_eq!(so.trace.compact(), po.trace.compact());
        }
        prop_assert_eq!(json(&serial.report), json(&parallel.report));
    }
}
