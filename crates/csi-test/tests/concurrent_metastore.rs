//! Stress test: two deployments hammering a *shared* metastore (and
//! filesystem) concurrently. The cross-system locking discipline — always
//! filesystem before metastore — must neither lose tables nor leave a lock
//! unusable, even when one engine's statement fails mid-flight.

use csi_core::diag::DiagSink;
use minihdfs::MiniHdfs;
use minihive::hiveql::HiveQl;
use minihive::metastore::Metastore;
use minispark::SparkSession;
use parking_lot::Mutex;
use std::sync::Arc;

const ROUNDS: usize = 40;

#[test]
fn two_deployments_share_a_metastore_without_losing_tables() {
    let metastore = Arc::new(Mutex::new(Metastore::new()));
    let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));

    std::thread::scope(|scope| {
        let spark_ms = metastore.clone();
        let spark_fs = fs.clone();
        let spark_worker = scope.spawn(move || {
            let sink = DiagSink::new();
            let spark = SparkSession::connect(spark_ms, spark_fs, sink.handle("minispark"));
            for i in 0..ROUNDS {
                let t = format!("spark_t{i}");
                spark
                    .sql(&format!("CREATE TABLE {t} (c INT) STORED AS ORC"))
                    .unwrap_or_else(|e| panic!("create {t}: {e:?}"));
                spark
                    .sql(&format!("INSERT INTO {t} VALUES ({i})"))
                    .unwrap_or_else(|e| panic!("insert {t}: {e:?}"));
                // Every other round: a statement that fails after taking
                // locks, to prove failures don't wedge the shared state.
                if i % 2 == 0 {
                    assert!(spark.sql("SELECT * FROM missing_table").is_err());
                }
                let rows = spark
                    .sql(&format!("SELECT * FROM {t}"))
                    .unwrap_or_else(|e| panic!("select {t}: {e:?}"))
                    .rows;
                assert_eq!(rows.len(), 1, "table {t} lost its row");
            }
        });

        let hive_ms = metastore.clone();
        let hive_fs = fs.clone();
        let hive_worker = scope.spawn(move || {
            let sink = DiagSink::new();
            let hive = HiveQl::new(hive_ms, hive_fs, sink.handle("minihive"));
            for i in 0..ROUNDS {
                let t = format!("hive_t{i}");
                hive.execute(&format!("CREATE TABLE {t} (c INT) STORED AS ORC"))
                    .unwrap_or_else(|e| panic!("create {t}: {e:?}"));
                hive.execute(&format!("INSERT INTO {t} VALUES ({i})"))
                    .unwrap_or_else(|e| panic!("insert {t}: {e:?}"));
                if i % 2 == 1 {
                    assert!(hive.execute("DROP TABLE missing_table").is_err());
                }
                let rows = hive
                    .execute(&format!("SELECT * FROM {t}"))
                    .unwrap_or_else(|e| panic!("select {t}: {e:?}"))
                    .rows;
                assert_eq!(rows.len(), 1, "table {t} lost its row");
            }
        });

        spark_worker.join().expect("spark worker panicked");
        hive_worker.join().expect("hive worker panicked");
    });

    // No lost tables: every table either engine created is still listed.
    let ms = metastore.lock();
    let mut tables: Vec<String> = ms
        .list_tables("default")
        .expect("default db exists")
        .into_iter()
        .map(str::to_string)
        .collect();
    tables.sort();
    assert_eq!(tables.len(), 2 * ROUNDS, "lost tables: {tables:?}");
    for i in 0..ROUNDS {
        assert!(tables.contains(&format!("spark_t{i}")));
        assert!(tables.contains(&format!("hive_t{i}")));
    }
    drop(ms);

    // Locks are still serviceable after the stress (parking_lot never
    // poisons; a wedged lock would hang here instead).
    assert!(metastore.try_lock().is_some(), "metastore lock wedged");
    assert!(fs.try_lock().is_some(), "filesystem lock wedged");
}

#[test]
fn cross_engine_tables_are_visible_to_the_other_deployment() {
    let metastore = Arc::new(Mutex::new(Metastore::new()));
    let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));
    let sink = DiagSink::new();
    let spark = SparkSession::connect(metastore.clone(), fs.clone(), sink.handle("minispark"));
    let hive = HiveQl::new(metastore.clone(), fs.clone(), sink.handle("minihive"));

    spark
        .sql("CREATE TABLE shared_t (c INT) STORED AS ORC")
        .expect("spark create");
    hive.execute("INSERT INTO shared_t VALUES (1)")
        .expect("hive insert into spark table");
    let rows = spark
        .sql("SELECT * FROM shared_t")
        .expect("spark read")
        .rows;
    assert_eq!(rows.len(), 1);
    hive.execute("DROP TABLE shared_t").expect("hive drop");
    assert!(spark.sql("SELECT * FROM shared_t").is_err());
}
