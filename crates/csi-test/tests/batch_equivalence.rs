//! Row-path vs columnar-path equivalence.
//!
//! The columnar data plane replaced the row-at-a-time serializers behind
//! the engines' `write_file`/`read_file` adapters. These tests pin the
//! contract that made that swap safe:
//!
//! - written **bytes** are identical between the retained row serializers
//!   (`write_file_rows`) and the columnar adapters (`write_file`), for
//!   every catalogue input, both engines, all three formats;
//! - **reads** decode to the same rows (or the same error) either way;
//! - [`ValueColumn`] round-trips every `Value` shape losslessly, so the
//!   row adapters and the differential oracle's fingerprints never see a
//!   transposition artifact.

use csi_core::column::ValueColumn;
use csi_core::diag::DiagSink;
use csi_core::value::{DataType, Decimal, Value};
use csi_test::generator::{bulk_schema, generate_bulk_columns, generate_inputs};
use minihive::metastore::{ColumnDef, StorageFormat};
use minihive::HiveType;
use minispark::SparkConfig;
use proptest::prelude::*;

fn formats() -> [StorageFormat; 3] {
    StorageFormat::ALL
}

/// Spark: for every catalogue input and format, the columnar adapter and
/// the retained row serializer must emit identical bytes (or identical
/// errors), and the two read paths must agree on the decoded rows.
#[test]
fn spark_serde_rows_and_columns_agree_on_catalogue() {
    let config = SparkConfig::default();
    for input in generate_inputs() {
        let schema = vec![csi_core::value::StructField::new(
            "c",
            input.column_type.clone(),
        )];
        let rows = vec![vec![input.value.clone()]];
        for format in formats() {
            let fname = format.name();
            let via_rows = minispark::serde_layer::write_file_rows(format, &schema, &rows, &config);
            let via_cols = minispark::serde_layer::write_file(format, &schema, &rows, &config);
            match (&via_rows, &via_cols) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "write bytes diverge for input {} ({}) via {}",
                    input.id, input.label, fname
                ),
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "write errors diverge for input {} via {fname}",
                    input.id
                ),
                _ => panic!(
                    "write outcome diverges for input {} via {fname}: rows={via_rows:?} cols={via_cols:?}",
                    input.id
                ),
            }
            if let Ok(bytes) = via_cols {
                let read_rows =
                    minispark::serde_layer::read_file_rows(format, &schema, &bytes, &config);
                let read_cols = minispark::serde_layer::read_file(format, &schema, &bytes, &config);
                match (read_rows, read_cols) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "reads diverge for input {} via {fname}",
                        input.id
                    ),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!(
                        "read outcome diverges for input {} via {fname}: rows={a:?} cols={b:?}",
                        input.id
                    ),
                }
            }
        }
    }
}

/// Hive: same contract, including the lenient-coercion diagnostics the
/// Hive serde emits while writing.
#[test]
fn hive_serde_rows_and_columns_agree_on_catalogue() {
    let sink = DiagSink::new();
    let diag = sink.handle("minihive");
    for input in generate_inputs() {
        let Ok(hive_type) = HiveType::from_data_type(&input.column_type) else {
            continue; // e.g. INTERVAL columns don't exist in Hive DDL
        };
        let columns = vec![ColumnDef {
            name: "c".into(),
            hive_type,
        }];
        // The engines only hand the serde values that already passed
        // `coerce`; replay that here so both serializers see valid input.
        let coerced = match minihive::value::coerce(&input.value, &columns[0].hive_type, &diag) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let rows = vec![vec![coerced]];
        for format in formats() {
            let fname = format.name();
            sink.drain();
            let via_rows = minihive::serde_layer::write_file_rows(format, &columns, &rows, &diag);
            let row_diags = sink.drain();
            let via_cols = minihive::serde_layer::write_file(format, &columns, &rows, &diag);
            let col_diags = sink.drain();
            assert_eq!(
                format!("{row_diags:?}"),
                format!("{col_diags:?}"),
                "write diagnostics diverge for input {} via {fname}",
                input.id
            );
            match (&via_rows, &via_cols) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "write bytes diverge for input {} ({}) via {}",
                    input.id, input.label, fname
                ),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                _ => panic!(
                    "write outcome diverges for input {} via {fname}: rows={via_rows:?} cols={via_cols:?}",
                    input.id
                ),
            }
            if let Ok(bytes) = via_cols {
                sink.drain();
                let read_rows =
                    minihive::serde_layer::read_file_rows(format, &columns, &bytes, &diag);
                sink.drain();
                let read_cols = minihive::serde_layer::read_file(format, &columns, &bytes, &diag);
                sink.drain();
                match (read_rows, read_cols) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "reads diverge for input {} via {fname}",
                        input.id
                    ),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!(
                        "read outcome diverges for input {} via {fname}: rows={a:?} cols={b:?}",
                        input.id
                    ),
                }
            }
        }
    }
}

/// The bulk generator's wide table survives the columnar serde stack
/// byte-faithfully in every format: write columns, read columns, compare
/// canonically against the originals.
#[test]
fn bulk_columns_round_trip_through_every_format() {
    let schema = bulk_schema();
    let cols = generate_bulk_columns(512, 7);
    let config = SparkConfig::default();
    for format in formats() {
        let fname = format.name();
        let bytes = minispark::serde_layer::write_columns(format, &schema, &cols, &config)
            .expect("bulk write");
        let back = minispark::serde_layer::read_columns(format, &schema, &bytes, &config)
            .expect("bulk read");
        for ((field, exp), act) in schema.iter().zip(&cols).zip(&back) {
            assert!(
                exp.canonical_eq(act),
                "column {} diverged via {fname}",
                field.name
            );
            assert_eq!(exp.fingerprint(), act.fingerprint());
        }
    }
}

fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u8>().prop_map(|_| Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        any::<i8>().prop_map(Value::Byte),
        any::<i16>().prop_map(Value::Short),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
        // Decimal edges: max precision, zero, negative, trailing zeros.
        (any::<i64>(), 0u8..=18).prop_map(|(u, s)| {
            Value::Decimal(Decimal::new(u as i128, 38, s).expect("within bounds"))
        }),
        "\\PC{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Binary),
        (-719_162i32..=2_932_896).prop_map(Value::Date),
        any::<i64>().prop_map(Value::Timestamp),
        (any::<i32>(), any::<i64>())
            .prop_map(|(months, micros)| Value::Interval { months, micros }),
    ]
}

fn lane_type(v: &Value) -> DataType {
    v.natural_type().unwrap_or(DataType::String)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transposing rows into a [`ValueColumn`] and back is lossless for
    /// every cell shape — homogeneous columns stay in their typed lane,
    /// mixed ones demote, and both round-trip canonically.
    #[test]
    fn value_column_round_trips_any_cells(cells in proptest::collection::vec(arb_cell(), 0..40)) {
        let ty = cells
            .iter()
            .find(|v| !v.is_null())
            .map(lane_type)
            .unwrap_or(DataType::String);
        let col = ValueColumn::from_values(&ty, &cells);
        let back = col.to_values();
        prop_assert_eq!(cells.len(), back.len());
        for (a, b) in cells.iter().zip(&back) {
            prop_assert!(
                a.canonical_eq(b),
                "cell diverged: {:?} vs {:?}", a, b
            );
        }
        // A fresh transposition of the same data fingerprints identically.
        let again = ValueColumn::from_values(&ty, &back);
        prop_assert_eq!(col.fingerprint(), again.fingerprint());
        prop_assert!(col.canonical_eq(&again));
    }

    /// Typed single-type columns (the bulk fast path) round-trip through
    /// the full Spark columnar serde in every format.
    #[test]
    fn typed_columns_round_trip_spark_serde(
        cells in proptest::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(|_| Value::Null),
                any::<i64>().prop_map(Value::Long),
            ],
            1..64,
        ),
    ) {
        let schema = vec![csi_core::value::StructField::new("c", DataType::Long)];
        let col = ValueColumn::from_values(&DataType::Long, &cells);
        let config = SparkConfig::default();
        for format in formats() {
            let fname = format.name();
            let bytes = minispark::serde_layer::write_columns(format, &schema, std::slice::from_ref(&col), &config)
                .expect("write");
            let back = minispark::serde_layer::read_columns(format, &schema, &bytes, &config)
                .expect("read");
            prop_assert!(col.canonical_eq(&back[0]), "diverged via {fname}");
        }
    }
}
