//! Golden-file check for the standard campaign.
//!
//! The rendered `DiscrepancyReport` of the full 422-input catalogue is
//! committed at `tests/golden/standard_campaign_report.txt`; any change to
//! the generator, the executors, the oracles, or the classifier that
//! shifts the report shows up here as a line-level diff. Refresh the
//! snapshot deliberately with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report
//! ```

use csi_test::{generate_inputs, Campaign};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/standard_campaign_report.txt")
}

/// The exact command that refreshes the snapshot, printed verbatim on any
/// drift so the fix is a copy-paste away.
const REFRESH: &str = "UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report";

/// Minimal unified diff (LCS-based) between the committed golden file and
/// the freshly rendered report. Small inputs (a few hundred lines), so the
/// quadratic table is fine.
fn unified_diff(expected: &str, actual: &str) -> String {
    let a: Vec<&str> = expected.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = String::from("--- golden (committed)\n+++ rendered (current)\n");
    let (mut i, mut j) = (0, 0);
    while i < n || j < m {
        if i < n && j < m && a[i] == b[j] {
            out.push_str(&format!("  {}\n", a[i]));
            i += 1;
            j += 1;
        } else if j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j]) {
            out.push_str(&format!("+ {}\n", b[j]));
            j += 1;
        } else {
            out.push_str(&format!("- {}\n", a[i]));
            i += 1;
        }
    }
    out
}

#[test]
fn standard_campaign_report_matches_the_committed_golden_file() {
    let inputs = generate_inputs();
    let campaign = Campaign::new(&inputs)
        .shards(4)
        .chunk_size(32)
        .detect(true)
        .run();
    let rendered = campaign.render();
    let path = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("rewriting the golden file");
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n(generate it with {REFRESH})",
            path.display()
        )
    });
    if rendered == expected {
        return;
    }
    panic!(
        "campaign report diverges from {} ({} lines expected, {} rendered)\n\n{}\n\
         If the change is intentional, refresh the snapshot with:\n    {REFRESH}",
        path.display(),
        expected.lines().count(),
        rendered.lines().count(),
        unified_diff(&expected, &rendered)
    );
}
