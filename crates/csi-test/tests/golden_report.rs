//! Golden-file check for the standard campaign.
//!
//! The rendered `DiscrepancyReport` of the full 422-input catalogue is
//! committed at `tests/golden/standard_campaign_report.txt`; any change to
//! the generator, the executors, the oracles, or the classifier that
//! shifts the report shows up here as a line-level diff. Refresh the
//! snapshot deliberately with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report
//! ```

use csi_test::{generate_inputs, Campaign};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/standard_campaign_report.txt")
}

#[test]
fn standard_campaign_report_matches_the_committed_golden_file() {
    let inputs = generate_inputs();
    let campaign = Campaign::new(&inputs)
        .shards(4)
        .chunk_size(32)
        .detect(true)
        .run();
    let rendered = campaign.render();
    let path = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("rewriting the golden file");
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             (generate it with UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report)",
            path.display()
        )
    });
    if rendered == expected {
        return;
    }
    for (i, (want, got)) in expected.lines().zip(rendered.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "campaign report diverges from {} at line {}\n\
             (refresh deliberately with UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report)",
            path.display(),
            i + 1
        );
    }
    panic!(
        "campaign report diverges from {}: expected {} lines, got {}\n\
         (refresh deliberately with UPDATE_GOLDEN=1 cargo test -p csi-test --test golden_report)",
        path.display(),
        expected.lines().count(),
        rendered.lines().count()
    );
}
