//! Exploration-mode invariants: determinism across runs and worker
//! counts, shrunk reproducers preserving their discrepancy class, exact
//! zero-budget degradation, and the headline acceptance property — the
//! coverage-guided mode rediscovers every discrepancy class the exhaustive
//! catalogue reports, in fewer executed observations.

use csi_test::{generate_inputs, reproducer_triggers, Campaign, CampaignOutcome};
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

/// Everything explore-mode output that must be stable: the classified
/// report, the exploration stats (corpus, discoveries, shrinks included),
/// and the rendered text.
fn fingerprint(outcome: &CampaignOutcome) -> (String, String, String) {
    (
        json(&outcome.report),
        json(&outcome.exploration),
        outcome.render(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// (a) A fixed seed produces an identical corpus and report across
    /// repeated runs and across worker counts.
    #[test]
    fn fixed_seed_is_identical_across_runs_and_workers(
        start in 0usize..400,
        seed in any::<u64>(),
        workers in 2usize..5,
    ) {
        let inputs = generate_inputs();
        let slice = &inputs[start..(start + 12).min(inputs.len())];
        let run = |shards: usize| {
            Campaign::new(slice).seed(seed).explore(96).shards(shards).run()
        };
        let serial = run(1);
        let again = run(1);
        let sharded = run(workers);
        prop_assert_eq!(fingerprint(&serial), fingerprint(&again));
        prop_assert_eq!(fingerprint(&serial), fingerprint(&sharded));
    }

    /// (c) A zero-budget explore degrades to the standard exhaustive
    /// catalogue exactly — same report, same rendering.
    #[test]
    fn zero_budget_explore_is_exactly_the_standard_catalogue(
        start in 0usize..410,
        seed in any::<u64>(),
    ) {
        let inputs = generate_inputs();
        let slice = &inputs[start..(start + 8).min(inputs.len())];
        let explored = Campaign::new(slice).seed(seed).explore(0).run();
        let standard = Campaign::new(slice).run();
        prop_assert_eq!(json(&explored.report), json(&standard.report));
        prop_assert_eq!(explored.render(), standard.render());
        prop_assert!(explored.exploration.is_none());
        prop_assert!(explored.reproducers.is_empty());
    }
}

/// (b) Every shrunk reproducer still triggers the same discrepancy class
/// as its parent, at 1 row × 1 column.
#[test]
fn shrunk_reproducers_preserve_their_discrepancy_class() {
    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs[..40]).seed(42).explore(600).run();
    let stats = outcome.exploration.as_ref().expect("explore mode");
    assert!(
        !outcome.reproducers.is_empty(),
        "no discrepancy was shrunk at this budget"
    );
    assert_eq!(stats.shrinks.len(), outcome.reproducers.len());
    for (row, shrunk) in stats.shrinks.iter().zip(&outcome.reproducers) {
        assert_eq!(row.id, shrunk.id);
        assert_eq!((row.rows, row.columns), (1, 1), "{} is not minimal", row.id);
        assert!(
            reproducer_triggers(&shrunk.id, &shrunk.reproducer),
            "shrunk reproducer for {} no longer triggers it",
            shrunk.id
        );
    }
}

/// The acceptance property: with the full catalogue and a budget well
/// under the exhaustive grid, explore rediscovers every class the
/// exhaustive catalogue reports (all 15), sharded byte-identical to
/// serial. The executions-to-first-discovery numbers behind
/// EXPERIMENTS.md come from the `explore` bench binary.
#[test]
fn explore_rediscovers_all_classes_in_fewer_observations() {
    let inputs = generate_inputs();
    let budget = 4000;
    let serial = Campaign::new(&inputs).seed(42).explore(budget).run();
    let sharded = Campaign::new(&inputs)
        .seed(42)
        .explore(budget)
        .shards(4)
        .run();
    assert_eq!(fingerprint(&serial), fingerprint(&sharded));

    let stats = serial.exploration.as_ref().expect("explore mode");
    let exhaustive_grid = 422 * 24;
    assert!(stats.executed <= budget && budget < exhaustive_grid);
    let explored_ids: Vec<&str> = serial
        .report
        .discrepancies
        .iter()
        .map(|d| d.id.as_str())
        .collect();
    assert_eq!(
        explored_ids.len(),
        15,
        "explore missed classes, found {explored_ids:?}"
    );
    // Every class was tracked to a first-discovery point within budget.
    assert_eq!(stats.discoveries.len(), 15);
    for d in &stats.discoveries {
        assert!(d.executed <= stats.executed);
    }
    // Mutation earned its keep: novel signatures beyond the seed grid.
    assert!(stats.novel_from_mutation >= 1);
}
