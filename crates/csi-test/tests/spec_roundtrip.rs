//! The wire-format contract of [`CampaignSpec`]: a spec that travels
//! through JSON and back runs byte-identically to the in-process builder
//! campaign it was extracted from.
//!
//! This is the property the `csi-serve` daemon leans on — a tenant's
//! serialized request must produce exactly the report the same campaign
//! would produce in-process — pinned here at the csi-test layer so a
//! violation is attributed to spec extraction, not to the server.

use csi_test::{Campaign, CampaignOutcome, CampaignSpec, InputSelection, SpecError};
use minihive::metastore::StorageFormat;
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

/// Full-outcome fingerprint: report plus every observation.
fn fingerprint(outcome: &CampaignOutcome) -> String {
    let mut s = json(&outcome.report);
    for (experiment, obs) in &outcome.observations {
        s.push_str(experiment.short());
        s.push_str(&json(obs));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// serialize → deserialize → validate → run ≡ the builder campaign,
    /// across input prefixes, worker counts, seeds, and detection.
    #[test]
    fn revived_spec_runs_byte_identically(
        prefix in 1usize..5,
        shards in 1usize..4,
        seed in any::<u64>(),
        detect in any::<bool>(),
    ) {
        let spec = CampaignSpec {
            inputs: InputSelection::CataloguePrefix(prefix),
            formats: vec![StorageFormat::Orc, StorageFormat::Parquet],
            shards,
            chunk_size: 2,
            seed,
            detect,
            ..CampaignSpec::default()
        };
        let wire = json(&spec);
        let revived: CampaignSpec = serde_json::from_str(&wire).expect("wire spec parses");
        prop_assert_eq!(&revived, &spec);
        let from_wire = Campaign::from_spec(revived).expect("valid spec").run();
        let in_process = Campaign::from_spec(spec).expect("valid spec").run();
        prop_assert_eq!(fingerprint(&from_wire), fingerprint(&in_process));
    }
}

#[test]
fn builder_spec_extraction_round_trips_through_the_wire() {
    let inputs = csi_test::generate_inputs();
    let campaign = Campaign::new(&inputs[..3])
        .shards(2)
        .chunk_size(1)
        .detect(true);
    let spec = campaign.spec().clone();
    let revived: CampaignSpec =
        serde_json::from_str(&json(&spec)).expect("builder spec survives the wire");
    assert_eq!(revived, spec);
    let a = campaign.run();
    let b = Campaign::from_spec(revived).expect("valid spec").run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn corpus_specs_round_trip_and_bad_shapes_reject_typed() {
    // The corpus selection travels by (shape, seed) — a few hundred
    // bytes — and revives to the identical selection.
    let spec = CampaignSpec {
        inputs: InputSelection::Corpus {
            shape: csi_test::CorpusShape::wide(),
            seed: 11,
        },
        ..CampaignSpec::default()
    };
    let revived: CampaignSpec =
        serde_json::from_str(&json(&spec)).expect("corpus spec survives the wire");
    assert_eq!(revived, spec);
    assert_eq!(revived.inputs.resolve().len(), spec.inputs.resolve().len());

    // An unsynthesizable shape is a typed rejection, not a worker panic.
    let bad = CampaignSpec {
        inputs: InputSelection::Corpus {
            shape: csi_test::CorpusShape {
                decimal_precisions: vec![(40, 2)],
                ..csi_test::CorpusShape::default()
            },
            seed: 1,
        },
        ..CampaignSpec::default()
    };
    let err = Campaign::from_spec(bad).expect_err("invalid corpus shape");
    assert!(matches!(err, SpecError::BadCorpusShape { .. }), "{err:?}");
    let back: SpecError = serde_json::from_str(&json(&err)).expect("error round-trips");
    assert_eq!(back, err);
}

#[test]
fn wire_rejections_carry_typed_reasons() {
    // A daemon receiving these specs must answer with a reason, not die.
    let bad = CampaignSpec {
        shards: csi_test::MAX_SHARDS + 1,
        ..CampaignSpec::default()
    };
    let err = Campaign::from_spec(bad).expect_err("invalid spec");
    assert_eq!(
        err,
        SpecError::BadShards {
            shards: csi_test::MAX_SHARDS + 1,
            max: csi_test::MAX_SHARDS,
        }
    );
    // The error itself serializes, so it can ride a Rejected frame.
    let wire = json(&err);
    let back: SpecError = serde_json::from_str(&wire).expect("error round-trips");
    assert_eq!(back, err);
}
