//! Serial/parallel determinism: the sharded campaign must produce a
//! byte-identical `DiscrepancyReport` — same observations, same failure
//! ordering, same classification — as the serial campaign on the full
//! 422-input catalogue.
//!
//! Comparisons go through the serialized form: `Value` floats follow IEEE
//! `NaN != NaN` semantics under `PartialEq`, so direct struct equality
//! would reject even two identical serial runs of the NaN inputs. The JSON
//! rendering is canonical (NaN serializes as the string `"NaN"`), making
//! "byte-identical" literal.

use csi_test::{generate_inputs, Campaign};

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

#[test]
fn full_catalogue_parallel_report_is_identical_to_serial() {
    let inputs = generate_inputs();
    let serial = Campaign::new(&inputs).run();
    let parallel = Campaign::new(&inputs).shards(4).chunk_size(32).run();

    assert_eq!(
        serial.observations.len(),
        parallel.observations.len(),
        "observation counts diverge"
    );
    for (i, (s, p)) in serial
        .observations
        .iter()
        .zip(&parallel.observations)
        .enumerate()
    {
        assert_eq!(s.0, p.0, "experiment tag diverges at observation {i}");
        assert_eq!(json(&s.1), json(&p.1), "observation {i} diverges");
    }
    assert_eq!(
        json(&serial.report),
        json(&parallel.report),
        "discrepancy reports diverge"
    );
    assert_eq!(parallel.report.distinct(), 15);
    let metrics = parallel.metrics.expect("sharded campaigns carry metrics");
    assert_eq!(metrics.observations, parallel.observations.len());
}

#[test]
fn full_catalogue_recycling_preserves_the_report() {
    let inputs = generate_inputs();
    let baseline = Campaign::new(&inputs).run();
    let serial_recycled = Campaign::new(&inputs).recycle_tables(true).run();
    assert_eq!(json(&serial_recycled.report), json(&baseline.report));
    let parallel_recycled = Campaign::new(&inputs)
        .recycle_tables(true)
        .shards(3)
        .chunk_size(50)
        .run();
    assert_eq!(json(&parallel_recycled.report), json(&baseline.report));
    assert_eq!(
        parallel_recycled.observations.len(),
        baseline.observations.len()
    );
    for ((se, so), (pe, po)) in baseline
        .observations
        .iter()
        .zip(&parallel_recycled.observations)
    {
        assert_eq!(se, pe);
        assert_eq!(json(so), json(po));
    }
}
