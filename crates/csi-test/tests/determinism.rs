//! Serial/parallel determinism: the parallel campaign executor must
//! produce a byte-identical `DiscrepancyReport` — same observations, same
//! failure ordering, same classification — as the serial executor on the
//! full 422-input catalogue.
//!
//! Comparisons go through the serialized form: `Value` floats follow IEEE
//! `NaN != NaN` semantics under `PartialEq`, so direct struct equality
//! would reject even two identical serial runs of the NaN inputs. The JSON
//! rendering is canonical (NaN serializes as the string `"NaN"`), making
//! "byte-identical" literal.

// These suites deliberately exercise the legacy entrypoints the Campaign
// builder wraps, proving the wrappers and the builder agree.
#![allow(deprecated)]

use csi_test::{
    generate_inputs, run_cross_test, run_cross_test_parallel, CrossTestConfig, ParallelConfig,
};

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

#[test]
fn full_catalogue_parallel_report_is_identical_to_serial() {
    let inputs = generate_inputs();
    let config = CrossTestConfig::default();
    let serial = run_cross_test(&inputs, &config);
    let parallel = run_cross_test_parallel(
        &inputs,
        &config,
        &ParallelConfig {
            workers: 4,
            chunk_size: 32,
        },
    );

    assert_eq!(
        serial.observations.len(),
        parallel.outcome.observations.len(),
        "observation counts diverge"
    );
    for (i, (s, p)) in serial
        .observations
        .iter()
        .zip(&parallel.outcome.observations)
        .enumerate()
    {
        assert_eq!(s.0, p.0, "experiment tag diverges at observation {i}");
        assert_eq!(json(&s.1), json(&p.1), "observation {i} diverges");
    }
    assert_eq!(
        json(&serial.report),
        json(&parallel.outcome.report),
        "discrepancy reports diverge"
    );
    assert_eq!(parallel.outcome.report.distinct(), 15);
    assert_eq!(
        parallel.metrics.observations,
        parallel.outcome.observations.len()
    );
}

#[test]
fn full_catalogue_recycling_preserves_the_report() {
    let inputs = generate_inputs();
    let baseline = run_cross_test(&inputs, &CrossTestConfig::default());
    let recycled_config = CrossTestConfig {
        recycle_tables: true,
        ..CrossTestConfig::default()
    };
    let serial_recycled = run_cross_test(&inputs, &recycled_config);
    assert_eq!(json(&serial_recycled.report), json(&baseline.report));
    let parallel_recycled = run_cross_test_parallel(
        &inputs,
        &recycled_config,
        &ParallelConfig {
            workers: 3,
            chunk_size: 50,
        },
    );
    assert_eq!(
        json(&parallel_recycled.outcome.report),
        json(&baseline.report)
    );
    assert_eq!(
        parallel_recycled.outcome.observations.len(),
        baseline.observations.len()
    );
    for ((se, so), (pe, po)) in baseline
        .observations
        .iter()
        .zip(&parallel_recycled.outcome.observations)
    {
        assert_eq!(se, pe);
        assert_eq!(json(so), json(po));
    }
}
