//! Observational identity of the interned/sharded substrates.
//!
//! The production-scale storage refactor (interned-name inode arena in
//! minihdfs, flat sharded partition map and hashed group index in
//! minikafka, slab-allocated containers in miniyarn) promised one thing:
//! nothing observable changes. These tests pin that promise from three
//! directions:
//!
//! - property tests drive random operation sequences against two
//!   instances whose *internal layout histories* differ (one vacuums its
//!   interner mid-stream, one doesn't) and against independent models of
//!   the observable semantics — every result must match;
//! - the compound fault campaign (`kfaults(2).jobs(3)`) must stay
//!   byte-identical between the serial and sharded executors, the
//!   end-to-end check that no substrate leaked hash-map iteration order
//!   or interner state into a report.

use minihdfs::{HdfsPath, MiniHdfs};
use minikafka::{GroupCoordinator, MiniKafka, PartitionId};
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

// ---------------------------------------------------------------------------
// minihdfs: layout history must be unobservable.
// ---------------------------------------------------------------------------

/// A random namespace operation over a small path alphabet (so sequences
/// collide constantly: re-creates, deletes of parents, renames onto
/// existing paths — every error arm gets exercised).
#[derive(Debug, Clone)]
enum FsOp {
    Mkdirs(String),
    Create(String, u8),
    Append(String, u8),
    Delete(String, bool),
    Rename(String, String),
    List(String),
    Read(String),
    Vacuumable,
}

fn path_strategy() -> impl Strategy<Value = String> {
    // Depth ≤ 3 over 4 names: tiny alphabet, maximal collision pressure.
    proptest::collection::vec(
        proptest::sample::select(vec!["a", "b", "dir", "part-0"]),
        1..4,
    )
    .prop_map(|comps| format!("/{}", comps.join("/")))
}

fn fs_op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        path_strategy().prop_map(FsOp::Mkdirs),
        (path_strategy(), any::<u8>()).prop_map(|(p, b)| FsOp::Create(p, b)),
        (path_strategy(), any::<u8>()).prop_map(|(p, b)| FsOp::Append(p, b)),
        (path_strategy(), any::<bool>()).prop_map(|(p, r)| FsOp::Delete(p, r)),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| FsOp::Rename(a, b)),
        path_strategy().prop_map(FsOp::List),
        path_strategy().prop_map(FsOp::Read),
        proptest::sample::select(vec![FsOp::Vacuumable]),
    ]
}

/// Applies one op and renders everything observable about its result.
fn apply_fs(fs: &mut MiniHdfs, op: &FsOp) -> String {
    let parse = |raw: &str| HdfsPath::parse(raw).expect("valid test path");
    match op {
        FsOp::Mkdirs(p) => format!("{:?}", fs.mkdirs(&parse(p))),
        FsOp::Create(p, b) => format!("{:?}", fs.create(&parse(p), &[*b; 3])),
        FsOp::Append(p, b) => format!("{:?}", fs.append(&parse(p), &[*b; 2])),
        FsOp::Delete(p, recursive) => format!("{:?}", fs.delete(&parse(p), *recursive)),
        FsOp::Rename(a, b) => format!("{:?}", fs.rename(&parse(a), &parse(b))),
        FsOp::List(p) => format!("{:?}", fs.list_status(&parse(p))),
        FsOp::Read(p) => format!("{:?}", fs.read(&parse(p))),
        FsOp::Vacuumable => String::new(),
    }
}

/// Recursively renders the full observable namespace.
fn namespace_snapshot(fs: &MiniHdfs, path: &HdfsPath, out: &mut String) {
    out.push_str(&format!("{:?}\n", fs.get_file_status(path)));
    if let Ok(listing) = fs.list_status(path) {
        for status in &listing {
            namespace_snapshot(fs, &status.path, out);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two filesystems run the same op sequence; one vacuums (canonical
    /// interner/arena rebuild) at every marker. Every per-op result and
    /// the final recursive namespace snapshot must be identical — the
    /// internal layout history is unobservable.
    #[test]
    fn hdfs_vacuum_history_is_unobservable(
        ops in proptest::collection::vec(fs_op_strategy(), 1..40)
    ) {
        let mut plain = MiniHdfs::with_datanodes(3);
        let mut vacuumed = MiniHdfs::with_datanodes(3);
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, FsOp::Vacuumable) {
                vacuumed.vacuum();
                continue;
            }
            let a = apply_fs(&mut plain, op);
            let b = apply_fs(&mut vacuumed, op);
            prop_assert_eq!(a, b, "op {} diverged: {:?}", i, op);
        }
        vacuumed.vacuum();
        let (mut sa, mut sb) = (String::new(), String::new());
        namespace_snapshot(&plain, &HdfsPath::root(), &mut sa);
        namespace_snapshot(&vacuumed, &HdfsPath::root(), &mut sb);
        prop_assert_eq!(sa, sb, "final namespace diverged");
        // The vacuumed interner never holds more names than the live
        // namespace needs; the plain one may hold garbage.
        prop_assert!(vacuumed.interned_names() <= plain.interned_names());
    }
}

// ---------------------------------------------------------------------------
// minikafka: compaction and membership against independent models.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The borrowed-key compaction pass agrees with the obvious model:
    /// keep the last occurrence of each key plus every keyless record.
    #[test]
    fn kafka_compaction_matches_last_write_wins_model(
        records in proptest::collection::vec(
            // `0..6` keys a record; `6` makes it keyless.
            (0u8..7, any::<u8>()),
            1..60,
        )
    ) {
        let keyless = 6u8;
        let mut k = MiniKafka::new();
        k.create_topic("t", 1);
        for &(key, val) in &records {
            let key_bytes = [key];
            k.produce(
                "t",
                PartitionId(0),
                (key != keyless).then_some(key_bytes.as_slice()),
                Some(&[val]),
                1,
            ).expect("produce");
        }
        k.compact("t", PartitionId(0)).expect("compact");

        // Model: offsets whose record survives last-write-wins.
        let mut survivors: Vec<(i64, Option<u8>, u8)> = Vec::new();
        for (offset, &(key, val)) in records.iter().enumerate() {
            if key == keyless {
                survivors.push((offset as i64, None, val));
            } else {
                let last = records
                    .iter()
                    .rposition(|&(k2, _)| k2 == key)
                    .expect("key occurs");
                if last == offset {
                    survivors.push((offset as i64, Some(key), val));
                }
            }
        }
        let fetched = k.fetch("t", PartitionId(0), 0, usize::MAX).expect("fetch");
        let got: Vec<(i64, Option<u8>, u8)> = fetched
            .records
            .iter()
            .map(|r| {
                (
                    r.offset,
                    r.key.as_ref().map(|k| k[0]),
                    r.value.as_ref().expect("value present")[0],
                )
            })
            .collect();
        prop_assert_eq!(got, survivors);
    }

    /// The hashed membership index agrees with the obvious model: members
    /// form a sorted set, partitions distribute round-robin over it.
    #[test]
    fn group_membership_matches_sorted_round_robin_model(
        events in proptest::collection::vec(
            (
                any::<bool>(),
                proptest::sample::select(vec!["m0", "m1", "m2", "m3", "m4"]),
            ),
            1..40,
        )
    ) {
        const PARTITIONS: u32 = 7;
        let mut k = MiniKafka::new();
        k.create_topic("t", PARTITIONS);
        let mut gc = GroupCoordinator::new();
        let mut model: Vec<&str> = Vec::new();
        for &(join, member) in &events {
            if join {
                let got = gc.join(&k, "g", "t", member).expect("join");
                if let Err(pos) = model.binary_search(&member) {
                    model.insert(pos, member);
                }
                let slot = model.binary_search(&member).expect("just inserted");
                let expected: Vec<PartitionId> = (0..PARTITIONS)
                    .filter(|p| *p as usize % model.len() == slot)
                    .map(PartitionId)
                    .collect();
                prop_assert_eq!(got.partitions, expected, "member {}", member);
            } else {
                let _ = gc.leave(&k, "g", member);
                if let Ok(pos) = model.binary_search(&member) {
                    model.remove(pos);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End to end: the compound campaign through both executors.
// ---------------------------------------------------------------------------

/// `kfaults(2).jobs(3)`: the compound fault-set × interleaving pass plus
/// the cross campaign, serial vs sharded, must agree byte for byte. This
/// is the check that the substrate refactor leaked no iteration order —
/// the sharded executor recycles pooled deployments (vacuuming their
/// namenode interners), while the serial one builds fresh stacks.
#[test]
fn compound_campaign_kfaults2_jobs3_serial_matches_sharded() {
    // A catalogue slice keeps the doubled run affordable; the full-set
    // equivalence is covered (without kfaults) by the determinism suite.
    let inputs: Vec<_> = csi_test::generate_inputs().into_iter().step_by(7).collect();
    let run = |shards: usize| {
        let mut campaign = csi_test::Campaign::new(&inputs).kfaults(2).jobs(3);
        if shards > 1 {
            campaign = campaign.shards(shards).chunk_size(16);
        }
        campaign.run()
    };
    let serial = run(1);
    let sharded = run(3);
    assert_eq!(
        json(&serial.report),
        json(&sharded.report),
        "discrepancy reports diverge"
    );
    assert_eq!(
        serial.observations.len(),
        sharded.observations.len(),
        "observation counts diverge"
    );
    for (i, (s, p)) in serial
        .observations
        .iter()
        .zip(&sharded.observations)
        .enumerate()
    {
        assert_eq!(s.0, p.0, "experiment tag diverges at observation {i}");
        assert_eq!(json(&s.1), json(&p.1), "observation {i} diverges");
    }
    let s_compound = serial.compound.expect("kfaults ran");
    let p_compound = sharded.compound.expect("kfaults ran");
    assert_eq!(
        json(&s_compound),
        json(&p_compound),
        "compound stats diverge"
    );
    assert_eq!(
        json(&serial.clusters),
        json(&sharded.clusters),
        "co-failure clusters diverge"
    );
}
