//! The corpus subsystem's external contracts: schema-inference edge cases
//! (empty stream, BOM, malformed UTF-8, ragged rows, overflow fallback,
//! degenerate shapes), the render → infer → render fixed point, and the
//! corpus-seeded explore guarantee — a fixed-seed corpus campaign reaches
//! coverage the 422-input catalogue alone never does.

use csi_core::value::{DataType, Value};
use csi_test::corpus::{infer, synthesize, InferError};
use csi_test::{generate_inputs, Campaign, CorpusShape, InputSelection};

// ------------------------------------------------------------------
// Inference edge cases (the satellite checklist, one by one).

#[test]
fn empty_streams_are_a_typed_error() {
    assert_eq!(infer(b"").expect_err("empty"), InferError::Empty);
    assert_eq!(infer(b"   \n\n  \n").expect_err("blank"), InferError::Empty);
    // A BOM alone is still an empty stream.
    assert_eq!(
        infer(b"\xef\xbb\xbf").expect_err("bom only"),
        InferError::Empty
    );
}

#[test]
fn utf8_bom_is_stripped_before_the_header() {
    let t = infer(b"\xef\xbb\xbfa,b\n1,2\n").expect("infers");
    assert_eq!(t.columns[0].name, "a", "BOM leaked into the header name");
    assert_eq!(t.columns[0].data_type, DataType::Int);
}

#[test]
fn malformed_utf8_degrades_to_replacement_string_data() {
    // 0xFF is not valid UTF-8 anywhere; the cell must survive as lossy
    // string data rather than failing the stream.
    let t = infer(b"a\n\xffbad\n7\n").expect("infers");
    assert_eq!(t.columns[0].data_type, DataType::String);
    match &t.columns[0].cells[0] {
        Value::Str(s) => assert!(s.contains('\u{fffd}'), "lossy marker missing: {s:?}"),
        other => panic!("expected string cell, got {other:?}"),
    }
    // And the lossy table still round-trips as a fixed point.
    let once = t.render_csv();
    assert_eq!(infer(&once).expect("re-infers").render_csv(), once);
}

#[test]
fn ragged_rows_are_padded_with_nulls() {
    let t = infer(b"a,b,c\n1,2,3\n4\n5,6\n").expect("infers");
    assert_eq!(t.columns.len(), 3);
    assert_eq!(t.columns[1].cells[1], Value::Null);
    assert_eq!(t.columns[2].cells[1], Value::Null);
    assert_eq!(t.columns[2].cells[2], Value::Null);
    // Padding is type-neutral: the columns still vote integer.
    assert!(t.columns.iter().all(|c| c.data_type == DataType::Int));
    // A row *wider* than the header grows generated column names.
    let wide = infer(b"a\n1,2\n").expect("infers");
    assert_eq!(wide.columns.len(), 2);
    assert_eq!(wide.columns[1].name, "c1");
}

#[test]
fn numeric_overflow_falls_back_to_string() {
    // 19+ digits overflow i64; 39+ total digits overflow DECIMAL(38).
    let ints = infer(b"a\n99999999999999999999\n1\n").expect("infers");
    assert_eq!(ints.columns[0].data_type, DataType::String);
    assert_eq!(
        ints.columns[0].cells[0],
        Value::Str("99999999999999999999".into()),
        "overflowed cell must keep its original text"
    );
    let decs = infer(b"a\n1234567890123456789012345678901234.56789\n").expect("infers");
    assert_eq!(decs.columns[0].data_type, DataType::String);
}

#[test]
fn degenerate_single_column_single_row_shapes_infer() {
    let single = infer(b"only\n42\n").expect("one column, one row");
    assert_eq!(single.columns.len(), 1);
    assert_eq!(single.columns[0].data_type, DataType::Int);
    assert_eq!(single.columns[0].cells, vec![Value::Int(42)]);
    // Header-only: zero rows, but columns still exist (all-null string).
    let header_only = infer(b"a,b\n").expect("header only");
    assert_eq!(header_only.columns.len(), 2);
    assert!(header_only
        .columns
        .iter()
        .all(|c| c.data_type == DataType::String && c.cells.is_empty()));
    let once = header_only.render_csv();
    assert_eq!(infer(&once).expect("re-infers").render_csv(), once);
}

#[test]
fn quoted_cells_vote_string_and_escapes_round_trip() {
    let csv = b"s\n\"a,b\"\"q\"\" c\"\n\"42\"\n";
    let t = infer(csv).expect("infers");
    assert_eq!(t.columns[0].data_type, DataType::String);
    assert_eq!(t.columns[0].cells[0], Value::Str("a,b\"q\" c".into()));
    let once = t.render_csv();
    assert_eq!(infer(&once).expect("re-infers").render_csv(), once);
}

#[test]
fn inference_round_trip_is_byte_stable_across_shapes_and_seeds() {
    for seed in 0..6u64 {
        let shape = CorpusShape {
            columns: 6 + seed as usize,
            rows: 16,
            ..CorpusShape::default()
        };
        let bytes = synthesize(&shape, seed).render_csv();
        let once = infer(&bytes).expect("infers").render_csv();
        let twice = infer(&once).expect("re-infers").render_csv();
        assert_eq!(once, twice, "fixed point violated at seed {seed}");
    }
}

#[test]
fn json_lines_round_trip_through_the_canonical_csv() {
    let stream = "{\"id\": 1, \"tag\": \"caf\u{e9}\", \"score\": 3.25}\n\
                  {\"id\": 2, \"tag\": \"b\", \"score\": 4.50, \"late\": true}\n"
        .as_bytes();
    let t = infer(stream).expect("infers");
    assert_eq!(t.columns.len(), 4);
    assert_eq!(t.columns[2].data_type, DataType::Decimal(3, 2));
    assert_eq!(t.columns[3].data_type, DataType::Boolean);
    let once = t.render_csv();
    assert_eq!(infer(&once).expect("re-infers").render_csv(), once);
}

// ------------------------------------------------------------------
// Corpus-seeded exploration.

#[test]
fn corpus_seeded_explore_reaches_coverage_the_catalogue_never_does() {
    let budget = 160;
    let seed = 42;
    let catalogue = Campaign::new(&generate_inputs())
        .seed(seed)
        .explore(budget)
        .run();
    let corpus = Campaign::new(&[])
        .corpus(CorpusShape::default(), seed)
        .seed(seed)
        .explore(budget)
        .run();
    let base = catalogue.exploration.expect("explore mode");
    let stats = corpus.exploration.clone().expect("explore mode");
    // The acceptance criterion: >= 1 signature the catalogue-only run
    // never reaches, and it is attributed to the corpus origin.
    let corpus_only = stats
        .signatures_seen
        .iter()
        .filter(|fp| !base.signatures_seen.contains(fp))
        .count();
    assert!(corpus_only >= 1, "corpus contributed no new coverage");
    assert!(stats.novel_from_corpus >= 1, "{stats:?}");
    assert!(stats.corpus.iter().any(|r| r.origin == "corpus"));
    // The render names the corpus contribution.
    assert!(
        corpus.render().contains("novel from corpus"),
        "render lost the corpus line"
    );
}

#[test]
fn corpus_campaigns_are_deterministic_and_shard_identically() {
    let run = |shards: usize| {
        Campaign::new(&[])
            .corpus(CorpusShape::default(), 7)
            .seed(7)
            .explore(96)
            .shards(shards)
            .run()
    };
    let a = run(1);
    let b = run(1);
    let c = run(3);
    let fp = |o: &csi_test::CampaignOutcome| {
        (
            serde_json::to_string(&o.report).expect("serializable"),
            serde_json::to_string(&o.exploration).expect("serializable"),
            o.render(),
        )
    };
    assert_eq!(fp(&a), fp(&b), "same-seed corpus runs diverged");
    assert_eq!(fp(&a), fp(&c), "sharded corpus run diverged from serial");
}

#[test]
fn corpus_spec_travels_the_wire_and_runs_byte_identically() {
    let spec = csi_test::CampaignSpec {
        inputs: InputSelection::Corpus {
            shape: CorpusShape {
                columns: 6,
                rows: 12,
                ..CorpusShape::default()
            },
            seed: 9,
        },
        explore_budget: Some(48),
        formats: vec![minihive::metastore::StorageFormat::Orc],
        ..csi_test::CampaignSpec::default()
    };
    let wire = serde_json::to_string(&spec).expect("spec serializes");
    let revived: csi_test::CampaignSpec = serde_json::from_str(&wire).expect("spec parses");
    assert_eq!(revived, spec);
    let a = Campaign::from_spec(spec).expect("valid").run();
    let b = Campaign::from_spec(revived).expect("valid").run();
    assert_eq!(
        serde_json::to_string(&a.exploration).expect("serializable"),
        serde_json::to_string(&b.exploration).expect("serializable")
    );
    assert_eq!(a.render(), b.render());
}

#[test]
fn inferred_tables_feed_inline_campaigns() {
    // The inference front door produces inputs a campaign runs as-is.
    let t = infer(b"id,name,score\n1,\"a\",2.50\n2,\"b\",3.75\n").expect("infers");
    let inputs = t.inputs(0);
    let outcome = Campaign::new(&inputs)
        .formats(vec![minihive::metastore::StorageFormat::Orc])
        .run();
    assert!(
        !outcome.observations.is_empty(),
        "inferred inputs produced no observations"
    );
}
