//! Determinism, clustering, and shrinking properties of the compound
//! (k-fault × interleaving) campaign.
//!
//! The contract extends `tests/determinism.rs` to the compound dimension:
//! a fixed-seed k-fault explore run is byte-identical serial vs sharded
//! and across repeat runs; every clustered discrepancy's shrunk
//! reproducer still triggers a discrepancy in the same cluster; the
//! compound pass is strictly additive (`kfaults(0)` — the default —
//! reproduces the plain explore report exactly); and the k = 1 single-job
//! slice agrees with the fault matrix's probe cells.

use csi_core::fault::{fault_combinations, Channel, FaultSet};
use csi_test::multi::{
    default_jobs, run_compound, run_compound_trial, CompoundConfig, InterleaveSchedule,
    TURNS_PER_JOB,
};
use csi_test::{fault_catalogue, generate_inputs, Campaign, Experiment};
use minihive::metastore::StorageFormat;
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

/// The metastore/HDFS slice of the catalogue — the faults that can fire
/// inside a cross-testing deployment.
fn deployment_faults(seed: u64) -> Vec<csi_core::fault::FaultSpec> {
    fault_catalogue(seed)
        .faults
        .into_iter()
        .filter(|f| matches!(f.channel, Channel::Metastore | Channel::Hdfs))
        .collect()
}

#[test]
fn compound_campaign_is_identical_serial_vs_sharded_and_across_runs() {
    let run = |shards: usize| {
        let mut config = CompoundConfig::new(7, 3);
        config.shards = shards;
        run_compound(&config)
    };
    let serial = run(1);
    let again = run(1);
    let sharded = run(4);
    assert_eq!(json(&serial.stats), json(&again.stats));
    assert_eq!(json(&serial.clusters), json(&again.clusters));
    assert_eq!(json(&serial.stats), json(&sharded.stats));
    assert_eq!(json(&serial.clusters), json(&sharded.clusters));
    assert_eq!(
        json(&serial.discrepancies.len()),
        json(&sharded.discrepancies.len())
    );
}

#[test]
fn at_least_one_multi_fault_cross_job_cluster_is_found_and_shrinks() {
    let result = run_compound(&CompoundConfig::new(42, 3));
    assert!(result.stats.executed <= 96, "budget overrun");
    assert!(!result.clusters.is_empty(), "no co-failure clusters found");
    // A cross-job co-failure: two jobs of one trial misbehaving together,
    // grouped under one causal-prefix fingerprint.
    assert!(
        result.clusters.iter().any(|c| c.members > 1),
        "no multi-member cluster: {:?}",
        result.clusters
    );
    // And the acceptance bar: at least one cluster whose reproducer
    // shrank to two faults or fewer.
    assert!(
        result.clusters.iter().any(|c| c.faults <= 2),
        "no cluster shrank to <=2 faults: {:?}",
        result.clusters
    );
}

#[test]
fn every_shrunk_reproducer_still_triggers_in_its_own_cluster() {
    let result = run_compound(&CompoundConfig::new(42, 2));
    let jobs = default_jobs(2);
    let faults = deployment_faults(42);
    assert!(!result.clusters.is_empty());
    for cluster in &result.clusters {
        // Rebuild the shrunk reproducer from its row: the fault set from
        // the member ids, the schedule from its id.
        let members: Vec<_> = faults
            .iter()
            .filter(|f| cluster.fault_set.split('+').any(|id| id == f.id))
            .cloned()
            .collect();
        assert!(
            !members.is_empty(),
            "unknown fault set {}",
            cluster.fault_set
        );
        let set = FaultSet::new(members);
        assert_eq!(set.id, cluster.fault_set, "reproducer set id round-trip");
        let schedule = if cluster.schedule == "identity" {
            InterleaveSchedule::identity(jobs.len(), TURNS_PER_JOB)
        } else {
            let seed = u64::from_str_radix(cluster.schedule.trim_start_matches("ilv-"), 16)
                .expect("seeded schedule id");
            InterleaveSchedule::seeded(jobs.len(), TURNS_PER_JOB, seed)
        };
        let report = run_compound_trial(&jobs, &set, &schedule);
        let expected: u64 = u64::from_str_radix(&cluster.fingerprint, 16).expect("hex fingerprint");
        assert!(
            report
                .discrepancies
                .iter()
                .any(|d| d.fingerprint == expected),
            "shrunk reproducer of cluster {} no longer triggers in it",
            cluster.fingerprint
        );
    }
}

#[test]
fn shared_deployment_co_clusters_but_isolated_jobs_do_not() {
    let faults = deployment_faults(1);
    let ms = faults
        .iter()
        .find(|f| f.channel == Channel::Metastore && f.id == "ms-corrupt-get")
        .expect("catalogue metastore fault")
        .clone();
    let hdfs = faults
        .iter()
        .find(|f| f.channel == Channel::Hdfs && f.id == "hdfs-corrupt-read")
        .expect("catalogue hdfs fault")
        .clone();
    let jobs = default_jobs(2);
    let identity = InterleaveSchedule::identity(2, TURNS_PER_JOB);

    // Two jobs share one deployment, one metastore fault plus one HDFS
    // fault armed together: both jobs misbehave, and because the trace is
    // shared their discrepancies carry the same causal-prefix fingerprint.
    let shared = run_compound_trial(
        &jobs,
        &FaultSet::new(vec![ms.clone(), hdfs.clone()]),
        &identity,
    );
    let shared_jobs: Vec<usize> = shared.discrepancies.iter().map(|d| d.job).collect();
    assert!(
        shared_jobs.contains(&0) && shared_jobs.contains(&1),
        "both jobs must misbehave on the shared deployment: {shared_jobs:?}"
    );
    let fingerprints: Vec<u64> = shared.discrepancies.iter().map(|d| d.fingerprint).collect();
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "shared-deployment discrepancies must co-cluster: {fingerprints:?}"
    );

    // The same faults on *isolated* jobs — each job alone on its own
    // deployment, armed with only its own fault — do not co-cluster: the
    // causal paths to the crack differ, so the fingerprints differ.
    let single = InterleaveSchedule::identity(1, TURNS_PER_JOB);
    let iso_ms = run_compound_trial(&jobs[..1], &FaultSet::new(vec![ms]), &single);
    let iso_hdfs = run_compound_trial(&jobs[1..], &FaultSet::new(vec![hdfs]), &single);
    let a = iso_ms.discrepancies.first().expect("metastore discrepancy");
    let b = iso_hdfs.discrepancies.first().expect("hdfs discrepancy");
    assert_ne!(
        a.fingerprint, b.fingerprint,
        "isolated jobs must not co-cluster"
    );
    // The cascade context moves job 1's discrepancy into job 0's cluster:
    // on the shared deployment its fingerprint is the shared prefix, not
    // the one it gets when it runs alone.
    let shared_j1 = shared
        .discrepancies
        .iter()
        .find(|d| d.job == 1)
        .expect("job 1 shared discrepancy");
    assert_ne!(shared_j1.fingerprint, b.fingerprint);
}

#[test]
fn k1_single_job_slice_agrees_with_the_fault_matrix() {
    // Every singleton fault set, run as a one-job compound trial on the
    // matrix's probe scenario, lands in the same §9 bucket as the fault
    // matrix's probe cell for that (fault, scenario).
    let matrix = Campaign::new(&[])
        .fault_matrix(42)
        .run()
        .matrix
        .expect("matrix mode");
    let jobs = default_jobs(1);
    let scenario = jobs[0].scenario();
    let singletons = fault_combinations(&deployment_faults(42), 1, 42, 0);
    assert_eq!(singletons.len(), deployment_faults(42).len());
    let identity = InterleaveSchedule::identity(1, TURNS_PER_JOB);
    let mut checked = 0;
    for set in &singletons {
        let report = run_compound_trial(&jobs, set, &identity);
        let cell = matrix
            .cases
            .iter()
            .find(|c| c.fault.id == set.faults[0].id && c.scenario == scenario);
        let Some(cell) = cell else { continue };
        checked += 1;
        match &cell.outcome {
            None => assert!(
                report.discrepancies.is_empty(),
                "unfired matrix cell {} produced a compound discrepancy",
                set.id
            ),
            Some(outcome) => {
                let oracle_positive = matches!(
                    outcome,
                    csi_core::fault::FaultOutcome::Swallowed
                        | csi_core::fault::FaultOutcome::Mistranslated
                        | csi_core::fault::FaultOutcome::Crash
                );
                assert_eq!(
                    report.discrepancies.first().map(|d| d.outcome),
                    oracle_positive.then_some(*outcome),
                    "k=1 slice diverges from matrix cell {}/{scenario}",
                    set.id
                );
            }
        }
    }
    assert!(
        checked >= 4,
        "too few matrix probe cells matched: {checked}"
    );
}

#[test]
fn kfaults_zero_reproduces_the_plain_explore_report_exactly() {
    // The compound pass is opt-in: the default (`kfaults(0)`) leaves the
    // explore mode byte-identical to its pre-compound behaviour, with no
    // cluster section in the render.
    let inputs = generate_inputs();
    let run = |campaign: Campaign| campaign.seed(42).explore(40).run();
    let plain = run(Campaign::new(&inputs[..6])
        .experiments(vec![Experiment::ALL[0]])
        .formats(vec![StorageFormat::Orc]));
    let explicit_zero = run(Campaign::new(&inputs[..6])
        .experiments(vec![Experiment::ALL[0]])
        .formats(vec![StorageFormat::Orc])
        .kfaults(0));
    assert_eq!(json(&plain.report), json(&explicit_zero.report));
    assert_eq!(json(&plain.exploration), json(&explicit_zero.exploration));
    assert_eq!(plain.render(), explicit_zero.render());
    assert!(plain.compound.is_none() && explicit_zero.compound.is_none());
    assert!(plain.clusters.is_empty());
    assert!(!plain.render().contains("compound pass:"));

    // Turning the knob on is additive: the base exploration is unchanged,
    // and the render gains the cluster section.
    let compound = run(Campaign::new(&inputs[..6])
        .experiments(vec![Experiment::ALL[0]])
        .formats(vec![StorageFormat::Orc])
        .kfaults(2));
    assert_eq!(json(&plain.report), json(&compound.report));
    assert_eq!(json(&plain.exploration), json(&compound.exploration));
    assert!(compound.compound.is_some());
    assert!(compound.render().contains("compound pass:"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fixed-seed compound explore runs are byte-identical serial vs
    /// sharded and across repeat runs, for any seed.
    #[test]
    fn compound_explore_replay_is_byte_identical(seed in any::<u64>()) {
        let run = |shards: usize| {
            let mut config = CompoundConfig::new(seed, 2);
            config.budget = 24;
            config.shards = shards;
            run_compound(&config)
        };
        let first = run(1);
        let again = run(1);
        let sharded = run(3);
        prop_assert_eq!(json(&first.stats), json(&again.stats));
        prop_assert_eq!(json(&first.clusters), json(&again.clusters));
        prop_assert_eq!(json(&first.stats), json(&sharded.stats));
        prop_assert_eq!(json(&first.clusters), json(&sharded.clusters));
    }

    /// Seeded fault combinations are deterministic, bounded by arity, and
    /// always contain every singleton.
    #[test]
    fn fault_combinations_are_seeded_and_bounded(seed in any::<u64>(), k in 1usize..=3) {
        let faults = deployment_faults(seed);
        let sets = fault_combinations(&faults, k, seed, 4);
        let again = fault_combinations(&faults, k, seed, 4);
        prop_assert_eq!(json(&sets), json(&again));
        for f in &faults {
            prop_assert!(sets.iter().any(|s| s.len() == 1 && s.faults[0] == *f));
        }
        for s in &sets {
            prop_assert!(!s.is_empty() && s.len() <= k);
        }
    }
}
