//! Properties of the online CSI failure detector.
//!
//! The tentpole contract: detections are *deterministic* (serial and
//! sharded campaigns produce byte-identical detection sets), *silent on
//! healthy runs* (a fault-free campaign yields zero detections), and
//! *complete against the offline oracle* (every cell of the standard
//! fault matrix that `classify_fault_outcome` labels swallowed or
//! mistranslated is flagged online — recall 1.0 — with no false flags on
//! the propagated/crash cells — precision 1.0).

use csi_core::detect::{flags_error_handling, DetectionKind, DetectorConfig};
use csi_core::fault::{Channel, FaultKind, FaultOutcome, FaultPlan, FaultSpec, Trigger};
use csi_test::{generate_inputs, small_fault_catalogue, Campaign, Experiment};
use minihive::metastore::StorageFormat;
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

#[test]
fn standard_matrix_detector_matches_the_offline_oracle_exactly() {
    let outcome = Campaign::new(&[]).fault_matrix(42).detect(true).run();
    let matrix = outcome.matrix.as_ref().expect("matrix mode");
    assert_eq!(matrix.cases.len(), 159, "standard matrix size");

    for case in &matrix.cases {
        match case.outcome {
            // The acceptance gate: every oracle-labeled error-handling
            // cell is flagged online, with the matching kind.
            Some(FaultOutcome::Swallowed) => assert!(
                case.detections
                    .iter()
                    .any(|d| d.kind == DetectionKind::SwallowedError),
                "cell {}/{} swallowed but not flagged: {:?}",
                case.fault.id,
                case.scenario,
                case.detections
            ),
            Some(FaultOutcome::Mistranslated) => assert!(
                case.detections
                    .iter()
                    .any(|d| d.kind == DetectionKind::MistranslatedError),
                "cell {}/{} mistranslated but not flagged: {:?}",
                case.fault.id,
                case.scenario,
                case.detections
            ),
            // No false flags: propagated/crash/unfired cells carry no
            // error-handling detections.
            _ => assert!(
                !flags_error_handling(&case.detections),
                "cell {}/{} ({:?}) falsely flagged: {:?}",
                case.fault.id,
                case.scenario,
                case.outcome,
                case.detections
            ),
        }
    }

    let agreement = matrix.agreement.expect("fired cells were scored");
    assert_eq!(agreement.false_negatives, 0, "recall must be 1.0");
    assert_eq!(agreement.false_positives, 0, "precision must be 1.0");
    assert!((agreement.recall() - 1.0).abs() < f64::EPSILON);
    assert!((agreement.precision() - 1.0).abs() < f64::EPSILON);

    // The campaign-level render shows the detector sections.
    let rendered = outcome.render();
    assert!(
        rendered.contains("online detections per kind:"),
        "{rendered}"
    );
    assert!(
        rendered.contains("detector vs offline oracle:"),
        "{rendered}"
    );
}

#[test]
fn latency_storm_fires_on_the_flink_12342_regime() {
    // The FLINK-12342 cell: injected allocation latency above the driver's
    // heartbeat interval makes the buggy-sync driver re-request containers
    // on every beat. The 15 s simulated deadline caps the loop below the
    // default storm threshold, so tighten it to the scale of one driver
    // run.
    let outcome = Campaign::new(&[])
        .fault_matrix(42)
        .detect(true)
        .detector_config(DetectorConfig {
            storm_threshold: 8,
            ..DetectorConfig::default()
        })
        .run();
    let matrix = outcome.matrix.expect("matrix mode");
    let cell = matrix
        .cases
        .iter()
        .find(|c| c.fault.id == "yarn-latency-alloc" && c.scenario == "yarn:flink-driver")
        .expect("the FLINK-12342 cell exists");
    assert!(
        cell.detections
            .iter()
            .any(|d| d.kind == DetectionKind::LatencyStorm),
        "no latency storm on the driver cell: {:?}",
        cell.detections
    );
}

#[test]
fn co_occurrence_flags_a_multi_channel_fault_burst() {
    // A campaign with faults armed on two channels at once. Latency
    // faults delay rather than abort, so a single observation crosses
    // *both* degraded channels inside one causal window — the
    // cross-channel signature of a CSI failure cascading.
    let inputs = generate_inputs();
    let plan = FaultPlan {
        seed: 7,
        faults: vec![
            FaultSpec {
                id: "ms-slow".into(),
                channel: Channel::Metastore,
                op: "get_table".into(),
                kind: FaultKind::Latency { ms: 800 },
                trigger: Trigger::Always,
            },
            FaultSpec {
                id: "hdfs-slow".into(),
                channel: Channel::Hdfs,
                op: "create".into(),
                kind: FaultKind::Latency { ms: 800 },
                trigger: Trigger::Always,
            },
        ],
    };
    let outcome = Campaign::new(&inputs[..1]).faults(plan).detect(true).run();
    let co_occurrences: usize = outcome
        .observations
        .iter()
        .flat_map(|(_, obs)| &obs.detections)
        .filter(|d| d.kind == DetectionKind::CoOccurrence)
        .count();
    assert!(
        co_occurrences > 0,
        "no co-occurrence despite faults on two channels: {:?}",
        outcome.report.detection_kinds
    );
    assert!(outcome.report.detection_totals.contains_key("metastore"));
    assert!(outcome.report.detection_totals.contains_key("hdfs"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A fault-free campaign never detects anything, whatever slice of
    /// the catalogue it runs over.
    #[test]
    fn fault_free_campaigns_are_detection_free(start in 0usize..400) {
        let inputs = generate_inputs();
        let slice = &inputs[start..(start + 2).min(inputs.len())];
        let outcome = Campaign::new(slice).detect(true).run();
        prop_assert!(outcome.report.detector_enabled);
        prop_assert!(
            outcome.report.detection_kinds.is_empty(),
            "spurious detections: {:?}",
            outcome.report.detection_kinds
        );
        for (_, obs) in &outcome.observations {
            prop_assert!(obs.detections.is_empty());
        }
    }

    /// Detection output is deterministic across the serial and sharded
    /// executors: same campaign, any worker count, byte-identical report
    /// and per-observation detection sets.
    #[test]
    fn cross_test_detections_are_shard_invariant(workers in 2usize..5) {
        let inputs = generate_inputs();
        let serial = Campaign::new(&inputs[..6]).detect(true).run();
        let sharded = Campaign::new(&inputs[..6])
            .detect(true)
            .shards(workers)
            .chunk_size(1)
            .run();
        prop_assert_eq!(json(&serial.report), json(&sharded.report));
        prop_assert_eq!(serial.observations.len(), sharded.observations.len());
        for (s, p) in serial.observations.iter().zip(&sharded.observations) {
            prop_assert_eq!(json(&s.1.detections), json(&p.1.detections));
        }
    }

    /// Same for the fault matrix: the detector's per-cell output merges
    /// back byte-identically at any worker count and for any seed.
    #[test]
    fn matrix_detections_are_shard_invariant(seed in any::<u64>(), workers in 2usize..5) {
        let smoke = |shards: usize| {
            Campaign::new(&[])
                .fault_matrix(seed)
                .faults(small_fault_catalogue(seed))
                .experiments(vec![Experiment::ALL[0]])
                .formats(vec![StorageFormat::Orc])
                .detect(true)
                .shards(shards)
                .run()
        };
        let serial = smoke(1);
        let sharded = smoke(workers);
        prop_assert_eq!(json(&serial.matrix), json(&sharded.matrix));
        prop_assert_eq!(serial.render(), sharded.render());
    }
}
