//! Prints the generated input counts (used while tuning the catalogue).
fn main() {
    let inputs = csi_test::generate_inputs();
    let valid = inputs
        .iter()
        .filter(|i| i.validity == csi_test::Validity::Valid)
        .count();
    println!(
        "total={} valid={} invalid={}",
        inputs.len(),
        valid,
        inputs.len() - valid
    );
}
