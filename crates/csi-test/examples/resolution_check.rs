//! Prints which discrepancies appear under default vs custom configuration.
use csi_test::{generate_inputs, Campaign, CrossTestConfig};

fn main() {
    let inputs = generate_inputs();
    let default_run = Campaign::new(&inputs).run();
    let custom_run = Campaign::new(&inputs)
        .spark_overrides(CrossTestConfig::custom_resolving_overrides())
        .run();
    let ids = |r: &csi_test::CampaignOutcome| -> Vec<String> {
        csi_test::classify::active_ids(&r.report)
    };
    println!("default:  {:?}", ids(&default_run));
    println!("custom:   {:?}", ids(&custom_run));
    println!(
        "default unattributed: {}",
        default_run.report.unattributed.len()
    );
    println!(
        "custom unattributed:  {}",
        custom_run.report.unattributed.len()
    );
    let d: Vec<_> = ids(&default_run);
    let c: Vec<_> = ids(&custom_run);
    let resolved: Vec<_> = d.iter().filter(|x| !c.contains(x)).collect();
    println!("resolved by custom config: {resolved:?}");
}
