//! Dumps evidence for discrepancies that should resolve under the custom
//! configuration (tuning aid).
use csi_test::{generate_inputs, Campaign, CrossTestConfig};

fn main() {
    let inputs = generate_inputs();
    let run = Campaign::new(&inputs)
        .spark_overrides(CrossTestConfig::custom_resolving_overrides())
        .run();
    for d in &run.report.discrepancies {
        if ["D09", "D10", "D11", "D12", "D13", "D15"].contains(&d.id.as_str()) {
            println!("== {} evidence {}", d.id, d.evidence.len());
            for f in d.evidence.iter().take(2) {
                let input = &inputs[f.input_id];
                println!(
                    "  input {} ({}) oracle {:?}",
                    f.input_id, input.label, f.oracle
                );
                println!("  plans {:?} formats {:?}", f.plans, f.formats);
                println!("  detail: {}", &f.detail[..f.detail.len().min(220)]);
            }
        }
    }
}
