//! Columnar record batches over the physical data model.
//!
//! A [`RecordBatch`] holds one contiguous typed buffer per column — plain
//! `Vec`s for fixed-width types, offset/byte buffers for strings and
//! binaries, an optional dictionary encoding for repetitive strings, and a
//! validity [`Bitmap`] per column — instead of the row-major
//! `Vec<Vec<PhysicalValue>>` representation. Appending and scanning a
//! primitive column touches no per-cell heap allocation and no
//! `PhysicalValue` enum construction, which is where the row-oriented data
//! plane spent most of its time.
//!
//! The wire layout is **unchanged**: [`encode`] emits bytes identical to
//! [`crate::wire::encode`] on the equivalent rows (the header helpers are
//! shared, and cells are interleaved row-major exactly as before), so
//! fault-injection offsets, corruption behavior, and every downstream
//! report stay stable. [`decode`] parses straight into typed buffers and
//! falls back to the row decoder for files whose value tags do not match
//! their declared column types (hand-crafted or corrupted files), so its
//! error behavior matches the row path as well.
//!
//! Nested types (list/map/struct) keep per-cell [`PhysicalValue`] storage
//! inside [`ColumnData::Nested`]; only the flat types get monomorphized
//! fast paths. That is where all the studied hot loops live.

use crate::physical::{value_matches, FileSchema, PhysicalType, PhysicalValue};
use crate::wire::{self, FormatRules, Writer};
use crate::FormatError;
use std::collections::HashMap;

/// A validity bitmap: bit set ⇒ the slot holds a value, clear ⇒ NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// An empty bitmap with room for `n` slots.
    pub fn with_capacity(n: usize) -> Bitmap {
        Bitmap {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one slot.
    pub fn push(&mut self, valid: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if valid {
            *self.words.last_mut().expect("just ensured") |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Whether slot `i` is valid (in-range slots only).
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (non-NULL) slots.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw words, for word-at-a-time (XOR/compare) scans.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words (bits past `len` must be zero).
    /// Lets engine layers move validity across crate boundaries without a
    /// per-bit loop.
    pub fn from_raw(words: Vec<u64>, len: usize) -> Bitmap {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Bitmap { words, len }
    }

    /// Whether two bitmaps of equal length mark the same slots valid.
    /// Word-wise comparison; trailing unused bits are always zero because
    /// [`Bitmap::push`] never sets them.
    pub fn same_validity(&self, other: &Bitmap) -> bool {
        self.len == other.len && self.words == other.words
    }
}

/// An offsets + bytes buffer for variable-width cells (UTF-8 or raw bytes).
/// `offsets` has one entry per cell plus a trailing end offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarBuffer {
    offsets: Vec<usize>,
    bytes: Vec<u8>,
}

impl Default for VarBuffer {
    fn default() -> VarBuffer {
        VarBuffer {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }
}

impl VarBuffer {
    /// An empty buffer.
    pub fn new() -> VarBuffer {
        VarBuffer::default()
    }

    /// An empty buffer sized for `cells` cells totalling ~`byte_cap` bytes.
    pub fn with_capacity(cells: usize, byte_cap: usize) -> VarBuffer {
        let mut offsets = Vec::with_capacity(cells + 1);
        offsets.push(0);
        VarBuffer {
            offsets,
            bytes: Vec::with_capacity(byte_cap),
        }
    }

    /// Appends one cell.
    pub fn push(&mut self, b: &[u8]) {
        self.bytes.extend_from_slice(b);
        self.offsets.push(self.bytes.len());
    }

    /// Appends the cell `src[start..start + len]`. Same bytes as
    /// [`VarBuffer::push`], but short cells copy through a constant-size
    /// window when one fits in `src`: a fixed-length copy compiles to two
    /// register moves, while variable short lengths bounce through the
    /// memcpy dispatcher and mispredict on every size change.
    pub fn push_within(&mut self, src: &[u8], start: usize, len: usize) {
        if len <= 32 && start + 32 <= src.len() {
            let keep = self.bytes.len() + len;
            self.bytes.extend_from_slice(&src[start..start + 32]);
            self.bytes.truncate(keep);
        } else {
            self.bytes.extend_from_slice(&src[start..start + len]);
        }
        self.offsets.push(self.bytes.len());
    }

    /// The bytes of cell `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the buffer has no cells.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total payload bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Rebuilds a buffer from raw parts (`offsets` must start at 0, be
    /// non-decreasing, and end at `bytes.len()`).
    pub fn from_raw(offsets: Vec<usize>, bytes: Vec<u8>) -> VarBuffer {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last(), Some(&bytes.len()));
        VarBuffer { offsets, bytes }
    }

    /// The raw offsets (one per cell plus a trailing end offset).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated payload bytes.
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Dictionary-encoded strings: one `u32` code per cell indexing into a
/// deduplicated [`VarBuffer`] of distinct values. Worth it when the same
/// strings repeat across millions of rows (generated bulk tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringDictionary {
    codes: Vec<u32>,
    values: VarBuffer,
    index: HashMap<String, u32>,
}

impl StringDictionary {
    /// An empty dictionary column.
    pub fn new() -> StringDictionary {
        StringDictionary::default()
    }

    /// Appends one cell, interning its value.
    pub fn push(&mut self, s: &str) {
        if let Some(code) = self.index.get(s) {
            self.codes.push(*code);
            return;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary under 2^32 entries");
        self.values.push(s.as_bytes());
        self.index.insert(s.to_string(), code);
        self.codes.push(code);
    }

    /// The string of cell `i`.
    pub fn get(&self, i: usize) -> &str {
        let b = self.values.get(self.codes[i] as usize);
        std::str::from_utf8(b).expect("interned from &str")
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }
}

/// The typed buffer of one column. NULL slots hold an arbitrary placeholder
/// in the buffer; the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 8-bit integers.
    Int8(Vec<i8>),
    /// 16-bit integers.
    Int16(Vec<i16>),
    /// 32-bit integers.
    Int32(Vec<i32>),
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 32-bit floats.
    Float32(Vec<f32>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Decimals: parallel unscaled/scale buffers (the wire stores a
    /// per-value scale, so it is a column here too).
    Decimal {
        /// Unscaled integers.
        unscaled: Vec<i128>,
        /// Per-value scales.
        scale: Vec<u8>,
    },
    /// UTF-8 strings.
    Utf8(VarBuffer),
    /// Dictionary-encoded UTF-8 strings.
    DictUtf8(StringDictionary),
    /// Raw byte arrays.
    Bytes(VarBuffer),
    /// Nested (list/map/struct) cells, row-wise. Also the lenient fallback
    /// for files whose cells do not inhabit their declared column type.
    Nested(Vec<PhysicalValue>),
}

impl ColumnData {
    fn for_type(ty: &PhysicalType, cap: usize) -> ColumnData {
        match ty {
            PhysicalType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            PhysicalType::Int8 => ColumnData::Int8(Vec::with_capacity(cap)),
            PhysicalType::Int16 => ColumnData::Int16(Vec::with_capacity(cap)),
            PhysicalType::Int32 => ColumnData::Int32(Vec::with_capacity(cap)),
            PhysicalType::Int64 => ColumnData::Int64(Vec::with_capacity(cap)),
            PhysicalType::Float32 => ColumnData::Float32(Vec::with_capacity(cap)),
            PhysicalType::Float64 => ColumnData::Float64(Vec::with_capacity(cap)),
            PhysicalType::Decimal => ColumnData::Decimal {
                unscaled: Vec::with_capacity(cap),
                scale: Vec::with_capacity(cap),
            },
            PhysicalType::Utf8 => ColumnData::Utf8(VarBuffer::with_capacity(cap, 0)),
            PhysicalType::Bytes => ColumnData::Bytes(VarBuffer::with_capacity(cap, 0)),
            PhysicalType::List(_) | PhysicalType::Map(_, _) | PhysicalType::Struct(_) => {
                ColumnData::Nested(Vec::with_capacity(cap))
            }
        }
    }
}

/// One column of a [`RecordBatch`]: a validity bitmap plus typed data.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Which slots hold values.
    pub validity: Bitmap,
    /// The typed buffer.
    pub data: ColumnData,
}

impl Column {
    /// An empty column whose buffer matches the physical type.
    pub fn for_type(ty: &PhysicalType) -> Column {
        Column::with_capacity(ty, 0)
    }

    /// An empty column with row capacity pre-reserved.
    pub fn with_capacity(ty: &PhysicalType, cap: usize) -> Column {
        Column {
            validity: Bitmap::with_capacity(cap),
            data: ColumnData::for_type(ty, cap),
        }
    }

    /// An empty dictionary-encoded string column.
    pub fn dictionary(cap: usize) -> Column {
        let _ = cap;
        Column {
            validity: Bitmap::new(),
            data: ColumnData::DictUtf8(StringDictionary::new()),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Appends a NULL slot (placeholder value in the buffer).
    pub fn push_null(&mut self) {
        self.validity.push(false);
        match &mut self.data {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int8(v) => v.push(0),
            ColumnData::Int16(v) => v.push(0),
            ColumnData::Int32(v) => v.push(0),
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float32(v) => v.push(0.0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Decimal { unscaled, scale } => {
                unscaled.push(0);
                scale.push(0);
            }
            ColumnData::Utf8(b) => b.push(b""),
            ColumnData::DictUtf8(d) => d.push(""),
            ColumnData::Bytes(b) => b.push(b""),
            ColumnData::Nested(v) => v.push(PhysicalValue::Null),
        }
    }

    /// Appends a value if it inhabits this column's buffer type; returns
    /// `false` (without appending) on a variant mismatch. NULL always fits.
    pub fn push_checked(&mut self, v: &PhysicalValue) -> bool {
        if matches!(v, PhysicalValue::Null) {
            self.push_null();
            return true;
        }
        match (&mut self.data, v) {
            (ColumnData::Bool(buf), PhysicalValue::Bool(x)) => buf.push(*x),
            (ColumnData::Int8(buf), PhysicalValue::Int8(x)) => buf.push(*x),
            (ColumnData::Int16(buf), PhysicalValue::Int16(x)) => buf.push(*x),
            (ColumnData::Int32(buf), PhysicalValue::Int32(x)) => buf.push(*x),
            (ColumnData::Int64(buf), PhysicalValue::Int64(x)) => buf.push(*x),
            (ColumnData::Float32(buf), PhysicalValue::Float32(x)) => buf.push(*x),
            (ColumnData::Float64(buf), PhysicalValue::Float64(x)) => buf.push(*x),
            (
                ColumnData::Decimal { unscaled, scale },
                PhysicalValue::Decimal {
                    unscaled: u,
                    scale: s,
                },
            ) => {
                unscaled.push(*u);
                scale.push(*s);
            }
            (ColumnData::Utf8(buf), PhysicalValue::Utf8(s)) => buf.push(s.as_bytes()),
            (ColumnData::DictUtf8(d), PhysicalValue::Utf8(s)) => d.push(s),
            (ColumnData::Bytes(buf), PhysicalValue::Bytes(b)) => buf.push(b),
            (ColumnData::Nested(buf), v) => buf.push(v.clone()),
            _ => return false,
        }
        self.validity.push(true);
        true
    }

    /// Materializes slot `i` as a [`PhysicalValue`].
    pub fn get(&self, i: usize) -> PhysicalValue {
        if !self.validity.get(i) {
            return PhysicalValue::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => PhysicalValue::Bool(v[i]),
            ColumnData::Int8(v) => PhysicalValue::Int8(v[i]),
            ColumnData::Int16(v) => PhysicalValue::Int16(v[i]),
            ColumnData::Int32(v) => PhysicalValue::Int32(v[i]),
            ColumnData::Int64(v) => PhysicalValue::Int64(v[i]),
            ColumnData::Float32(v) => PhysicalValue::Float32(v[i]),
            ColumnData::Float64(v) => PhysicalValue::Float64(v[i]),
            ColumnData::Decimal { unscaled, scale } => PhysicalValue::Decimal {
                unscaled: unscaled[i],
                scale: scale[i],
            },
            ColumnData::Utf8(b) => PhysicalValue::Utf8(
                std::str::from_utf8(b.get(i))
                    .expect("validated on push")
                    .to_string(),
            ),
            ColumnData::DictUtf8(d) => PhysicalValue::Utf8(d.get(i).to_string()),
            ColumnData::Bytes(b) => PhysicalValue::Bytes(b.get(i).to_vec()),
            ColumnData::Nested(v) => v[i].clone(),
        }
    }

    /// Converts this column's already-pushed cells to the [`ColumnData::Nested`]
    /// representation — the lenient-decode escape hatch.
    fn into_nested(self) -> Column {
        let mut cells = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            cells.push(self.get(i));
        }
        let mut validity = Bitmap::with_capacity(cells.len());
        for c in &cells {
            validity.push(!matches!(c, PhysicalValue::Null));
        }
        Column {
            validity,
            data: ColumnData::Nested(cells),
        }
    }

    /// Writes slot `i` in the wire cell encoding (tag byte + payload).
    #[inline]
    fn write_cell(&self, w: &mut Writer, i: usize) {
        if !self.validity.get(i) {
            w.u8(0);
            return;
        }
        // Each flat arm appends tag + payload with one buffer grow check
        // (stack-assembled), not one per byte — this loop is the write
        // hot path for the whole data plane.
        match &self.data {
            ColumnData::Bool(v) => {
                w.buf.extend_from_slice(&[1, v[i] as u8]);
            }
            ColumnData::Int8(v) => w.tagged_varint64(2, v[i] as i64),
            ColumnData::Int16(v) => w.tagged_varint64(3, v[i] as i64),
            ColumnData::Int32(v) => w.tagged_varint64(4, v[i] as i64),
            ColumnData::Int64(v) => w.tagged_varint64(5, v[i]),
            ColumnData::Float32(v) => {
                let bits = v[i].to_bits().to_le_bytes();
                let mut tmp = [6u8; 5];
                tmp[1..].copy_from_slice(&bits);
                w.buf.extend_from_slice(&tmp);
            }
            ColumnData::Float64(v) => {
                let bits = v[i].to_bits().to_le_bytes();
                let mut tmp = [7u8; 9];
                tmp[1..].copy_from_slice(&bits);
                w.buf.extend_from_slice(&tmp);
            }
            ColumnData::Decimal { unscaled, scale } => {
                let u = unscaled[i];
                if let Ok(narrow) = i64::try_from(u) {
                    w.tagged_varint64(8, narrow);
                } else {
                    w.u8(8);
                    w.varint(u);
                }
                w.u8(scale[i]);
            }
            ColumnData::Utf8(b) => write_var_cell(w, 9, b, i),
            ColumnData::DictUtf8(d) => write_var_cell(w, 9, &d.values, d.codes[i] as usize),
            ColumnData::Bytes(b) => write_var_cell(w, 10, b, i),
            ColumnData::Nested(v) => wire::write_value(w, &v[i]),
        }
    }
}

/// A columnar batch: a file schema plus one [`Column`] per schema column,
/// all of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    /// The file schema the columns inhabit.
    pub schema: FileSchema,
    /// One column per schema entry.
    pub columns: Vec<Column>,
}

impl RecordBatch {
    /// An empty batch over a schema.
    pub fn new(schema: FileSchema) -> RecordBatch {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::for_type(&c.ty))
            .collect();
        RecordBatch { schema, columns }
    }

    /// An empty batch with row capacity pre-reserved per column.
    pub fn with_capacity(schema: FileSchema, rows: usize) -> RecordBatch {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::with_capacity(&c.ty, rows))
            .collect();
        RecordBatch { schema, columns }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a batch from row-major values, with exactly the validation
    /// (and error values) of [`crate::wire::encode`]: per-row arity, then
    /// per-cell type conformance in column order.
    pub fn from_rows(
        schema: &FileSchema,
        rows: &[Vec<PhysicalValue>],
    ) -> Result<RecordBatch, FormatError> {
        let mut batch = RecordBatch::with_capacity(schema.clone(), rows.len());
        for row in rows {
            batch.push_row(row)?;
        }
        Ok(batch)
    }

    /// Appends one row, validating arity and per-cell types like
    /// [`crate::wire::encode`].
    pub fn push_row(&mut self, row: &[PhysicalValue]) -> Result<(), FormatError> {
        if row.len() != self.schema.columns.len() {
            return Err(FormatError::Corrupt(format!(
                "row has {} values for {} columns",
                row.len(),
                self.schema.columns.len()
            )));
        }
        for ((col, value), data) in self.schema.columns.iter().zip(row).zip(&mut self.columns) {
            // Flat columns: the typed-buffer push *is* the conformance
            // check. Nested columns delegate to the recursive check.
            let ok = match &data.data {
                ColumnData::Nested(_) => {
                    if value_matches(&col.ty, value) {
                        data.push_checked(value)
                    } else {
                        false
                    }
                }
                _ => data.push_checked(value),
            };
            if !ok {
                return Err(FormatError::TypeMismatch {
                    column: col.name.clone(),
                    declared: col.ty.clone(),
                    found: format!("{value:?}"),
                });
            }
        }
        Ok(())
    }

    /// Materializes the batch back into row-major values.
    pub fn to_rows(&self) -> Vec<Vec<PhysicalValue>> {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(self.columns.iter().map(|c| c.get(i)).collect());
        }
        rows
    }
}

/// Encodes a batch under the given format rules, emitting bytes identical
/// to [`crate::wire::encode`] on the equivalent rows.
pub fn encode(rules: &FormatRules, batch: &RecordBatch) -> Result<Vec<u8>, FormatError> {
    for col in &batch.schema.columns {
        rules.check_type(&col.ty, &format!("column {}", col.name))?;
    }
    let n = batch.len();
    for (col, data) in batch.schema.columns.iter().zip(&batch.columns) {
        if data.len() != n {
            return Err(FormatError::Corrupt(format!(
                "column {} has {} rows, batch has {n}",
                col.name,
                data.len()
            )));
        }
        // Typed buffers prove conformance by construction; nested cells
        // carry arbitrary values and are validated like the row encoder.
        if let ColumnData::Nested(cells) = &data.data {
            for cell in cells {
                if !value_matches(&col.ty, cell) {
                    return Err(FormatError::TypeMismatch {
                        column: col.name.clone(),
                        declared: col.ty.clone(),
                        found: format!("{cell:?}"),
                    });
                }
            }
        }
    }
    // Size the output once: tag byte plus a worst-case fixed payload per
    // cell, plus actual payload bytes for the variable-width lanes. This
    // is a hint, not a bound — the writer still grows if it falls short.
    let mut cap = 64;
    for col in &batch.columns {
        cap += match &col.data {
            ColumnData::Bool(_) => n * 2,
            ColumnData::Int8(_) | ColumnData::Int16(_) => n * 4,
            ColumnData::Int32(_) => n * 6,
            ColumnData::Int64(_) => n * 11,
            ColumnData::Float32(_) => n * 5,
            ColumnData::Float64(_) => n * 9,
            ColumnData::Decimal { .. } => n * 12,
            ColumnData::Utf8(b) => n * 4 + b.byte_len(),
            ColumnData::Bytes(b) => n * 4 + b.byte_len(),
            ColumnData::DictUtf8(_) | ColumnData::Nested(_) => n * 16,
        };
    }
    let mut w = Writer {
        buf: Vec::with_capacity(cap),
    };
    wire::write_header(&mut w, rules, &batch.schema);
    w.len(n);
    if batch.columns.len() == 1 {
        // Single-column batches (the campaign's shape): one variant
        // dispatch per cell with no per-row column iteration.
        let col = &batch.columns[0];
        for i in 0..n {
            col.write_cell(&mut w, i);
        }
    } else {
        for i in 0..n {
            for col in &batch.columns {
                col.write_cell(&mut w, i);
            }
        }
    }
    w.buf.extend_from_slice(rules.magic);
    Ok(w.buf)
}

/// Appends tag byte + length prefix + payload for cell `i` of a
/// var-width buffer. Byte-identical to tag + length prefix + payload on
/// the cell's slice, but short payloads copy through a constant-size
/// window (see [`VarBuffer::push_within`] for why).
#[inline]
fn write_var_cell(w: &mut Writer, tag: u8, buf: &VarBuffer, i: usize) {
    let (start, end) = (buf.offsets()[i], buf.offsets()[i + 1]);
    let bytes = buf.raw_bytes();
    let len = end - start;
    w.tagged_varint64(tag, len as i64);
    if len <= 32 && start + 32 <= bytes.len() {
        let keep = w.buf.len() + len;
        w.buf.extend_from_slice(&bytes[start..start + 32]);
        w.buf.truncate(keep);
    } else {
        w.buf.extend_from_slice(&bytes[start..end]);
    }
}

/// The wire tag a flat column expects for its non-null cells, or `None`
/// for nested columns (which accept any tag via the generic reader).
fn expected_tag(data: &ColumnData) -> Option<u8> {
    Some(match data {
        ColumnData::Bool(_) => 1,
        ColumnData::Int8(_) => 2,
        ColumnData::Int16(_) => 3,
        ColumnData::Int32(_) => 4,
        ColumnData::Int64(_) => 5,
        ColumnData::Float32(_) => 6,
        ColumnData::Float64(_) => 7,
        ColumnData::Decimal { .. } => 8,
        ColumnData::Utf8(_) | ColumnData::DictUtf8(_) => 9,
        ColumnData::Bytes(_) => 10,
        ColumnData::Nested(_) => return None,
    })
}

/// Decodes a file into a columnar batch.
///
/// Cells whose tag matches the declared column type parse straight into
/// the typed buffer. A mismatched (but readable) cell demotes the column
/// to [`ColumnData::Nested`] so decoding stays as lenient as the row
/// decoder — the serde layers, not the container, decide what a
/// type-skewed file means. Corrupt bytes produce the same errors as
/// [`crate::wire::decode`] because both use the same primitive readers.
pub fn decode(rules: &FormatRules, data: &[u8]) -> Result<RecordBatch, FormatError> {
    let mut r = wire::open_reader(rules, data)?;
    let schema = wire::read_header(&mut r)?;
    let nrows = r.len()?;
    let mut batch = RecordBatch::with_capacity(schema, nrows.min(1 << 20));
    let ncols = batch.columns.len();
    for _ in 0..nrows {
        for c in 0..ncols {
            let tag = r.u8()?;
            let col = &mut batch.columns[c];
            if tag == 0 {
                col.push_null();
                continue;
            }
            match (expected_tag(&col.data), &mut col.data) {
                (Some(t), ColumnData::Bool(buf)) if tag == t => {
                    buf.push(r.u8()? != 0);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Int8(buf)) if tag == t => {
                    let v = r
                        .varint64()?
                        .ok()
                        .and_then(|v| i8::try_from(v).ok())
                        .ok_or_else(|| FormatError::Corrupt("int8 out of range".into()))?;
                    buf.push(v);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Int16(buf)) if tag == t => {
                    let v = r
                        .varint64()?
                        .ok()
                        .and_then(|v| i16::try_from(v).ok())
                        .ok_or_else(|| FormatError::Corrupt("int16 out of range".into()))?;
                    buf.push(v);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Int32(buf)) if tag == t => {
                    let v = r
                        .varint64()?
                        .ok()
                        .and_then(|v| i32::try_from(v).ok())
                        .ok_or_else(|| FormatError::Corrupt("int32 out of range".into()))?;
                    buf.push(v);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Int64(buf)) if tag == t => {
                    let v = r
                        .varint64()?
                        .ok()
                        .ok_or_else(|| FormatError::Corrupt("int64 out of range".into()))?;
                    buf.push(v);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Float32(buf)) if tag == t => {
                    buf.push(f32::from_bits(u32::from_le_bytes(r.array()?)));
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Float64(buf)) if tag == t => {
                    buf.push(f64::from_bits(u64::from_le_bytes(r.array()?)));
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Utf8(buf)) if tag == t => {
                    let b = r.bytes_ref()?;
                    std::str::from_utf8(b)
                        .map_err(|_| FormatError::Corrupt("invalid UTF-8".into()))?;
                    let len = b.len();
                    buf.push_within(data, r.pos - len, len);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Bytes(buf)) if tag == t => {
                    let len = r.bytes_ref()?.len();
                    buf.push_within(data, r.pos - len, len);
                    col.validity.push(true);
                }
                (Some(t), ColumnData::Decimal { unscaled, scale }) if tag == t => {
                    unscaled.push(r.varint()?);
                    scale.push(r.u8()?);
                    col.validity.push(true);
                }
                _ => {
                    // Floats, strings, bytes, nested, and tag-mismatched
                    // cells go through the generic reader; a mismatch
                    // demotes the column to row-wise nested storage.
                    let value = wire::read_value_body(&mut r, tag)?;
                    if !col.push_checked(&value) {
                        let mut demoted =
                            std::mem::replace(col, Column::for_type(&PhysicalType::Bool))
                                .into_nested();
                        let pushed = demoted.push_checked(&value);
                        debug_assert!(pushed, "nested columns accept any value");
                        *col = demoted;
                    }
                }
            }
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: FormatRules = FormatRules {
        name: "test",
        magic: b"TST1",
        allows_small_ints: true,
        allows_non_string_map_keys: true,
    };

    fn sample_schema() -> FileSchema {
        let mut s = FileSchema::of(vec![
            ("a", PhysicalType::Int32),
            ("b", PhysicalType::Utf8),
            ("f", PhysicalType::Float64),
            ("d", PhysicalType::Decimal),
            (
                "m",
                PhysicalType::Map(Box::new(PhysicalType::Int32), Box::new(PhysicalType::Utf8)),
            ),
        ]);
        s.columns[0].logical = Some("tinyint".into());
        s.meta.insert("writer".into(), "test".into());
        s
    }

    fn sample_rows() -> Vec<Vec<PhysicalValue>> {
        vec![
            vec![
                PhysicalValue::Int32(5),
                PhysicalValue::Utf8("hi".into()),
                PhysicalValue::Float64(-0.0),
                PhysicalValue::Decimal {
                    unscaled: 1234,
                    scale: 2,
                },
                PhysicalValue::Map(vec![(
                    PhysicalValue::Int32(1),
                    PhysicalValue::Utf8("one".into()),
                )]),
            ],
            vec![
                PhysicalValue::Null,
                PhysicalValue::Null,
                PhysicalValue::Float64(f64::NAN),
                PhysicalValue::Null,
                PhysicalValue::Null,
            ],
        ]
    }

    #[test]
    fn batch_encode_is_byte_identical_to_row_encode() {
        let schema = sample_schema();
        let rows = sample_rows();
        let row_bytes = wire::encode(&RULES, &schema, &rows).unwrap();
        let batch = RecordBatch::from_rows(&schema, &rows).unwrap();
        let batch_bytes = encode(&RULES, &batch).unwrap();
        assert_eq!(row_bytes, batch_bytes);
    }

    #[test]
    fn batch_decode_matches_row_decode() {
        let schema = sample_schema();
        let rows = sample_rows();
        let bytes = wire::encode(&RULES, &schema, &rows).unwrap();
        let batch = decode(&RULES, &bytes).unwrap();
        let (row_schema, row_rows) = wire::decode(&RULES, &bytes).unwrap();
        assert_eq!(batch.schema, row_schema);
        // NaN breaks PartialEq on rows; compare via debug strings.
        assert_eq!(format!("{:?}", batch.to_rows()), format!("{row_rows:?}"));
    }

    #[test]
    fn dictionary_column_encodes_like_plain_strings() {
        let schema = FileSchema::of(vec![("s", PhysicalType::Utf8)]);
        let words = ["alpha", "beta", "alpha", "alpha", "gamma", "beta"];
        let rows: Vec<Vec<PhysicalValue>> = words
            .iter()
            .map(|w| vec![PhysicalValue::Utf8((*w).to_string())])
            .collect();
        let mut dict = Column::dictionary(words.len());
        for w in words {
            assert!(dict.push_checked(&PhysicalValue::Utf8(w.to_string())));
        }
        match &dict.data {
            ColumnData::DictUtf8(d) => assert_eq!(d.distinct(), 3),
            other => panic!("{other:?}"),
        }
        let batch = RecordBatch {
            schema: schema.clone(),
            columns: vec![dict],
        };
        assert_eq!(
            encode(&RULES, &batch).unwrap(),
            wire::encode(&RULES, &schema, &rows).unwrap()
        );
    }

    #[test]
    fn from_rows_reports_wire_encode_errors() {
        let schema = FileSchema::of(vec![("a", PhysicalType::Int32)]);
        let bad_arity = vec![vec![]];
        assert_eq!(
            RecordBatch::from_rows(&schema, &bad_arity).unwrap_err(),
            wire::encode(&RULES, &schema, &bad_arity).unwrap_err()
        );
        let bad_type = vec![vec![PhysicalValue::Utf8("oops".into())]];
        assert_eq!(
            RecordBatch::from_rows(&schema, &bad_type).unwrap_err(),
            wire::encode(&RULES, &schema, &bad_type).unwrap_err()
        );
    }

    #[test]
    fn decode_demotes_type_skewed_columns_instead_of_failing() {
        // A file whose schema says Int32 but whose cell is Int64 — the row
        // decoder reads it happily (self-describing tags); so must we.
        let mut w = Writer { buf: Vec::new() };
        let schema = FileSchema::of(vec![("a", PhysicalType::Int32)]);
        wire::write_header(&mut w, &RULES, &schema);
        w.len(2);
        wire::write_value(&mut w, &PhysicalValue::Int32(1));
        wire::write_value(&mut w, &PhysicalValue::Int64(1 << 40));
        w.buf.extend_from_slice(RULES.magic);
        let batch = decode(&RULES, &w.buf).unwrap();
        assert_eq!(
            batch.to_rows(),
            vec![
                vec![PhysicalValue::Int32(1)],
                vec![PhysicalValue::Int64(1 << 40)]
            ]
        );
        let (_, rows) = wire::decode(&RULES, &w.buf).unwrap();
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn decode_rejects_corruption_like_the_row_decoder() {
        let schema = sample_schema();
        let bytes = wire::encode(&RULES, &schema, &sample_rows()).unwrap();
        assert!(matches!(
            decode(&RULES, b"XXXXrest"),
            Err(FormatError::WrongMagic { .. })
        ));
        assert!(decode(&RULES, &bytes[..bytes.len() / 2]).is_err());
        let mut clipped = bytes.clone();
        clipped.pop();
        assert!(decode(&RULES, &clipped).is_err());
    }

    #[test]
    fn bitmap_tracks_validity_wordwise() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0) && !b.get(1) && b.get(129));
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        let mut c = Bitmap::new();
        for i in 0..130 {
            c.push(i % 3 == 0);
        }
        assert!(b.same_validity(&c));
        c.push(true);
        assert!(!b.same_validity(&c));
    }
}
