//! The Parquet-like container format.
//!
//! Supports the full physical type lattice. The file-metadata key
//! [`TIMESTAMP_REBASE_KEY`] is where a writer records which calendar its
//! timestamps use; readers that ignore it (as Spark's legacy path does)
//! read shifted values for pre-Gregorian instants — the mechanic behind the
//! HIVE-26528-family discrepancy D07.

use crate::physical::{FileSchema, PhysicalValue};
use crate::wire::{self, FormatRules};
use crate::FormatError;

/// Parquet format rules.
pub const RULES: FormatRules = FormatRules {
    name: "parquet-sim",
    magic: b"PAR1",
    allows_small_ints: true,
    allows_non_string_map_keys: true,
};

/// File-metadata key declaring the calendar used for stored timestamps:
/// `"julian"` (hybrid calendar with rebase) or `"proleptic"`.
pub const TIMESTAMP_REBASE_KEY: &str = "timestamp.calendar";

/// Encodes a Parquet file.
pub fn encode(schema: &FileSchema, rows: &[Vec<PhysicalValue>]) -> Result<Vec<u8>, FormatError> {
    wire::encode(&RULES, schema, rows)
}

/// Decodes a Parquet file.
pub fn decode(data: &[u8]) -> Result<(FileSchema, Vec<Vec<PhysicalValue>>), FormatError> {
    wire::decode(&RULES, data)
}

/// Encodes a Parquet file from a columnar batch (byte-identical to [`encode`]).
pub fn encode_batch(batch: &crate::batch::RecordBatch) -> Result<Vec<u8>, FormatError> {
    crate::batch::encode(&RULES, batch)
}

/// Decodes a Parquet file into a columnar batch.
pub fn decode_batch(data: &[u8]) -> Result<crate::batch::RecordBatch, FormatError> {
    crate::batch::decode(&RULES, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalType;

    #[test]
    fn parquet_rejects_foreign_magic() {
        let schema = FileSchema::of(vec![("x", PhysicalType::Int32)]);
        let orc_bytes = crate::orc::encode(&schema, &[]).unwrap();
        let avro_bytes = crate::avro::encode(&schema, &[]).unwrap();
        assert!(decode(&orc_bytes).is_err());
        assert!(decode(&avro_bytes).is_err());
        let own = encode(&schema, &[]).unwrap();
        assert!(decode(&own).is_ok());
    }

    #[test]
    fn metadata_survives_round_trip() {
        let mut schema = FileSchema::of(vec![("ts", PhysicalType::Int64)]);
        schema
            .meta
            .insert(TIMESTAMP_REBASE_KEY.into(), "julian".into());
        let bytes = encode(&schema, &[]).unwrap();
        let (back, _) = decode(&bytes).unwrap();
        assert_eq!(
            back.meta.get(TIMESTAMP_REBASE_KEY).map(String::as_str),
            Some("julian")
        );
    }
}
