//! The physical data model of the container formats.
//!
//! A file stores a [`FileSchema`] (column names, physical types, optional
//! per-column *logical type annotations*, and file-level metadata) followed
//! by rows of [`PhysicalValue`]s. Logical annotations are where one system's
//! serde layer can record information (e.g. "this INT32 is really a
//! TINYINT") that another system's layer may or may not honor — the raw
//! material of several studied discrepancies.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Physical type of a column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysicalType {
    /// Boolean.
    Bool,
    /// 8-bit signed integer (not available in Avro).
    Int8,
    /// 16-bit signed integer (not available in Avro).
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 32-bit IEEE float.
    Float32,
    /// 64-bit IEEE float.
    Float64,
    /// Fixed-point decimal (unscaled bytes plus an in-file scale).
    Decimal,
    /// UTF-8 string.
    Utf8,
    /// Raw bytes.
    Bytes,
    /// List of an element type.
    List(Box<PhysicalType>),
    /// Map from keys to values.
    Map(Box<PhysicalType>, Box<PhysicalType>),
    /// Struct of named fields.
    Struct(Vec<(String, PhysicalType)>),
}

/// A physical value as stored in a file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalValue {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 8-bit integer.
    Int8(i8),
    /// 16-bit integer.
    Int16(i16),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// 32-bit float.
    Float32(f32),
    /// 64-bit float.
    Float64(f64),
    /// Decimal: unscaled digits plus the scale this value was stored with.
    Decimal {
        /// Unscaled integer.
        unscaled: i128,
        /// Scale the writer used.
        scale: u8,
    },
    /// UTF-8 string.
    Utf8(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// List.
    List(Vec<PhysicalValue>),
    /// Map, as ordered pairs.
    Map(Vec<(PhysicalValue, PhysicalValue)>),
    /// Struct, as ordered named fields.
    Struct(Vec<(String, PhysicalValue)>),
}

impl PhysicalValue {
    /// The physical type this value inhabits, if it is not null.
    pub fn physical_type(&self) -> Option<PhysicalType> {
        Some(match self {
            PhysicalValue::Null => return None,
            PhysicalValue::Bool(_) => PhysicalType::Bool,
            PhysicalValue::Int8(_) => PhysicalType::Int8,
            PhysicalValue::Int16(_) => PhysicalType::Int16,
            PhysicalValue::Int32(_) => PhysicalType::Int32,
            PhysicalValue::Int64(_) => PhysicalType::Int64,
            PhysicalValue::Float32(_) => PhysicalType::Float32,
            PhysicalValue::Float64(_) => PhysicalType::Float64,
            PhysicalValue::Decimal { .. } => PhysicalType::Decimal,
            PhysicalValue::Utf8(_) => PhysicalType::Utf8,
            PhysicalValue::Bytes(_) => PhysicalType::Bytes,
            PhysicalValue::List(items) => PhysicalType::List(Box::new(
                items
                    .iter()
                    .find_map(PhysicalValue::physical_type)
                    .unwrap_or(PhysicalType::Utf8),
            )),
            PhysicalValue::Map(pairs) => {
                let k = pairs
                    .iter()
                    .find_map(|(k, _)| k.physical_type())
                    .unwrap_or(PhysicalType::Utf8);
                let v = pairs
                    .iter()
                    .find_map(|(_, v)| v.physical_type())
                    .unwrap_or(PhysicalType::Utf8);
                PhysicalType::Map(Box::new(k), Box::new(v))
            }
            PhysicalValue::Struct(fields) => PhysicalType::Struct(
                fields
                    .iter()
                    .map(|(n, v)| (n.clone(), v.physical_type().unwrap_or(PhysicalType::Utf8)))
                    .collect(),
            ),
        })
    }
}

/// One column of a file schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalColumn {
    /// Column name, exactly as the writer recorded it.
    pub name: String,
    /// Physical type.
    pub ty: PhysicalType,
    /// Optional logical type annotation (writer-specific, e.g. `"tinyint"`,
    /// `"char(8)"`, `"timestamp"`). Readers may honor or ignore it.
    pub logical: Option<String>,
}

/// File-level metadata: free-form key/value pairs recorded by the writer
/// (e.g. `writer=hive`, `timestamp.rebase=julian`).
pub type FileMeta = BTreeMap<String, String>;

/// The self-describing schema stored in every file.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FileSchema {
    /// Columns, in order.
    pub columns: Vec<PhysicalColumn>,
    /// File-level metadata.
    pub meta: FileMeta,
}

impl FileSchema {
    /// Convenience constructor without annotations or metadata.
    pub fn of(columns: Vec<(&str, PhysicalType)>) -> FileSchema {
        FileSchema {
            columns: columns
                .into_iter()
                .map(|(name, ty)| PhysicalColumn {
                    name: name.to_string(),
                    ty,
                    logical: None,
                })
                .collect(),
            meta: FileMeta::new(),
        }
    }

    /// Looks up a column index by exact name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Looks up a column index case-insensitively.
    pub fn index_of_ci(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// Checks that a value is null or inhabits the declared type (shallow for
/// nested types: containers are checked recursively by element).
pub fn value_matches(ty: &PhysicalType, value: &PhysicalValue) -> bool {
    match (ty, value) {
        (_, PhysicalValue::Null) => true,
        (PhysicalType::Bool, PhysicalValue::Bool(_)) => true,
        (PhysicalType::Int8, PhysicalValue::Int8(_)) => true,
        (PhysicalType::Int16, PhysicalValue::Int16(_)) => true,
        (PhysicalType::Int32, PhysicalValue::Int32(_)) => true,
        (PhysicalType::Int64, PhysicalValue::Int64(_)) => true,
        (PhysicalType::Float32, PhysicalValue::Float32(_)) => true,
        (PhysicalType::Float64, PhysicalValue::Float64(_)) => true,
        (PhysicalType::Decimal, PhysicalValue::Decimal { .. }) => true,
        (PhysicalType::Utf8, PhysicalValue::Utf8(_)) => true,
        (PhysicalType::Bytes, PhysicalValue::Bytes(_)) => true,
        (PhysicalType::List(et), PhysicalValue::List(items)) => {
            items.iter().all(|v| value_matches(et, v))
        }
        (PhysicalType::Map(kt, vt), PhysicalValue::Map(pairs)) => pairs
            .iter()
            .all(|(k, v)| value_matches(kt, k) && value_matches(vt, v)),
        (PhysicalType::Struct(fields), PhysicalValue::Struct(values)) => {
            fields.len() == values.len()
                && fields
                    .iter()
                    .zip(values)
                    .all(|((fname, fty), (vname, v))| fname == vname && value_matches(fty, v))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_matches_accepts_nulls_everywhere() {
        assert!(value_matches(&PhysicalType::Int8, &PhysicalValue::Null));
        assert!(value_matches(
            &PhysicalType::List(Box::new(PhysicalType::Utf8)),
            &PhysicalValue::List(vec![PhysicalValue::Null, PhysicalValue::Utf8("x".into())])
        ));
    }

    #[test]
    fn value_matches_rejects_mismatches() {
        assert!(!value_matches(
            &PhysicalType::Int8,
            &PhysicalValue::Int32(5)
        ));
        assert!(!value_matches(
            &PhysicalType::Map(Box::new(PhysicalType::Utf8), Box::new(PhysicalType::Int32)),
            &PhysicalValue::Map(vec![(PhysicalValue::Int32(1), PhysicalValue::Int32(2))])
        ));
        let st = PhysicalType::Struct(vec![("a".into(), PhysicalType::Int32)]);
        assert!(!value_matches(
            &st,
            &PhysicalValue::Struct(vec![("b".into(), PhysicalValue::Int32(1))])
        ));
    }

    #[test]
    fn schema_lookup_case_sensitivity() {
        let schema = FileSchema::of(vec![("Camel", PhysicalType::Int32)]);
        assert_eq!(schema.index_of("Camel"), Some(0));
        assert_eq!(schema.index_of("camel"), None);
        assert_eq!(schema.index_of_ci("CAMEL"), Some(0));
    }

    #[test]
    fn physical_type_of_nested_value() {
        let v = PhysicalValue::Map(vec![(
            PhysicalValue::Utf8("k".into()),
            PhysicalValue::Int64(1),
        )]);
        assert_eq!(
            v.physical_type(),
            Some(PhysicalType::Map(
                Box::new(PhysicalType::Utf8),
                Box::new(PhysicalType::Int64)
            ))
        );
    }
}
