//! The ORC-like container format.
//!
//! Supports the full physical type lattice, including 8/16-bit integers and
//! non-string map keys.

use crate::physical::{FileSchema, PhysicalValue};
use crate::wire::{self, FormatRules};
use crate::FormatError;

/// ORC format rules.
pub const RULES: FormatRules = FormatRules {
    name: "orc-sim",
    magic: b"ORC1",
    allows_small_ints: true,
    allows_non_string_map_keys: true,
};

/// Encodes an ORC file.
pub fn encode(schema: &FileSchema, rows: &[Vec<PhysicalValue>]) -> Result<Vec<u8>, FormatError> {
    wire::encode(&RULES, schema, rows)
}

/// Decodes an ORC file.
pub fn decode(data: &[u8]) -> Result<(FileSchema, Vec<Vec<PhysicalValue>>), FormatError> {
    wire::decode(&RULES, data)
}

/// Encodes an ORC file from a columnar batch (byte-identical to [`encode`]).
pub fn encode_batch(batch: &crate::batch::RecordBatch) -> Result<Vec<u8>, FormatError> {
    crate::batch::encode(&RULES, batch)
}

/// Decodes an ORC file into a columnar batch.
pub fn decode_batch(data: &[u8]) -> Result<crate::batch::RecordBatch, FormatError> {
    crate::batch::decode(&RULES, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalType;

    #[test]
    fn orc_supports_small_ints_and_any_map_keys() {
        let schema = FileSchema::of(vec![
            ("b", PhysicalType::Int8),
            (
                "m",
                PhysicalType::Map(Box::new(PhysicalType::Int32), Box::new(PhysicalType::Utf8)),
            ),
        ]);
        let rows = vec![vec![
            PhysicalValue::Int8(-3),
            PhysicalValue::Map(vec![(
                PhysicalValue::Int32(1),
                PhysicalValue::Utf8("x".into()),
            )]),
        ]];
        let bytes = encode(&schema, &rows).unwrap();
        let (_, back) = decode(&bytes).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn orc_and_avro_magic_differ() {
        let schema = FileSchema::of(vec![("x", PhysicalType::Int32)]);
        let bytes = encode(&schema, &[]).unwrap();
        assert!(crate::avro::decode(&bytes).is_err());
    }
}
