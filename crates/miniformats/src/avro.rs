//! The Avro-like container format.
//!
//! Per the Avro specification, this format has **no 8- or 16-bit integer
//! types** (writers must widen to `int`) and **map keys are always
//! strings**. Both constraints are enforced at encode time; they are the
//! format-level facts behind SPARK-39075 and HIVE-26531.

use crate::physical::{FileSchema, PhysicalValue};
use crate::wire::{self, FormatRules};
use crate::FormatError;

/// Avro format rules.
pub const RULES: FormatRules = FormatRules {
    name: "avro-sim",
    magic: b"AVR1",
    allows_small_ints: false,
    allows_non_string_map_keys: false,
};

/// Encodes an Avro file.
pub fn encode(schema: &FileSchema, rows: &[Vec<PhysicalValue>]) -> Result<Vec<u8>, FormatError> {
    wire::encode(&RULES, schema, rows)
}

/// Decodes an Avro file.
pub fn decode(data: &[u8]) -> Result<(FileSchema, Vec<Vec<PhysicalValue>>), FormatError> {
    wire::decode(&RULES, data)
}

/// Encodes an Avro file from a columnar batch (byte-identical to [`encode`]).
pub fn encode_batch(batch: &crate::batch::RecordBatch) -> Result<Vec<u8>, FormatError> {
    crate::batch::encode(&RULES, batch)
}

/// Decodes an Avro file into a columnar batch.
pub fn decode_batch(data: &[u8]) -> Result<crate::batch::RecordBatch, FormatError> {
    crate::batch::decode(&RULES, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalType;

    #[test]
    fn avro_rejects_small_ints() {
        let schema = FileSchema::of(vec![("b", PhysicalType::Int8)]);
        assert!(matches!(
            encode(&schema, &[]),
            Err(FormatError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn avro_rejects_non_string_map_keys() {
        let schema = FileSchema::of(vec![(
            "m",
            PhysicalType::Map(Box::new(PhysicalType::Int32), Box::new(PhysicalType::Utf8)),
        )]);
        assert!(encode(&schema, &[]).is_err());
        // String keys are fine.
        let ok = FileSchema::of(vec![(
            "m",
            PhysicalType::Map(Box::new(PhysicalType::Utf8), Box::new(PhysicalType::Int32)),
        )]);
        assert!(encode(&ok, &[]).is_ok());
    }

    #[test]
    fn avro_round_trip() {
        let schema = FileSchema::of(vec![("x", PhysicalType::Int32)]);
        let rows = vec![vec![PhysicalValue::Int32(42)]];
        let bytes = encode(&schema, &rows).unwrap();
        let (s, r) = decode(&bytes).unwrap();
        assert_eq!(s, schema);
        assert_eq!(r, rows);
    }
}
