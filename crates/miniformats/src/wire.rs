//! Low-level binary encoding shared by the three container formats.
//!
//! Each format file is: 4 magic bytes, a format version byte, the encoded
//! [`FileSchema`], a row count, the rows, and the magic again as a footer.
//! Integers use zig-zag varints; strings and byte arrays are
//! length-prefixed. The formats differ in magic bytes and in which physical
//! types they admit ([`FormatRules`]).

use crate::physical::{value_matches, FileSchema, PhysicalColumn, PhysicalType, PhysicalValue};
use crate::FormatError;

/// Which physical types a format admits.
#[derive(Debug, Clone, Copy)]
pub struct FormatRules {
    /// Format name for error messages.
    pub name: &'static str,
    /// 4-byte magic.
    pub magic: &'static [u8; 4],
    /// Whether 8/16-bit integers exist in this format.
    pub allows_small_ints: bool,
    /// Whether map keys may be non-string.
    pub allows_non_string_map_keys: bool,
}

impl FormatRules {
    /// Validates a physical type against the format's rules.
    pub fn check_type(&self, ty: &PhysicalType, context: &str) -> Result<(), FormatError> {
        match ty {
            PhysicalType::Int8 | PhysicalType::Int16 if !self.allows_small_ints => {
                Err(FormatError::UnsupportedType {
                    format: self.name,
                    ty: ty.clone(),
                    context: context.to_string(),
                })
            }
            PhysicalType::List(e) => self.check_type(e, context),
            PhysicalType::Map(k, v) => {
                if !self.allows_non_string_map_keys && **k != PhysicalType::Utf8 {
                    return Err(FormatError::UnsupportedType {
                        format: self.name,
                        ty: (**k).clone(),
                        context: format!("{context}: map keys must be strings"),
                    });
                }
                self.check_type(k, context)?;
                self.check_type(v, context)
            }
            PhysicalType::Struct(fields) => {
                for (fname, fty) in fields {
                    self.check_type(fty, &format!("{context}.{fname}"))?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    #[inline]
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn varint(&mut self, v: i128) {
        // Zig-zag then LEB128.
        let mut z = ((v << 1) ^ (v >> 127)) as u128;
        loop {
            let byte = (z & 0x7f) as u8;
            z >>= 7;
            if z == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Tag byte plus zig-zag varint in one append: byte-identical to
    /// `u8(tag)` followed by [`Writer::varint`] for every `i64`, without
    /// 128-bit arithmetic (the batch hot path). The encoded length is
    /// computed up front from the bit width so every branch appends one
    /// constant-size slice — a compile-time-sized copy with a single grow
    /// check, which beats both a byte-at-a-time loop and a fixed 10-byte
    /// fill on every value distribution.
    #[inline]
    pub(crate) fn tagged_varint64(&mut self, tag: u8, v: i64) {
        let z = zigzag64(v);
        if z < 0x80 {
            self.buf.extend_from_slice(&[tag, z as u8]);
            return;
        }
        macro_rules! emit {
            ($n:expr) => {{
                let mut tmp = [0u8; 1 + $n];
                tmp[0] = tag;
                let mut zz = z;
                let mut k = 1;
                while k < $n {
                    tmp[k] = (zz as u8) | 0x80;
                    zz >>= 7;
                    k += 1;
                }
                tmp[$n] = zz as u8;
                self.buf.extend_from_slice(&tmp);
            }};
        }
        match varint64_len(z) {
            2 => emit!(2),
            3 => emit!(3),
            4 => emit!(4),
            5 => emit!(5),
            6 => emit!(6),
            7 => emit!(7),
            8 => emit!(8),
            9 => emit!(9),
            _ => emit!(10),
        }
    }

    pub(crate) fn len(&mut self, v: usize) {
        self.varint(v as i128);
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Zig-zag maps `i64` onto `u64` so small magnitudes get short varints.
#[inline]
pub(crate) fn zigzag64(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// LEB128 length of a zig-zagged value: one byte per started 7-bit group.
#[inline]
pub(crate) fn varint64_len(z: u64) -> usize {
    (64 - (z | 1).leading_zeros() as usize).div_ceil(7)
}

pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn u8(&mut self) -> Result<u8, FormatError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| FormatError::Corrupt("unexpected end of file".into()))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<i128, FormatError> {
        let mut z: u128 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            z |= ((byte & 0x7f) as u128) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 126 {
                return Err(FormatError::Corrupt("varint too long".into()));
            }
        }
        Ok(((z >> 1) as i128) ^ -((z & 1) as i128))
    }

    /// u64-domain varint decode: consumes the same bytes and surfaces the
    /// same corruption errors as [`Reader::varint`]. `Ok(Err(wide))` means
    /// the encoded value was valid but outside `i64` — callers map it to
    /// their own range error exactly as they would the wide read.
    #[inline]
    pub(crate) fn varint64(&mut self) -> Result<Result<i64, i128>, FormatError> {
        // Fast path: with nine bytes in hand the loop below never needs a
        // per-byte bounds check — the compiler sees constant indices into
        // a slice it has already proven long enough.
        if let Some(window) = self.data.get(self.pos..self.pos + 9) {
            let mut z: u64 = 0;
            let mut k = 0usize;
            while k < 9 {
                let byte = window[k];
                z |= ((byte & 0x7f) as u64) << (7 * k as u32);
                k += 1;
                if byte & 0x80 == 0 {
                    self.pos += k;
                    return Ok(Ok(((z >> 1) as i64) ^ -((z & 1) as i64)));
                }
            }
        }
        self.varint64_slow()
    }

    /// The tail of [`Reader::varint64`]: varints at the end of the buffer
    /// or longer than nine bytes (where the tail bits may overflow `u64`).
    fn varint64_slow(&mut self) -> Result<Result<i64, i128>, FormatError> {
        let start = self.pos;
        let mut z: u64 = 0;
        let mut shift = 0u32;
        loop {
            if shift >= 63 {
                // The tail bits no longer fit u64: replay through the wide
                // reader so out-of-range and too-long cases are identical.
                self.pos = start;
                let wide = self.varint()?;
                return Ok(i64::try_from(wide).map_err(|_| wide));
            }
            let byte = self.u8()?;
            z |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        Ok(Ok(((z >> 1) as i64) ^ -((z & 1) as i64)))
    }

    /// Length decode via [`Reader::varint64`]; same bytes and errors as
    /// [`Reader::len`].
    pub(crate) fn len64(&mut self) -> Result<usize, FormatError> {
        match self.varint64()? {
            Ok(v) => usize::try_from(v).map_err(|_| FormatError::Corrupt("negative length".into())),
            Err(wide) => {
                usize::try_from(wide).map_err(|_| FormatError::Corrupt("negative length".into()))
            }
        }
    }

    pub(crate) fn len(&mut self) -> Result<usize, FormatError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| FormatError::Corrupt("negative length".into()))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, FormatError> {
        let n = self.len()?;
        if self.pos + n > self.data.len() {
            return Err(FormatError::Corrupt("byte run past end".into()));
        }
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn str(&mut self) -> Result<String, FormatError> {
        String::from_utf8(self.bytes()?).map_err(|_| FormatError::Corrupt("invalid UTF-8".into()))
    }

    /// Borrows the next length-prefixed byte run without allocating; same
    /// bytes consumed and same errors as [`Reader::bytes`].
    pub(crate) fn bytes_ref(&mut self) -> Result<&'a [u8], FormatError> {
        let n = self.len64()?;
        if self.pos + n > self.data.len() {
            return Err(FormatError::Corrupt("byte run past end".into()));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads `N` raw payload bytes at once; same EOF error as reading
    /// them one [`Reader::u8`] at a time.
    pub(crate) fn array<const N: usize>(&mut self) -> Result<[u8; N], FormatError> {
        let chunk = self
            .data
            .get(self.pos..self.pos + N)
            .ok_or_else(|| FormatError::Corrupt("unexpected end of file".into()))?;
        self.pos += N;
        Ok(chunk.try_into().expect("slice length is N"))
    }
}

pub(crate) fn write_type(w: &mut Writer, ty: &PhysicalType) {
    match ty {
        PhysicalType::Bool => w.u8(1),
        PhysicalType::Int8 => w.u8(2),
        PhysicalType::Int16 => w.u8(3),
        PhysicalType::Int32 => w.u8(4),
        PhysicalType::Int64 => w.u8(5),
        PhysicalType::Float32 => w.u8(6),
        PhysicalType::Float64 => w.u8(7),
        PhysicalType::Decimal => w.u8(8),
        PhysicalType::Utf8 => w.u8(9),
        PhysicalType::Bytes => w.u8(10),
        PhysicalType::List(e) => {
            w.u8(11);
            write_type(w, e);
        }
        PhysicalType::Map(k, v) => {
            w.u8(12);
            write_type(w, k);
            write_type(w, v);
        }
        PhysicalType::Struct(fields) => {
            w.u8(13);
            w.len(fields.len());
            for (name, fty) in fields {
                w.str(name);
                write_type(w, fty);
            }
        }
    }
}

pub(crate) fn read_type(r: &mut Reader) -> Result<PhysicalType, FormatError> {
    Ok(match r.u8()? {
        1 => PhysicalType::Bool,
        2 => PhysicalType::Int8,
        3 => PhysicalType::Int16,
        4 => PhysicalType::Int32,
        5 => PhysicalType::Int64,
        6 => PhysicalType::Float32,
        7 => PhysicalType::Float64,
        8 => PhysicalType::Decimal,
        9 => PhysicalType::Utf8,
        10 => PhysicalType::Bytes,
        11 => PhysicalType::List(Box::new(read_type(r)?)),
        12 => {
            let k = read_type(r)?;
            let v = read_type(r)?;
            PhysicalType::Map(Box::new(k), Box::new(v))
        }
        13 => {
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str()?;
                let fty = read_type(r)?;
                fields.push((name, fty));
            }
            PhysicalType::Struct(fields)
        }
        t => return Err(FormatError::Corrupt(format!("unknown type tag {t}"))),
    })
}

pub(crate) fn write_value(w: &mut Writer, v: &PhysicalValue) {
    match v {
        PhysicalValue::Null => w.u8(0),
        PhysicalValue::Bool(b) => {
            w.u8(1);
            w.u8(*b as u8);
        }
        PhysicalValue::Int8(x) => {
            w.u8(2);
            w.varint(*x as i128);
        }
        PhysicalValue::Int16(x) => {
            w.u8(3);
            w.varint(*x as i128);
        }
        PhysicalValue::Int32(x) => {
            w.u8(4);
            w.varint(*x as i128);
        }
        PhysicalValue::Int64(x) => {
            w.u8(5);
            w.varint(*x as i128);
        }
        PhysicalValue::Float32(x) => {
            w.u8(6);
            w.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        PhysicalValue::Float64(x) => {
            w.u8(7);
            w.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        PhysicalValue::Decimal { unscaled, scale } => {
            w.u8(8);
            w.varint(*unscaled);
            w.u8(*scale);
        }
        PhysicalValue::Utf8(s) => {
            w.u8(9);
            w.str(s);
        }
        PhysicalValue::Bytes(b) => {
            w.u8(10);
            w.bytes(b);
        }
        PhysicalValue::List(items) => {
            w.u8(11);
            w.len(items.len());
            for item in items {
                write_value(w, item);
            }
        }
        PhysicalValue::Map(pairs) => {
            w.u8(12);
            w.len(pairs.len());
            for (k, val) in pairs {
                write_value(w, k);
                write_value(w, val);
            }
        }
        PhysicalValue::Struct(fields) => {
            w.u8(13);
            w.len(fields.len());
            for (name, val) in fields {
                w.str(name);
                write_value(w, val);
            }
        }
    }
}

pub(crate) fn read_value(r: &mut Reader) -> Result<PhysicalValue, FormatError> {
    let tag = r.u8()?;
    read_value_body(r, tag)
}

/// Reads a value whose tag byte has already been consumed. Split out so the
/// columnar decoder in [`crate::batch`] can peek the tag, route primitive
/// payloads into typed buffers, and fall back here for nested values.
pub(crate) fn read_value_body(r: &mut Reader, tag: u8) -> Result<PhysicalValue, FormatError> {
    Ok(match tag {
        0 => PhysicalValue::Null,
        1 => PhysicalValue::Bool(r.u8()? != 0),
        2 => PhysicalValue::Int8(
            i8::try_from(r.varint()?)
                .map_err(|_| FormatError::Corrupt("int8 out of range".into()))?,
        ),
        3 => PhysicalValue::Int16(
            i16::try_from(r.varint()?)
                .map_err(|_| FormatError::Corrupt("int16 out of range".into()))?,
        ),
        4 => PhysicalValue::Int32(
            i32::try_from(r.varint()?)
                .map_err(|_| FormatError::Corrupt("int32 out of range".into()))?,
        ),
        5 => PhysicalValue::Int64(
            i64::try_from(r.varint()?)
                .map_err(|_| FormatError::Corrupt("int64 out of range".into()))?,
        ),
        6 => {
            let mut b = [0u8; 4];
            for slot in &mut b {
                *slot = r.u8()?;
            }
            PhysicalValue::Float32(f32::from_bits(u32::from_le_bytes(b)))
        }
        7 => {
            let mut b = [0u8; 8];
            for slot in &mut b {
                *slot = r.u8()?;
            }
            PhysicalValue::Float64(f64::from_bits(u64::from_le_bytes(b)))
        }
        8 => {
            let unscaled = r.varint()?;
            let scale = r.u8()?;
            PhysicalValue::Decimal { unscaled, scale }
        }
        9 => PhysicalValue::Utf8(r.str()?),
        10 => PhysicalValue::Bytes(r.bytes()?),
        11 => {
            let n = r.len()?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            PhysicalValue::List(items)
        }
        12 => {
            let n = r.len()?;
            let mut pairs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = read_value(r)?;
                let v = read_value(r)?;
                pairs.push((k, v));
            }
            PhysicalValue::Map(pairs)
        }
        13 => {
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let name = r.str()?;
                let v = read_value(r)?;
                fields.push((name, v));
            }
            PhysicalValue::Struct(fields)
        }
        t => return Err(FormatError::Corrupt(format!("unknown value tag {t}"))),
    })
}

pub(crate) const VERSION: u8 = 1;

/// Writes the file prelude: magic, version, schema, and metadata. Shared by
/// the row encoder and the columnar [`crate::batch`] encoder so both emit
/// byte-identical headers.
pub(crate) fn write_header(w: &mut Writer, rules: &FormatRules, schema: &FileSchema) {
    w.buf.extend_from_slice(rules.magic);
    w.u8(VERSION);
    w.len(schema.columns.len());
    for col in &schema.columns {
        w.str(&col.name);
        write_type(w, &col.ty);
        match &col.logical {
            Some(l) => {
                w.u8(1);
                w.str(l);
            }
            None => w.u8(0),
        }
    }
    w.len(schema.meta.len());
    for (k, v) in &schema.meta {
        w.str(k);
        w.str(v);
    }
}

/// Validates magic and footer, returning a reader positioned after the
/// leading magic with the footer stripped.
pub(crate) fn open_reader<'a>(
    rules: &FormatRules,
    data: &'a [u8],
) -> Result<Reader<'a>, FormatError> {
    if data.len() < 8 || &data[..4] != rules.magic {
        return Err(FormatError::WrongMagic {
            expected: std::str::from_utf8(rules.magic).unwrap_or("????"),
        });
    }
    if &data[data.len() - 4..] != rules.magic {
        return Err(FormatError::Corrupt("missing footer magic".into()));
    }
    Ok(Reader {
        data: &data[..data.len() - 4],
        pos: 4,
    })
}

/// Reads the version byte, schema, and metadata (the counterpart of
/// [`write_header`] minus the magic, which [`open_reader`] consumed).
pub(crate) fn read_header(r: &mut Reader) -> Result<FileSchema, FormatError> {
    let version = r.u8()?;
    if version != VERSION {
        return Err(FormatError::Corrupt(format!("unknown version {version}")));
    }
    let ncols = r.len()?;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let name = r.str()?;
        let ty = read_type(r)?;
        let logical = if r.u8()? == 1 { Some(r.str()?) } else { None };
        columns.push(PhysicalColumn { name, ty, logical });
    }
    let nmeta = r.len()?;
    let mut meta = crate::physical::FileMeta::new();
    for _ in 0..nmeta {
        let k = r.str()?;
        let v = r.str()?;
        meta.insert(k, v);
    }
    Ok(FileSchema { columns, meta })
}

/// Encodes a file under the given format rules.
pub fn encode(
    rules: &FormatRules,
    schema: &FileSchema,
    rows: &[Vec<PhysicalValue>],
) -> Result<Vec<u8>, FormatError> {
    for col in &schema.columns {
        rules.check_type(&col.ty, &format!("column {}", col.name))?;
    }
    for row in rows {
        if row.len() != schema.columns.len() {
            return Err(FormatError::Corrupt(format!(
                "row has {} values for {} columns",
                row.len(),
                schema.columns.len()
            )));
        }
        for (col, value) in schema.columns.iter().zip(row) {
            if !value_matches(&col.ty, value) {
                return Err(FormatError::TypeMismatch {
                    column: col.name.clone(),
                    declared: col.ty.clone(),
                    found: format!("{value:?}"),
                });
            }
        }
    }
    let mut w = Writer { buf: Vec::new() };
    write_header(&mut w, rules, schema);
    w.len(rows.len());
    for row in rows {
        for value in row {
            write_value(&mut w, value);
        }
    }
    w.buf.extend_from_slice(rules.magic);
    Ok(w.buf)
}

/// Decodes a file under the given format rules.
pub fn decode(
    rules: &FormatRules,
    data: &[u8],
) -> Result<(FileSchema, Vec<Vec<PhysicalValue>>), FormatError> {
    let mut r = open_reader(rules, data)?;
    let schema = read_header(&mut r)?;
    let ncols = schema.columns.len();
    let nrows = r.len()?;
    let mut rows = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(&mut r)?);
        }
        rows.push(row);
    }
    Ok((schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: FormatRules = FormatRules {
        name: "test",
        magic: b"TST1",
        allows_small_ints: true,
        allows_non_string_map_keys: true,
    };

    fn sample_schema() -> FileSchema {
        let mut s = FileSchema::of(vec![
            ("a", PhysicalType::Int32),
            ("b", PhysicalType::Utf8),
            (
                "m",
                PhysicalType::Map(Box::new(PhysicalType::Int32), Box::new(PhysicalType::Utf8)),
            ),
        ]);
        s.columns[0].logical = Some("tinyint".into());
        s.meta.insert("writer".into(), "test".into());
        s
    }

    fn sample_rows() -> Vec<Vec<PhysicalValue>> {
        vec![
            vec![
                PhysicalValue::Int32(5),
                PhysicalValue::Utf8("hi".into()),
                PhysicalValue::Map(vec![(
                    PhysicalValue::Int32(1),
                    PhysicalValue::Utf8("one".into()),
                )]),
            ],
            vec![
                PhysicalValue::Null,
                PhysicalValue::Null,
                PhysicalValue::Null,
            ],
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let bytes = encode(&RULES, &sample_schema(), &sample_rows()).unwrap();
        let (schema, rows) = decode(&RULES, &bytes).unwrap();
        assert_eq!(schema, sample_schema());
        assert_eq!(rows, sample_rows());
    }

    #[test]
    fn varint_extremes_round_trip() {
        let schema = FileSchema::of(vec![("x", PhysicalType::Decimal)]);
        let rows = vec![
            vec![PhysicalValue::Decimal {
                unscaled: i128::MAX / 2,
                scale: 38,
            }],
            vec![PhysicalValue::Decimal {
                unscaled: i128::MIN / 2,
                scale: 0,
            }],
        ];
        let bytes = encode(&RULES, &schema, &rows).unwrap();
        let (_, back) = decode(&RULES, &bytes).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn float_bit_patterns_survive() {
        let schema = FileSchema::of(vec![("f", PhysicalType::Float64)]);
        let rows = vec![
            vec![PhysicalValue::Float64(f64::NAN)],
            vec![PhysicalValue::Float64(-0.0)],
            vec![PhysicalValue::Float64(f64::INFINITY)],
        ];
        let bytes = encode(&RULES, &schema, &rows).unwrap();
        let (_, back) = decode(&RULES, &bytes).unwrap();
        match &back[0][0] {
            PhysicalValue::Float64(v) => assert!(v.is_nan()),
            other => panic!("{other:?}"),
        }
        match &back[1][0] {
            PhysicalValue::Float64(v) => assert!(v.is_sign_negative() && *v == 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encode_rejects_type_mismatches() {
        let schema = FileSchema::of(vec![("a", PhysicalType::Int32)]);
        let rows = vec![vec![PhysicalValue::Utf8("oops".into())]];
        assert!(matches!(
            encode(&RULES, &schema, &rows),
            Err(FormatError::TypeMismatch { .. })
        ));
        let short = vec![vec![]];
        assert!(matches!(
            encode(&RULES, &schema, &short),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn rules_reject_unsupported_types() {
        let strict = FormatRules {
            name: "strict",
            magic: b"STR1",
            allows_small_ints: false,
            allows_non_string_map_keys: false,
        };
        let schema = FileSchema::of(vec![("a", PhysicalType::Int8)]);
        assert!(matches!(
            encode(&strict, &schema, &[]),
            Err(FormatError::UnsupportedType { .. })
        ));
        let schema = FileSchema::of(vec![(
            "m",
            PhysicalType::Map(Box::new(PhysicalType::Int32), Box::new(PhysicalType::Utf8)),
        )]);
        let err = encode(&strict, &schema, &[]).unwrap_err();
        assert!(matches!(err, FormatError::UnsupportedType { .. }));
        assert!(err.to_string().contains("map keys must be strings"));
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = encode(&RULES, &sample_schema(), &sample_rows()).unwrap();
        // Wrong magic.
        assert!(matches!(
            decode(&RULES, b"XXXXrest"),
            Err(FormatError::WrongMagic { .. })
        ));
        // Truncated body.
        assert!(decode(&RULES, &bytes[..bytes.len() / 2]).is_err());
        // Footer clipped.
        let mut clipped = bytes.clone();
        clipped.pop();
        assert!(decode(&RULES, &clipped).is_err());
    }

    #[test]
    fn deeply_nested_values_round_trip() {
        let inner = PhysicalType::Struct(vec![(
            "xs".into(),
            PhysicalType::List(Box::new(PhysicalType::Int8)),
        )]);
        let schema = FileSchema::of(vec![("s", inner)]);
        let rows = vec![vec![PhysicalValue::Struct(vec![(
            "xs".into(),
            PhysicalValue::List(vec![PhysicalValue::Int8(-5), PhysicalValue::Null]),
        )])]];
        let bytes = encode(&RULES, &schema, &rows).unwrap();
        let (_, back) = decode(&RULES, &bytes).unwrap();
        assert_eq!(back, rows);
    }
}
