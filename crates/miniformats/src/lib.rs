//! `miniformats` — byte-level container formats shared by the simulated
//! systems.
//!
//! ORC, Parquet, and Avro are *specifications*; Spark and Hive each ship
//! their own reader/writer implementations of them. Finding 6 of the paper
//! attributes 25% of data-plane CSI failures to exactly this structure:
//! ad-hoc (de)serialization layers on a common wire format, each with its
//! own conversions and optimizations.
//!
//! This crate implements the *wire* layer only: three self-describing
//! container formats ([`avro`], [`orc`], [`parquet`]) over a common
//! [`physical::PhysicalValue`] model, with per-format physical type
//! constraints (e.g. Avro has no 8/16-bit integers and requires string map
//! keys). The system-specific serde layers — where the studied
//! discrepancies live — are implemented separately by `minihive` and
//! `minispark` on top of this crate.

pub mod avro;
pub mod batch;
pub mod orc;
pub mod parquet;
pub mod physical;
pub mod wire;

pub use batch::{Bitmap, Column, ColumnData, RecordBatch, StringDictionary, VarBuffer};
pub use physical::{FileMeta, FileSchema, PhysicalColumn, PhysicalType, PhysicalValue};

use std::fmt;

/// Errors raised while encoding or decoding a container file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The format does not support a physical type.
    UnsupportedType {
        /// The format name.
        format: &'static str,
        /// The offending type.
        ty: PhysicalType,
        /// Where it appeared (e.g. "column c", "map key").
        context: String,
    },
    /// A value did not match the declared column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        declared: PhysicalType,
        /// What the value actually was.
        found: String,
    },
    /// The byte stream is corrupt or truncated.
    Corrupt(String),
    /// The magic bytes do not match the format.
    WrongMagic {
        /// Expected magic.
        expected: &'static str,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnsupportedType {
                format,
                ty,
                context,
            } => write!(f, "{format} does not support {ty:?} ({context})"),
            FormatError::TypeMismatch {
                column,
                declared,
                found,
            } => write!(
                f,
                "column {column}: declared {declared:?} but value is {found}"
            ),
            FormatError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            FormatError::WrongMagic { expected } => {
                write!(f, "bad magic bytes: expected {expected}")
            }
        }
    }
}

impl std::error::Error for FormatError {}
