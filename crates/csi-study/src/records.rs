//! The 120-case open-source CSI failure dataset (Section 4).
//!
//! The paper's per-row labels are public only in aggregate form (the
//! artifact repository is not reachable offline), so this module
//! *reconstructs* the dataset: the ~25 issues the paper names explicitly
//! carry their real keys and the classifications the paper gives them; the
//! remaining rows are synthetic (`synthetic: true`) and are generated so
//! that **every published aggregate holds exactly** — Table 1 (pairs),
//! Table 2 (planes), Table 3 (symptoms), Tables 4–6 (data-plane root
//! causes), Table 7 + Finding 8 (configuration), Table 8 + Finding 11
//! (control plane), Table 9 + Finding 13 (fixes), and Findings 3–6.
//!
//! The reconstruction is validated by the `analyze` module's tests and by
//! the integration suite, which assert each marginal against the paper.

use csi_core::plane::{InteractionKind, Plane, SystemId};
use csi_core::taxonomy::{
    ApiMisuse, ConfigPattern, ConfigScope, ControlPattern, DataAbstraction, DataPattern,
    DataProperty, FixLocation, FixPattern, MonitoringPattern, RootCause, Symptom,
};
use serde::Serialize;

/// One CSI failure case.
#[derive(Debug, Clone, Serialize)]
pub struct CsiCase {
    /// Issue key (`SPARK-27239`) or a synthetic id (`SYN-...`).
    pub key: String,
    /// The system initiating the interaction.
    pub upstream: SystemId,
    /// The system serving it.
    pub downstream: SystemId,
    /// The interaction channel (Table 1).
    pub channel: InteractionKind,
    /// Failure symptom (Table 3).
    pub symptom: Symptom,
    /// Root-cause discrepancy, classified per plane (Tables 4–8).
    pub root_cause: RootCause,
    /// Fix pattern (Table 9).
    pub fix: FixPattern,
    /// Where the fix landed (Finding 13).
    pub fix_location: FixLocation,
    /// Whether this row is reconstructed rather than paper-named.
    pub synthetic: bool,
    /// One-line description.
    pub note: String,
}

impl CsiCase {
    /// The failure plane.
    pub fn plane(&self) -> Plane {
        self.root_cause.plane()
    }
}

/// The full dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Dataset {
    /// All 120 cases.
    pub cases: Vec<CsiCase>,
}

/// What kind of case a slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    DataTable,
    DataFile,
    DataStream,
    Config,
    Monitoring,
    Control,
}

/// Per-pair slot allocation:
/// (upstream, downstream, channel, table, file, stream, config, monitoring,
/// control). Row order matches Table 1.
const SLOTS: &[(
    SystemId,
    SystemId,
    InteractionKind,
    [usize; 6], // table, file, stream, config, monitoring, control
)] = &[
    (
        SystemId::Spark,
        SystemId::Hive,
        InteractionKind::DataTables,
        [24, 0, 0, 2, 0, 0],
    ),
    (
        SystemId::Spark,
        SystemId::Yarn,
        InteractionKind::ControlResources,
        [0, 0, 0, 7, 3, 9],
    ),
    (
        SystemId::Spark,
        SystemId::Hdfs,
        InteractionKind::DataFiles,
        [0, 7, 0, 1, 0, 0],
    ),
    (
        SystemId::Spark,
        SystemId::Kafka,
        InteractionKind::DataStreaming,
        [0, 0, 3, 2, 0, 0],
    ),
    (
        SystemId::Flink,
        SystemId::Kafka,
        InteractionKind::DataStreaming,
        [3, 0, 4, 4, 0, 1],
    ),
    (
        SystemId::Flink,
        SystemId::Yarn,
        InteractionKind::ControlResources,
        [0, 0, 0, 5, 3, 6],
    ),
    (
        SystemId::Flink,
        SystemId::Hive,
        InteractionKind::DataTables,
        [8, 0, 0, 0, 0, 0],
    ),
    (
        SystemId::Flink,
        SystemId::Hdfs,
        InteractionKind::DataFiles,
        [0, 3, 0, 0, 0, 0],
    ),
    (
        SystemId::Hive,
        SystemId::Spark,
        InteractionKind::ControlCompute,
        [0, 0, 0, 3, 2, 1],
    ),
    (
        SystemId::Hive,
        SystemId::HBase,
        InteractionKind::DataKeyValue,
        [0, 0, 0, 3, 0, 0],
    ),
    (
        SystemId::Hive,
        SystemId::Hdfs,
        InteractionKind::DataFiles,
        [0, 4, 0, 2, 0, 0],
    ),
    (
        SystemId::Hive,
        SystemId::Kafka,
        InteractionKind::DataStreaming,
        [0, 0, 1, 0, 0, 0],
    ),
    (
        SystemId::Hive,
        SystemId::Yarn,
        InteractionKind::ControlResources,
        [0, 0, 0, 0, 1, 1],
    ),
    (
        SystemId::HBase,
        SystemId::Hdfs,
        InteractionKind::DataFiles,
        [0, 2, 0, 0, 0, 2],
    ),
    (
        SystemId::Yarn,
        SystemId::Hdfs,
        InteractionKind::DataFiles,
        [0, 2, 0, 1, 0, 0],
    ),
];

/// A data-plane attribute bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataSpec {
    property: DataProperty,
    pattern: DataPattern,
    serialization: bool,
}

struct Pools {
    table: Vec<DataSpec>,
    file: Vec<DataSpec>,
    stream: Vec<DataSpec>,
    config: Vec<(ConfigPattern, ConfigScope)>,
    monitoring: Vec<MonitoringPattern>,
    control: Vec<ControlPattern>,
    symptoms: Vec<Symptom>,
    fixes: Vec<(FixPattern, FixLocation)>,
}

fn repeat<T: Copy>(spec: &[(T, usize)]) -> Vec<T> {
    let mut out = Vec::new();
    for (item, n) in spec {
        for _ in 0..*n {
            out.push(*item);
        }
    }
    out
}

fn data_spec(property: DataProperty, pattern: DataPattern, serialization: bool) -> DataSpec {
    DataSpec {
        property,
        pattern,
        serialization,
    }
}

impl Pools {
    /// Builds the attribute pools so that Tables 3–9 hold exactly.
    fn new() -> Pools {
        use DataPattern as DP;
        use DataProperty as Pr;
        // Table-abstraction cases (35): Table 5 row "Table" =
        // Address 1, Struct 13, Value 16, API 5; Table 6 and Finding 6
        // respected via the per-cell pattern/serialization mix.
        let table = repeat(&[
            (data_spec(Pr::SchemaValue, DP::TypeConfusion, true), 9),
            (
                data_spec(Pr::SchemaValue, DP::UnsupportedOperation, false),
                4,
            ),
            (data_spec(Pr::SchemaValue, DP::UndefinedValue, false), 3),
            (
                data_spec(Pr::SchemaStructure, DP::UnspokenConvention, true),
                4,
            ),
            (
                data_spec(Pr::SchemaStructure, DP::UnspokenConvention, false),
                3,
            ),
            (
                data_spec(Pr::SchemaStructure, DP::UnsupportedOperation, false),
                4,
            ),
            (data_spec(Pr::SchemaStructure, DP::TypeConfusion, false), 2),
            (data_spec(Pr::Address, DP::UnspokenConvention, false), 1),
            (
                data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false),
                5,
            ),
        ]);
        // File-abstraction cases (18): Address 8, Custom 8, API 2.
        let file = repeat(&[
            (data_spec(Pr::Address, DP::UnspokenConvention, false), 1),
            (data_spec(Pr::Address, DP::UnsupportedOperation, false), 4),
            (data_spec(Pr::Address, DP::WrongApiAssumption, false), 3),
            (data_spec(Pr::CustomProperty, DP::UndefinedValue, false), 4),
            (
                data_spec(Pr::CustomProperty, DP::WrongApiAssumption, false),
                4,
            ),
            (
                data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false),
                2,
            ),
        ]);
        // Stream-abstraction cases (8): Address 1, Struct 1, Value 2, API 4.
        let stream = repeat(&[
            (data_spec(Pr::Address, DP::UnsupportedOperation, false), 1),
            (data_spec(Pr::SchemaStructure, DP::TypeConfusion, false), 1),
            (
                data_spec(Pr::SchemaValue, DP::UnsupportedOperation, true),
                2,
            ),
            (
                data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false),
                4,
            ),
        ]);
        // Configuration cases (30): Table 7 patterns 12/6/10/2 and
        // Finding 8 scopes 21 parameter / 9 component.
        let config = repeat(&[
            ((ConfigPattern::Ignorance, ConfigScope::Parameter), 8),
            ((ConfigPattern::Ignorance, ConfigScope::Component), 4),
            (
                (ConfigPattern::UnexpectedOverride, ConfigScope::Parameter),
                5,
            ),
            (
                (ConfigPattern::UnexpectedOverride, ConfigScope::Component),
                1,
            ),
            (
                (ConfigPattern::InconsistentContext, ConfigScope::Parameter),
                7,
            ),
            (
                (ConfigPattern::InconsistentContext, ConfigScope::Component),
                3,
            ),
            ((ConfigPattern::MishandledValue, ConfigScope::Parameter), 1),
            ((ConfigPattern::MishandledValue, ConfigScope::Component), 1),
        ]);
        // Monitoring cases (9): Section 6.2.2's two patterns.
        let monitoring = repeat(&[
            (MonitoringPattern::ImpairedObservability, 6),
            (MonitoringPattern::ActionTriggering, 3),
        ]);
        // Control cases (20): Table 8 = 13 (8 implicit + 5 context) / 5 / 2.
        let control = repeat(&[
            (
                ControlPattern::ApiSemanticViolation(ApiMisuse::ImplicitSemantics),
                8,
            ),
            (
                ControlPattern::ApiSemanticViolation(ApiMisuse::WrongContext),
                5,
            ),
            (ControlPattern::StateResourceInconsistency, 5),
            (ControlPattern::FeatureInconsistency, 2),
        ]);
        // Symptoms (120): Table 3. Two cell values ("Data loss" = 1 and
        // "Performance issues" = 3 in the Job/Task group) are illegible in
        // our source text and reconstructed so the published totals hold
        // (120 cases, 89 crashing, group sums 20/61/39) — see DESIGN.md.
        let symptoms = repeat(&[
            (Symptom::RuntimeCrashHang, 8),
            (Symptom::StartupFailure, 4),
            (Symptom::SystemPerformance, 3),
            (Symptom::SystemDataLoss, 2),
            (Symptom::SystemUnexpectedBehavior, 3),
            (Symptom::JobTaskFailure, 47),
            (Symptom::JobTaskStartupFailure, 6),
            (Symptom::WrongResults, 3),
            (Symptom::JobDataLoss, 1),
            (Symptom::JobPerformance, 3),
            (Symptom::UsabilityIssue, 1),
            (Symptom::JobTaskCrashHang, 24),
            (Symptom::ReducedObservability, 8),
            (Symptom::OperationUnexpectedBehavior, 5),
            (Symptom::OperationPerformance, 2),
        ]);
        // Fixes (120): Table 9 patterns 38/8/69/5; Finding 13 locations
        // 68 connector / 11 specific / 35 generic / 1 downstream / 5 none.
        let fixes = repeat(&[
            ((FixPattern::Checking, FixLocation::UpstreamConnector), 24),
            ((FixPattern::Checking, FixLocation::UpstreamSpecific), 3),
            ((FixPattern::Checking, FixLocation::UpstreamGeneric), 11),
            (
                (FixPattern::ErrorHandling, FixLocation::UpstreamConnector),
                5,
            ),
            ((FixPattern::ErrorHandling, FixLocation::UpstreamGeneric), 3),
            (
                (FixPattern::Interaction, FixLocation::UpstreamConnector),
                39,
            ),
            ((FixPattern::Interaction, FixLocation::UpstreamSpecific), 8),
            ((FixPattern::Interaction, FixLocation::UpstreamGeneric), 21),
            ((FixPattern::Interaction, FixLocation::Downstream), 1),
            ((FixPattern::Other, FixLocation::None), 5),
        ]);
        Pools {
            table,
            file,
            stream,
            config,
            monitoring,
            control,
            symptoms,
            fixes,
        }
    }

    fn take<T: PartialEq + Copy>(pool: &mut Vec<T>, wanted: T, what: &str) -> T {
        let idx = pool
            .iter()
            .position(|x| *x == wanted)
            .unwrap_or_else(|| panic!("pool exhausted for {what}"));
        pool.remove(idx)
    }
}

/// A paper-named case: full record except pair/channel (looked up from the
/// slot table) and bookkeeping.
struct RealCase {
    key: &'static str,
    upstream: SystemId,
    downstream: SystemId,
    kind: SlotKind,
    symptom: Symptom,
    data: Option<DataSpec>,
    config: Option<(ConfigPattern, ConfigScope)>,
    monitoring: Option<MonitoringPattern>,
    control: Option<ControlPattern>,
    fix: (FixPattern, FixLocation),
    note: &'static str,
}

fn real_cases() -> Vec<RealCase> {
    use ConfigPattern as CP;
    use ConfigScope as CS;
    use DataPattern as DP;
    use DataProperty as Pr;
    use FixLocation as FL;
    use FixPattern as FP;
    use SlotKind as K;
    use SystemId::*;
    vec![
        RealCase {
            key: "SPARK-27239",
            upstream: Spark,
            downstream: Hdfs,
            kind: K::DataFile,
            symptom: Symptom::JobTaskFailure,
            data: Some(data_spec(Pr::CustomProperty, DP::UndefinedValue, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Checking, FL::UpstreamConnector),
            note: "Spark asserts file length >= 0; HDFS reports -1 for compressed data (Fig. 2/4)",
        },
        RealCase {
            key: "SPARK-18910",
            upstream: Spark,
            downstream: Hdfs,
            kind: K::DataFile,
            symptom: Symptom::JobTaskFailure,
            data: Some(data_spec(Pr::Address, DP::UnsupportedOperation, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark SQL did not support UDFs stored as jar files in HDFS",
        },
        RealCase {
            key: "SPARK-21686",
            upstream: Spark,
            downstream: Hive,
            kind: K::DataTable,
            symptom: Symptom::JobTaskFailure,
            data: Some(data_spec(Pr::SchemaStructure, DP::UnspokenConvention, true)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark failed to read column names in ORC files written by Hive",
        },
        RealCase {
            key: "SPARK-21150",
            upstream: Spark,
            downstream: Hive,
            kind: K::DataTable,
            symptom: Symptom::WrongResults,
            data: Some(data_spec(Pr::SchemaStructure, DP::UnspokenConvention, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Checking, FL::UpstreamGeneric),
            note: "A code change lost case sensitivity between the interacting systems",
        },
        RealCase {
            key: "FLINK-17189",
            upstream: Flink,
            downstream: Hive,
            kind: K::DataTable,
            symptom: Symptom::JobTaskFailure,
            data: Some(data_spec(Pr::SchemaValue, DP::TypeConfusion, true)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Flink did not translate TIMESTAMP of Hive Catalog back to PROCTIME",
        },
        RealCase {
            key: "SPARK-19361",
            upstream: Spark,
            downstream: Kafka,
            kind: K::DataStream,
            symptom: Symptom::JobTaskCrashHang,
            data: Some(data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark assumed Kafka offsets always increment by 1 (compaction breaks it)",
        },
        RealCase {
            key: "SPARK-10122",
            upstream: Spark,
            downstream: Kafka,
            kind: K::DataStream,
            symptom: Symptom::JobDataLoss,
            data: Some(data_spec(Pr::SchemaValue, DP::UnsupportedOperation, true)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamGeneric),
            note: "PySpark's core streaming module lost a data attribute during compaction",
        },
        RealCase {
            key: "FLINK-3081",
            upstream: Flink,
            downstream: Kafka,
            kind: K::DataStream,
            symptom: Symptom::JobTaskCrashHang,
            data: Some(data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::ErrorHandling, FL::UpstreamConnector),
            note: "Added a try-catch block to capture exceptions thrown by CSI operations",
        },
        RealCase {
            key: "FLINK-13758",
            upstream: Flink,
            downstream: Hdfs,
            kind: K::DataFile,
            symptom: Symptom::JobTaskFailure,
            data: Some(data_spec(Pr::CustomProperty, DP::WrongApiAssumption, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Upstream had to operate on local and remote files differently and did not",
        },
        RealCase {
            key: "YARN-2790",
            upstream: Yarn,
            downstream: Hdfs,
            kind: K::DataFile,
            symptom: Symptom::JobTaskCrashHang,
            data: Some(data_spec(Pr::ApiSemantics, DP::WrongApiAssumption, false)),
            config: None,
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamSpecific),
            note: "Token renewal moved close to the HDFS operation to reduce expiration risk",
        },
        RealCase {
            key: "SPARK-10181",
            upstream: Spark,
            downstream: Hive,
            kind: K::Config,
            symptom: Symptom::JobTaskFailure,
            data: None,
            config: Some((CP::Ignorance, CS::Parameter)),
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark's Hive client ignored Kerberos configuration (keytab and principal)",
        },
        RealCase {
            key: "SPARK-16901",
            upstream: Spark,
            downstream: Hive,
            kind: K::Config,
            symptom: Symptom::OperationUnexpectedBehavior,
            data: None,
            config: Some((CP::UnexpectedOverride, CS::Parameter)),
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark incorrectly overwrote Hive's configuration when merging with Hadoop's",
        },
        RealCase {
            key: "FLINK-19141",
            upstream: Flink,
            downstream: Yarn,
            kind: K::Config,
            symptom: Symptom::JobTaskStartupFailure,
            data: None,
            config: Some((CP::InconsistentContext, CS::Parameter)),
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Flink and YARN use inconsistent resource allocation configurations (Fig. 3)",
        },
        RealCase {
            key: "SPARK-15046",
            upstream: Spark,
            downstream: Yarn,
            kind: K::Config,
            symptom: Symptom::StartupFailure,
            data: None,
            config: Some((CP::MishandledValue, CS::Parameter)),
            monitoring: None,
            control: None,
            fix: (FP::Checking, FL::UpstreamConnector),
            note: "Spark's ApplicationMaster treated an interval configuration as numeric",
        },
        RealCase {
            key: "HIVE-11250",
            upstream: Hive,
            downstream: Spark,
            kind: K::Config,
            symptom: Symptom::OperationUnexpectedBehavior,
            data: None,
            config: Some((CP::Ignorance, CS::Component)),
            monitoring: None,
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Hive ignored all Spark configuration updates via RemoteHiveSparkClient",
        },
        RealCase {
            key: "SPARK-10851",
            upstream: Spark,
            downstream: Yarn,
            kind: K::Monitoring,
            symptom: Symptom::ReducedObservability,
            data: None,
            config: None,
            monitoring: Some(MonitoringPattern::ImpairedObservability),
            control: None,
            fix: (FP::ErrorHandling, FL::UpstreamConnector),
            note: "Spark's R runner exited silently instead of raising the right exception to YARN",
        },
        RealCase {
            key: "SPARK-3627",
            upstream: Spark,
            downstream: Yarn,
            kind: K::Monitoring,
            symptom: Symptom::ReducedObservability,
            data: None,
            config: None,
            monitoring: Some(MonitoringPattern::ImpairedObservability),
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Spark reported success for failed YARN jobs",
        },
        RealCase {
            key: "FLINK-887",
            upstream: Flink,
            downstream: Yarn,
            kind: K::Monitoring,
            symptom: Symptom::JobTaskCrashHang,
            data: None,
            config: None,
            monitoring: Some(MonitoringPattern::ActionTriggering),
            control: None,
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Flink's JobManager was killed by YARN's pmem monitor (JVM memory sizing)",
        },
        RealCase {
            key: "FLINK-12342",
            upstream: Flink,
            downstream: Yarn,
            kind: K::Control,
            symptom: Symptom::RuntimeCrashHang,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::ApiSemanticViolation(ApiMisuse::ImplicitSemantics)),
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Flink used the container-request API as if synchronous; requests stormed YARN (Fig. 1/5)",
        },
        RealCase {
            key: "FLINK-5542",
            upstream: Flink,
            downstream: Yarn,
            kind: K::Control,
            symptom: Symptom::JobTaskFailure,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::ApiSemanticViolation(ApiMisuse::WrongContext)),
            fix: (FP::Checking, FL::UpstreamConnector),
            note: "A local-vcore API was used in a global context, misreporting available cores",
        },
        RealCase {
            key: "FLINK-4155",
            upstream: Flink,
            downstream: Kafka,
            kind: K::Control,
            symptom: Symptom::JobTaskStartupFailure,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::ApiSemanticViolation(ApiMisuse::WrongContext)),
            fix: (FP::Interaction, FL::UpstreamConnector),
            note: "Partition discovery invoked in the client context, which cannot reach Kafka",
        },
        RealCase {
            key: "HBASE-537",
            upstream: HBase,
            downstream: Hdfs,
            kind: K::Control,
            symptom: Symptom::StartupFailure,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::StateResourceInconsistency),
            fix: (FP::Checking, FL::UpstreamSpecific),
            note: "HBase wrongly assumed HDFS NameNode readiness while it was in safe mode",
        },
        RealCase {
            key: "HBASE-16621",
            upstream: HBase,
            downstream: Hdfs,
            kind: K::Control,
            symptom: Symptom::RuntimeCrashHang,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::StateResourceInconsistency),
            fix: (FP::Checking, FL::UpstreamSpecific),
            note: "Asynchrony-induced stale state from concurrent events",
        },
        RealCase {
            key: "SPARK-2604",
            upstream: Spark,
            downstream: Yarn,
            kind: K::Control,
            symptom: Symptom::JobTaskStartupFailure,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::StateResourceInconsistency),
            fix: (FP::Checking, FL::UpstreamConnector),
            note: "Spark validated executor memory without the overhead it actually requests",
        },
        RealCase {
            key: "YARN-9724",
            upstream: Spark,
            downstream: Yarn,
            kind: K::Control,
            symptom: Symptom::JobTaskFailure,
            data: None,
            config: None,
            monitoring: None,
            control: Some(ControlPattern::FeatureInconsistency),
            fix: (FP::Interaction, FL::Downstream),
            note: "Spark assumed getYarnClusterMetrics is available in all YARN modes; \
                   the downstream fixed the API contract violation",
        },
    ]
}

fn synthetic_note(kind: SlotKind, up: SystemId, down: SystemId, n: usize) -> String {
    let theme = match kind {
        SlotKind::DataTable => "table schema/value discrepancy",
        SlotKind::DataFile => "file addressing/property discrepancy",
        SlotKind::DataStream => "stream offset/record discrepancy",
        SlotKind::Config => "cross-system configuration coherence failure",
        SlotKind::Monitoring => "monitoring signal discrepancy",
        SlotKind::Control => "control-plane API/state discrepancy",
    };
    format!(
        "reconstructed case #{n}: {theme} between {up} and {down} \
         (synthetic row satisfying the paper's aggregates)"
    )
}

impl Dataset {
    /// Builds the 120-case dataset.
    ///
    /// # Examples
    ///
    /// ```
    /// let ds = csi_study::Dataset::load();
    /// assert_eq!(ds.cases.len(), 120);
    /// assert!(ds.cases.iter().any(|c| c.key == "SPARK-27239"));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the internal quota tables are inconsistent — the unit and
    /// integration tests regenerate every published aggregate, so any drift
    /// fails loudly.
    pub fn load() -> Dataset {
        let mut pools = Pools::new();
        let mut cases: Vec<CsiCase> = Vec::with_capacity(120);
        const KINDS: [SlotKind; 6] = [
            SlotKind::DataTable,
            SlotKind::DataFile,
            SlotKind::DataStream,
            SlotKind::Config,
            SlotKind::Monitoring,
            SlotKind::Control,
        ];
        // Remaining synthetic capacity per (slot group, kind).
        let mut remaining: Vec<[usize; 6]> = SLOTS.iter().map(|(_, _, _, c)| *c).collect();
        // Pass 1: place every paper-named case, consuming its published
        // attributes from the pools (so synthetic fill cannot steal them).
        for r in real_cases() {
            let (slot_idx, kind_idx) = SLOTS
                .iter()
                .enumerate()
                .find_map(|(si, (u, d, _, _))| {
                    if *u == r.upstream && *d == r.downstream {
                        let ki = KINDS.iter().position(|k| *k == r.kind)?;
                        (remaining[si][ki] > 0).then_some((si, ki))
                    } else {
                        None
                    }
                })
                .unwrap_or_else(|| panic!("no slot for real case {}", r.key));
            remaining[slot_idx][kind_idx] -= 1;
            let (upstream, downstream, channel, _) = SLOTS[slot_idx];
            cases.push(materialize(r, upstream, downstream, channel, &mut pools));
        }
        // Pass 2: fill the remaining slots synthetically.
        let mut syn_counter = 0usize;
        for (slot_idx, (upstream, downstream, channel, _)) in SLOTS.iter().enumerate() {
            for (kind_idx, kind) in KINDS.iter().enumerate() {
                for _ in 0..remaining[slot_idx][kind_idx] {
                    syn_counter += 1;
                    cases.push(synthesize(
                        *kind,
                        *upstream,
                        *downstream,
                        *channel,
                        syn_counter,
                        &mut pools,
                    ));
                }
            }
        }
        assert_eq!(cases.len(), 120, "dataset must have exactly 120 cases");
        assert!(pools.symptoms.is_empty() && pools.fixes.is_empty());
        Dataset { cases }
    }

    /// Only the paper-named (non-synthetic) cases.
    pub fn named_cases(&self) -> impl Iterator<Item = &CsiCase> {
        self.cases.iter().filter(|c| !c.synthetic)
    }
}

fn data_pool_for(pools: &mut Pools, kind: SlotKind) -> &mut Vec<DataSpec> {
    match kind {
        SlotKind::DataTable => &mut pools.table,
        SlotKind::DataFile => &mut pools.file,
        SlotKind::DataStream => &mut pools.stream,
        _ => unreachable!("not a data slot"),
    }
}

fn abstraction_for(kind: SlotKind) -> DataAbstraction {
    match kind {
        SlotKind::DataTable => DataAbstraction::Table,
        SlotKind::DataFile => DataAbstraction::File,
        SlotKind::DataStream => DataAbstraction::Stream,
        _ => unreachable!("not a data slot"),
    }
}

fn materialize(
    r: RealCase,
    upstream: SystemId,
    downstream: SystemId,
    channel: InteractionKind,
    pools: &mut Pools,
) -> CsiCase {
    let root_cause = match r.kind {
        SlotKind::DataTable | SlotKind::DataFile | SlotKind::DataStream => {
            let spec = r.data.expect("data slot needs a data spec");
            let taken = Pools::take(data_pool_for(pools, r.kind), spec, r.key);
            RootCause::Data {
                abstraction: abstraction_for(r.kind),
                property: taken.property,
                pattern: taken.pattern,
                serialization_rooted: taken.serialization,
            }
        }
        SlotKind::Config => {
            let spec = r.config.expect("config slot needs a config spec");
            let (pattern, scope) = Pools::take(&mut pools.config, spec, r.key);
            RootCause::Config { pattern, scope }
        }
        SlotKind::Monitoring => {
            let spec = r.monitoring.expect("monitoring slot needs a spec");
            let pattern = Pools::take(&mut pools.monitoring, spec, r.key);
            RootCause::Monitoring { pattern }
        }
        SlotKind::Control => {
            let spec = r.control.expect("control slot needs a spec");
            let pattern = Pools::take(&mut pools.control, spec, r.key);
            RootCause::Control { pattern }
        }
    };
    let symptom = Pools::take(&mut pools.symptoms, r.symptom, r.key);
    let fix = Pools::take(&mut pools.fixes, r.fix, r.key);
    CsiCase {
        key: r.key.to_string(),
        upstream,
        downstream,
        channel,
        symptom,
        root_cause,
        fix: fix.0,
        fix_location: fix.1,
        synthetic: false,
        note: r.note.to_string(),
    }
}

fn synthesize(
    kind: SlotKind,
    upstream: SystemId,
    downstream: SystemId,
    channel: InteractionKind,
    n: usize,
    pools: &mut Pools,
) -> CsiCase {
    let root_cause = match kind {
        SlotKind::DataTable | SlotKind::DataFile | SlotKind::DataStream => {
            let spec = data_pool_for(pools, kind).remove(0);
            RootCause::Data {
                abstraction: abstraction_for(kind),
                property: spec.property,
                pattern: spec.pattern,
                serialization_rooted: spec.serialization,
            }
        }
        SlotKind::Config => {
            let (pattern, scope) = pools.config.remove(0);
            RootCause::Config { pattern, scope }
        }
        SlotKind::Monitoring => {
            let pattern = pools.monitoring.remove(0);
            RootCause::Monitoring { pattern }
        }
        SlotKind::Control => {
            let pattern = pools.control.remove(0);
            RootCause::Control { pattern }
        }
    };
    let symptom = pools.symptoms.remove(0);
    let (fix, fix_location) = pools.fixes.remove(0);
    CsiCase {
        key: format!("SYN-{n:03}"),
        upstream,
        downstream,
        channel,
        symptom,
        root_cause,
        fix,
        fix_location,
        synthetic: true,
        note: synthetic_note(kind, upstream, downstream, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_loads_with_120_cases() {
        let ds = Dataset::load();
        assert_eq!(ds.cases.len(), 120);
        assert_eq!(ds.named_cases().count(), 25);
    }

    #[test]
    fn keys_are_unique() {
        let ds = Dataset::load();
        let mut keys: Vec<&str> = ds.cases.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn named_cases_carry_their_published_classifications() {
        let ds = Dataset::load();
        let by_key = |k: &str| {
            ds.cases
                .iter()
                .find(|c| c.key == k)
                .unwrap_or_else(|| panic!("{k} missing"))
        };
        let spark_27239 = by_key("SPARK-27239");
        assert_eq!(spark_27239.plane(), Plane::Data);
        assert!(matches!(
            spark_27239.root_cause,
            RootCause::Data {
                property: DataProperty::CustomProperty,
                pattern: DataPattern::UndefinedValue,
                ..
            }
        ));
        assert_eq!(spark_27239.fix, FixPattern::Checking);

        let flink_12342 = by_key("FLINK-12342");
        assert_eq!(flink_12342.plane(), Plane::Control);
        assert_eq!(flink_12342.fix, FixPattern::Interaction);

        let flink_19141 = by_key("FLINK-19141");
        assert_eq!(flink_19141.plane(), Plane::Management);

        let yarn_9724 = by_key("YARN-9724");
        assert_eq!(yarn_9724.fix_location, FixLocation::Downstream);
        assert!(matches!(
            yarn_9724.root_cause,
            RootCause::Control {
                pattern: ControlPattern::FeatureInconsistency
            }
        ));
    }

    #[test]
    fn channels_match_table_1_pairs() {
        let ds = Dataset::load();
        let count = |u: SystemId, d: SystemId| {
            ds.cases
                .iter()
                .filter(|c| c.upstream == u && c.downstream == d)
                .count()
        };
        use SystemId::*;
        assert_eq!(count(Spark, Hive), 26);
        assert_eq!(count(Spark, Yarn), 19);
        assert_eq!(count(Spark, Hdfs), 8);
        assert_eq!(count(Spark, Kafka), 5);
        assert_eq!(count(Flink, Kafka), 12);
        assert_eq!(count(Flink, Yarn), 14);
        assert_eq!(count(Flink, Hive), 8);
        assert_eq!(count(Flink, Hdfs), 3);
        assert_eq!(count(Hive, Spark), 6);
        assert_eq!(count(Hive, HBase), 3);
        assert_eq!(count(Hive, Hdfs), 6);
        assert_eq!(count(Hive, Kafka), 1);
        assert_eq!(count(Hive, Yarn), 2);
        assert_eq!(count(HBase, Hdfs), 4);
        assert_eq!(count(Yarn, Hdfs), 3);
    }
}
