//! The 55 public cloud incident reports of Section 3.
//!
//! The paper samples 20 GCP and 20 Azure incidents and collects all 15 AWS
//! post-event summaries; 11 of the 55 are CSI-failure-induced. Four of the
//! CSI incidents are described in the paper (the GCP User-ID quota outage,
//! an App Engine scheduling incident, a BigQuery metadata-query incident,
//! and a Compute Engine configuration-update incident); the rest are
//! reconstructed to match the published statistics: durations from 10
//! minutes to 19 hours with a median of 106 minutes, 8/11 impairing
//! external services, and 4/11 mentioning interaction-related code fixes.

use csi_core::plane::Plane;

/// A public cloud provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provider {
    /// Google Cloud Platform.
    Gcp,
    /// Microsoft Azure.
    Azure,
    /// Amazon Web Services.
    Aws,
}

/// One incident report.
#[derive(Debug, Clone)]
pub struct CloudIncident {
    /// Report identifier.
    pub id: String,
    /// Provider.
    pub provider: Provider,
    /// Whether the incident was caused by a CSI failure.
    pub is_csi: bool,
    /// Outage duration in minutes (CSI incidents only).
    pub duration_minutes: Option<u32>,
    /// Whether other external production services were impaired.
    pub impaired_external: bool,
    /// The plane of the failed interaction, when the report reveals it.
    pub plane_hint: Option<Plane>,
    /// Whether the postmortem mentions interaction-related code fixes.
    pub mentions_interaction_fix: bool,
    /// One-line summary.
    pub summary: String,
}

/// Loads the 55-incident dataset.
pub fn load_incidents() -> Vec<CloudIncident> {
    let mut out = Vec::with_capacity(55);
    // The eleven CSI incidents. Durations are chosen to reproduce the
    // published span (10 min .. 19 h) and median (106 min).
    type CsiIncidentSpec = (Provider, u32, bool, Option<Plane>, bool, &'static str);
    let csi: [CsiIncidentSpec; 11] = [
        (
            Provider::Gcp,
            106,
            true,
            Some(Plane::Management),
            true,
            "User-ID outage: a deregistered monitor reported 0 usage; the quota system \
             interpreted it as expected load and slashed the quota (upstream of YouTube/Gmail)",
        ),
        (
            Provider::Gcp,
            45,
            true,
            Some(Plane::Control),
            false,
            "App Engine incident rooted in cross-system scheduling interaction",
        ),
        (
            Provider::Gcp,
            10,
            false,
            Some(Plane::Data),
            true,
            "BigQuery incident rooted in cross-system metadata queries",
        ),
        (
            Provider::Gcp,
            180,
            true,
            Some(Plane::Management),
            false,
            "Compute Engine incident rooted in a cross-system configuration update",
        ),
        (
            Provider::Azure,
            1140,
            true,
            None,
            true,
            "19-hour Azure incident manifested through interactions across service boundaries",
        ),
        (
            Provider::Azure,
            90,
            true,
            None,
            false,
            "Azure CSI incident (reconstructed)",
        ),
        (
            Provider::Azure,
            240,
            false,
            None,
            false,
            "Azure CSI incident (reconstructed)",
        ),
        (
            Provider::Azure,
            60,
            true,
            None,
            true,
            "Azure CSI incident (reconstructed)",
        ),
        (
            Provider::Aws,
            400,
            true,
            None,
            false,
            "AWS CSI incident (reconstructed)",
        ),
        (
            Provider::Aws,
            130,
            true,
            None,
            false,
            "AWS CSI incident (reconstructed)",
        ),
        (
            Provider::Aws,
            25,
            false,
            None,
            false,
            "AWS CSI incident (reconstructed)",
        ),
    ];
    for (i, (provider, duration, impaired, plane, fix, summary)) in csi.into_iter().enumerate() {
        out.push(CloudIncident {
            id: format!("CSI-INC-{:02}", i + 1),
            provider,
            is_csi: true,
            duration_minutes: Some(duration),
            impaired_external: impaired,
            plane_hint: plane,
            mentions_interaction_fix: fix,
            summary: summary.to_string(),
        });
    }
    // The remaining 44 sampled incidents are not CSI failures.
    let fill = [
        (Provider::Gcp, 16usize),
        (Provider::Azure, 16),
        (Provider::Aws, 12),
    ];
    let mut n = 0;
    for (provider, count) in fill {
        for _ in 0..count {
            n += 1;
            out.push(CloudIncident {
                id: format!("OTHER-INC-{n:02}"),
                provider,
                is_csi: false,
                duration_minutes: None,
                impaired_external: false,
                plane_hint: None,
                mentions_interaction_fix: false,
                summary: "sampled incident not caused by a CSI failure".to_string(),
            });
        }
    }
    out
}

/// Median of the CSI incident durations, in minutes.
pub fn median_csi_duration(incidents: &[CloudIncident]) -> u32 {
    let mut d: Vec<u32> = incidents
        .iter()
        .filter_map(|i| if i.is_csi { i.duration_minutes } else { None })
        .collect();
    d.sort_unstable();
    d[d.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_1_counts() {
        let incidents = load_incidents();
        assert_eq!(incidents.len(), 55);
        let csi = incidents.iter().filter(|i| i.is_csi).count();
        assert_eq!(csi, 11); // 20% of 55.
        let per = |p: Provider| incidents.iter().filter(|i| i.provider == p).count();
        assert_eq!(per(Provider::Gcp), 20);
        assert_eq!(per(Provider::Azure), 20);
        assert_eq!(per(Provider::Aws), 15);
    }

    #[test]
    fn duration_statistics_match_section_3() {
        let incidents = load_incidents();
        let durations: Vec<u32> = incidents
            .iter()
            .filter_map(|i| i.duration_minutes)
            .collect();
        assert_eq!(durations.iter().min(), Some(&10));
        assert_eq!(durations.iter().max(), Some(&1140)); // 19 hours.
        assert_eq!(median_csi_duration(&incidents), 106);
    }

    #[test]
    fn cascade_and_fix_mentions_match_section_3() {
        let incidents = load_incidents();
        let impaired = incidents
            .iter()
            .filter(|i| i.is_csi && i.impaired_external)
            .count();
        assert_eq!(impaired, 8); // 8/11 impaired external services.
        let fixes = incidents
            .iter()
            .filter(|i| i.is_csi && i.mentions_interaction_fix)
            .count();
        assert_eq!(fixes, 4); // Only 4/11 mention interaction code fixes.
    }
}
