//! Regenerates every table of the paper from the dataset.

use crate::records::{CsiCase, Dataset};
use csi_core::plane::{InteractionKind, Plane, SystemId};
use csi_core::taxonomy::{
    ApiMisuse, ConfigPattern, ConfigScope, ControlPattern, DataAbstraction, DataPattern,
    DataProperty, FixLocation, FixPattern, MonitoringPattern, RootCause, Symptom, SymptomGroup,
};

/// Table 1: (upstream, downstream, channel, count).
pub fn table1(ds: &Dataset) -> Vec<(SystemId, SystemId, InteractionKind, usize)> {
    let mut rows: Vec<(SystemId, SystemId, InteractionKind, usize)> = Vec::new();
    for c in &ds.cases {
        match rows
            .iter_mut()
            .find(|(u, d, _, _)| *u == c.upstream && *d == c.downstream)
        {
            Some(row) => row.3 += 1,
            None => rows.push((c.upstream, c.downstream, c.channel, 1)),
        }
    }
    rows
}

/// Table 2: failures per plane.
pub fn plane_table(ds: &Dataset) -> Vec<(Plane, usize)> {
    Plane::ALL
        .iter()
        .map(|&p| (p, ds.cases.iter().filter(|c| c.plane() == p).count()))
        .collect()
}

/// Table 3: failures per symptom, in table order with groups.
pub fn symptom_table(ds: &Dataset) -> Vec<(SymptomGroup, Symptom, usize)> {
    Symptom::ALL
        .iter()
        .map(|&s| {
            (
                s.group(),
                s,
                ds.cases.iter().filter(|c| c.symptom == s).count(),
            )
        })
        .collect()
}

/// Finding 3: how many failures manifest through crashing behavior.
pub fn crashing_count(ds: &Dataset) -> usize {
    ds.cases.iter().filter(|c| c.symptom.is_crashing()).count()
}

fn data_cases(
    ds: &Dataset,
) -> impl Iterator<Item = (&CsiCase, DataAbstraction, DataProperty, DataPattern, bool)> {
    ds.cases.iter().filter_map(|c| match &c.root_cause {
        RootCause::Data {
            abstraction,
            property,
            pattern,
            serialization_rooted,
        } => Some((c, *abstraction, *property, *pattern, *serialization_rooted)),
        _ => None,
    })
}

/// Table 4: data-plane failures per property.
pub fn data_property_table(ds: &Dataset) -> Vec<(DataProperty, usize)> {
    DataProperty::ALL
        .iter()
        .map(|&p| {
            (
                p,
                data_cases(ds)
                    .filter(|(_, _, prop, _, _)| *prop == p)
                    .count(),
            )
        })
        .collect()
}

/// Finding 4 splits: (metadata, typical metadata, custom metadata, other).
pub fn metadata_split(ds: &Dataset) -> (usize, usize, usize, usize) {
    let mut metadata = 0;
    let mut typical = 0;
    let mut custom = 0;
    let mut other = 0;
    for (_, _, prop, _, _) in data_cases(ds) {
        if prop.is_metadata() {
            metadata += 1;
            if prop.is_typical_metadata() {
                typical += 1;
            } else {
                custom += 1;
            }
        } else {
            other += 1;
        }
    }
    (metadata, typical, custom, other)
}

/// Table 5: abstraction × property matrix, rows in
/// [`DataAbstraction::ALL`] order, columns in [`DataProperty::ALL`] order.
pub fn abstraction_matrix(ds: &Dataset) -> [[usize; 5]; 4] {
    let mut m = [[0usize; 5]; 4];
    for (_, abstraction, property, _, _) in data_cases(ds) {
        let r = DataAbstraction::ALL
            .iter()
            .position(|a| *a == abstraction)
            .expect("known abstraction");
        let c = DataProperty::ALL
            .iter()
            .position(|p| *p == property)
            .expect("known property");
        m[r][c] += 1;
    }
    m
}

/// Table 6: data-plane discrepancy patterns.
pub fn data_pattern_table(ds: &Dataset) -> Vec<(DataPattern, usize)> {
    DataPattern::ALL
        .iter()
        .map(|&p| {
            (
                p,
                data_cases(ds).filter(|(_, _, _, pat, _)| *pat == p).count(),
            )
        })
        .collect()
}

/// Finding 6: failures root-caused by data serialization.
pub fn serialization_rooted_count(ds: &Dataset) -> usize {
    data_cases(ds).filter(|(_, _, _, _, s)| *s).count()
}

/// Table 7: configuration discrepancy patterns.
pub fn config_pattern_table(ds: &Dataset) -> Vec<(ConfigPattern, usize)> {
    ConfigPattern::ALL
        .iter()
        .map(|&p| {
            (
                p,
                ds.cases
                    .iter()
                    .filter(|c| matches!(c.root_cause, RootCause::Config { pattern, .. } if pattern == p))
                    .count(),
            )
        })
        .collect()
}

/// Finding 8: (parameter-scoped, component-scoped) configuration failures.
pub fn config_scope_split(ds: &Dataset) -> (usize, usize) {
    let mut param = 0;
    let mut comp = 0;
    for c in &ds.cases {
        if let RootCause::Config { scope, .. } = c.root_cause {
            match scope {
                ConfigScope::Parameter => param += 1,
                ConfigScope::Component => comp += 1,
            }
        }
    }
    (param, comp)
}

/// Section 6.2.2: (impaired observability, action triggering).
pub fn monitoring_split(ds: &Dataset) -> (usize, usize) {
    let mut obs = 0;
    let mut act = 0;
    for c in &ds.cases {
        if let RootCause::Monitoring { pattern } = c.root_cause {
            match pattern {
                MonitoringPattern::ImpairedObservability => obs += 1,
                MonitoringPattern::ActionTriggering => act += 1,
            }
        }
    }
    (obs, act)
}

/// Table 8 rows: (API semantic violation, state/resource, feature).
pub fn control_pattern_table(ds: &Dataset) -> (usize, usize, usize) {
    let mut api = 0;
    let mut state = 0;
    let mut feature = 0;
    for c in &ds.cases {
        if let RootCause::Control { pattern } = c.root_cause {
            match pattern {
                ControlPattern::ApiSemanticViolation(_) => api += 1,
                ControlPattern::StateResourceInconsistency => state += 1,
                ControlPattern::FeatureInconsistency => feature += 1,
            }
        }
    }
    (api, state, feature)
}

/// Finding 11: (implicit-semantics misuses, wrong-context misuses).
pub fn api_misuse_split(ds: &Dataset) -> (usize, usize) {
    let mut implicit = 0;
    let mut context = 0;
    for c in &ds.cases {
        if let RootCause::Control {
            pattern: ControlPattern::ApiSemanticViolation(m),
        } = c.root_cause
        {
            match m {
                ApiMisuse::ImplicitSemantics => implicit += 1,
                ApiMisuse::WrongContext => context += 1,
            }
        }
    }
    (implicit, context)
}

/// Table 9: fix patterns.
pub fn fix_table(ds: &Dataset) -> Vec<(FixPattern, usize)> {
    FixPattern::ALL
        .iter()
        .map(|&p| (p, ds.cases.iter().filter(|c| c.fix == p).count()))
        .collect()
}

/// Finding 13 splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixLocations {
    /// Cases with a merged code fix.
    pub fixed: usize,
    /// Fixes in upstream code specific to the downstream (connector +
    /// non-modular).
    pub upstream_specific: usize,
    /// ... of which in dedicated connector modules.
    pub in_connectors: usize,
    /// Fixes in generic upstream code.
    pub upstream_generic: usize,
    /// Fixes applied by the downstream (the YARN-9724 exception).
    pub downstream: usize,
}

/// Computes Finding 13's fix-location splits.
pub fn fix_locations(ds: &Dataset) -> FixLocations {
    let mut out = FixLocations {
        fixed: 0,
        upstream_specific: 0,
        in_connectors: 0,
        upstream_generic: 0,
        downstream: 0,
    };
    for c in &ds.cases {
        match c.fix_location {
            FixLocation::None => {}
            FixLocation::UpstreamConnector => {
                out.fixed += 1;
                out.upstream_specific += 1;
                out.in_connectors += 1;
            }
            FixLocation::UpstreamSpecific => {
                out.fixed += 1;
                out.upstream_specific += 1;
            }
            FixLocation::UpstreamGeneric => {
                out.fixed += 1;
                out.upstream_generic += 1;
            }
            FixLocation::Downstream => {
                out.fixed += 1;
                out.downstream += 1;
            }
        }
    }
    out
}

/// Finding 12: fixes that only add checking or error handling.
pub fn checking_or_error_handling_fixes(ds: &Dataset) -> usize {
    ds.cases
        .iter()
        .filter(|c| matches!(c.fix, FixPattern::Checking | FixPattern::ErrorHandling))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::load()
    }

    #[test]
    fn table_2_matches_the_paper() {
        let rows = plane_table(&ds());
        assert_eq!(
            rows,
            vec![
                (Plane::Control, 20),
                (Plane::Data, 61),
                (Plane::Management, 39)
            ]
        );
    }

    #[test]
    fn table_3_totals_and_crashing_match() {
        let d = ds();
        let rows = symptom_table(&d);
        let total: usize = rows.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 120);
        assert_eq!(crashing_count(&d), 89);
        // Group sums: System 20, Job/Task 61, Operation 39.
        let group_sum = |g: SymptomGroup| -> usize {
            rows.iter()
                .filter(|(gg, _, _)| *gg == g)
                .map(|(_, _, n)| n)
                .sum()
        };
        assert_eq!(group_sum(SymptomGroup::System), 20);
        assert_eq!(group_sum(SymptomGroup::JobTask), 61);
        assert_eq!(group_sum(SymptomGroup::Operation), 39);
        // Spot-check the biggest cells.
        assert!(rows.contains(&(SymptomGroup::JobTask, Symptom::JobTaskFailure, 47)));
        assert!(rows.contains(&(SymptomGroup::Operation, Symptom::JobTaskCrashHang, 24)));
    }

    #[test]
    fn table_4_and_finding_4_match() {
        let d = ds();
        let rows = data_property_table(&d);
        assert_eq!(
            rows,
            vec![
                (DataProperty::Address, 10),
                (DataProperty::SchemaStructure, 14),
                (DataProperty::SchemaValue, 18),
                (DataProperty::CustomProperty, 8),
                (DataProperty::ApiSemantics, 11),
            ]
        );
        assert_eq!(metadata_split(&d), (50, 42, 8, 11));
    }

    #[test]
    fn table_5_matrix_matches() {
        let m = abstraction_matrix(&ds());
        // Rows: Table, File, Stream, KV; columns: Address, Struct, Value,
        // Custom, API.
        assert_eq!(m[0], [1, 13, 16, 0, 5]);
        assert_eq!(m[1], [8, 0, 0, 8, 2]);
        assert_eq!(m[2], [1, 1, 2, 0, 4]);
        assert_eq!(m[3], [0, 0, 0, 0, 0]);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 61);
    }

    #[test]
    fn table_6_and_finding_6_match() {
        let d = ds();
        let rows = data_pattern_table(&d);
        assert_eq!(
            rows,
            vec![
                (DataPattern::TypeConfusion, 12),
                (DataPattern::UnsupportedOperation, 15),
                (DataPattern::UnspokenConvention, 9),
                (DataPattern::UndefinedValue, 7),
                (DataPattern::WrongApiAssumption, 18),
            ]
        );
        assert_eq!(serialization_rooted_count(&d), 15);
    }

    #[test]
    fn table_7_and_finding_8_match() {
        let d = ds();
        assert_eq!(
            config_pattern_table(&d),
            vec![
                (ConfigPattern::Ignorance, 12),
                (ConfigPattern::UnexpectedOverride, 6),
                (ConfigPattern::InconsistentContext, 10),
                (ConfigPattern::MishandledValue, 2),
            ]
        );
        assert_eq!(config_scope_split(&d), (21, 9));
        assert_eq!(monitoring_split(&d), (6, 3));
    }

    #[test]
    fn table_8_and_finding_11_match() {
        let d = ds();
        assert_eq!(control_pattern_table(&d), (13, 5, 2));
        assert_eq!(api_misuse_split(&d), (8, 5));
    }

    #[test]
    fn table_9_and_findings_12_13_match() {
        let d = ds();
        assert_eq!(
            fix_table(&d),
            vec![
                (FixPattern::Checking, 38),
                (FixPattern::ErrorHandling, 8),
                (FixPattern::Interaction, 69),
                (FixPattern::Other, 5),
            ]
        );
        assert_eq!(checking_or_error_handling_fixes(&d), 46);
        let loc = fix_locations(&d);
        assert_eq!(loc.fixed, 115);
        assert_eq!(loc.upstream_specific, 79);
        assert_eq!(loc.in_connectors, 68);
        assert_eq!(loc.downstream, 1);
        // The paper's prose says "the remaining 36 cases" were generic; it
        // counts the single downstream fix among them. We keep the
        // downstream fix separate: 35 generic + 1 downstream.
        assert_eq!(loc.upstream_generic, 35);
    }

    #[test]
    fn table_1_row_counts_sum_to_120() {
        let rows = table1(&ds());
        assert_eq!(rows.len(), 15);
        let total: usize = rows.iter().map(|(_, _, _, n)| n).sum();
        assert_eq!(total, 120);
    }
}
