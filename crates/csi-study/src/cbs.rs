//! The CBS (Cloud Bug Study, 2014) comparison sample of Section 4.
//!
//! Applying the paper's collection criteria to the CBS dataset yields 105
//! issues: 39 CSI failures, 15 dependency failures, and 51 issues that are
//! not cross-system at all. Among the 39 CSI failures, control-plane
//! interactions dominate (69%), unlike the modern dataset — the
//! Hadoop-era stack had a much less heterogeneous data plane.

use csi_core::plane::{Plane, SystemId};

/// Classification of one sampled CBS issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbsClass {
    /// A genuine CSI failure, with its plane.
    Csi(Plane),
    /// A dependency failure (the downstream simply failed).
    Dependency,
    /// Not a cross-system issue.
    NotCrossSystem,
}

/// One sampled CBS issue.
#[derive(Debug, Clone)]
pub struct CbsIssue {
    /// Synthetic key within the sample.
    pub key: String,
    /// A CBS-era system involved.
    pub system: SystemId,
    /// Classification.
    pub class: CbsClass,
}

/// Loads the 105-issue CBS comparison sample.
pub fn load_cbs_sample() -> Vec<CbsIssue> {
    let mut out = Vec::with_capacity(105);
    let systems = [
        SystemId::MapReduce,
        SystemId::Hdfs,
        SystemId::HBase,
        SystemId::Cassandra,
        SystemId::ZooKeeper,
        SystemId::Flume,
    ];
    let push = |class: CbsClass, count: usize, out: &mut Vec<CbsIssue>| {
        for i in 0..count {
            let n = out.len() + 1;
            out.push(CbsIssue {
                key: format!("CBS-{n:03}"),
                system: systems[i % systems.len()],
                class,
            });
        }
    };
    // 39 CSI failures: 27 control (69%), 7 data, 5 management.
    push(CbsClass::Csi(Plane::Control), 27, &mut out);
    push(CbsClass::Csi(Plane::Data), 7, &mut out);
    push(CbsClass::Csi(Plane::Management), 5, &mut out);
    // 15 dependency failures and 51 non-cross-system issues.
    push(CbsClass::Dependency, 15, &mut out);
    push(CbsClass::NotCrossSystem, 51, &mut out);
    out
}

/// Share of CBS CSI failures on the control plane, in percent (rounded).
pub fn cbs_control_plane_percent(sample: &[CbsIssue]) -> u32 {
    let csi: Vec<&CbsIssue> = sample
        .iter()
        .filter(|i| matches!(i.class, CbsClass::Csi(_)))
        .collect();
    let control = csi
        .iter()
        .filter(|i| matches!(i.class, CbsClass::Csi(Plane::Control)))
        .count();
    ((control as f64 / csi.len() as f64) * 100.0).round() as u32
}

/// Collection-pipeline constants of Section 4 (our dataset, not CBS).
pub mod sampling {
    /// Issues matching the multi-system heuristic across the seven JIRAs.
    pub const CANDIDATE_ISSUES: usize = 1428;
    /// Randomly sampled and hand-labeled issues.
    pub const SAMPLED_ISSUES: usize = 360;
    /// ... of which CSI failures.
    pub const CSI_FAILURES: usize = 120;
    /// ... of which dependency failures.
    pub const DEPENDENCY_FAILURES: usize = 26;
    /// Person-hours the labeling took.
    pub const PERSON_HOURS: usize = 180;
    /// Share of Spark's integration tests that cross-test dependent
    /// systems (Section 5.3).
    pub const SPARK_CROSS_TEST_PERCENT: usize = 6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbs_counts_match_section_4() {
        let sample = load_cbs_sample();
        assert_eq!(sample.len(), 105);
        let csi = sample
            .iter()
            .filter(|i| matches!(i.class, CbsClass::Csi(_)))
            .count();
        let dep = sample
            .iter()
            .filter(|i| i.class == CbsClass::Dependency)
            .count();
        assert_eq!(csi, 39);
        assert_eq!(dep, 15);
        // "Only 37% (39/105) of their cross-system failures are CSI".
        assert_eq!(
            (csi as f64 / sample.len() as f64 * 100.0).round() as u32,
            37
        );
    }

    #[test]
    fn cbs_control_plane_share_is_69_percent() {
        let sample = load_cbs_sample();
        assert_eq!(cbs_control_plane_percent(&sample), 69);
    }

    #[test]
    fn sampling_funnel_is_consistent() {
        use sampling::*;
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(CSI_FAILURES + DEPENDENCY_FAILURES <= SAMPLED_ISSUES);
            assert!(SAMPLED_ISSUES <= CANDIDATE_ISSUES);
            // 120/360 = one third of the sample are CSI failures.
            assert_eq!(CSI_FAILURES * 3, SAMPLED_ISSUES);
        }
    }
}
