//! ASCII rendering of the regenerated tables.

use crate::analyze;
use crate::records::Dataset;
use csi_core::taxonomy::{DataAbstraction, DataProperty};

/// Renders a simple two-column-plus table.
pub fn ascii_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let rule: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+";
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("| {:w$} ", c, w = widths[i]));
        }
        line.push('|');
        line
    };
    let mut out = format!("{title}\n{rule}\n");
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Renders Table 1.
pub fn table1(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::table1(ds)
        .iter()
        .map(|(u, d, k, n)| vec![u.to_string(), d.to_string(), k.to_string(), n.to_string()])
        .collect();
    ascii_table(
        "Table 1: target systems and their CSI failures",
        &["Upstream", "Downstream", "Interaction", "# CSI failures"],
        &rows,
    )
}

/// Renders Table 2.
pub fn table2(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::plane_table(ds)
        .iter()
        .map(|(p, n)| vec![p.to_string(), format!("{n} ({}%)", n * 100 / 120)])
        .collect();
    ascii_table(
        "Table 2: failures by plane",
        &["Plane", "# (%) Fail."],
        &rows,
    )
}

/// Renders Table 3.
pub fn table3(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::symptom_table(ds)
        .iter()
        .map(|(g, s, n)| vec![g.to_string(), s.to_string(), n.to_string()])
        .collect();
    ascii_table(
        "Table 3: failure symptoms",
        &["Group", "Impact", "#"],
        &rows,
    )
}

/// Renders Table 5 (which subsumes Table 4's column totals).
pub fn table5(ds: &Dataset) -> String {
    let m = analyze::abstraction_matrix(ds);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (r, abstraction) in DataAbstraction::ALL.iter().enumerate() {
        let mut row = vec![abstraction.to_string()];
        row.extend(m[r].iter().map(|n| n.to_string()));
        row.push(m[r].iter().sum::<usize>().to_string());
        rows.push(row);
    }
    let mut totals = vec!["Total".to_string()];
    for c in 0..m[0].len() {
        totals.push(m.iter().map(|row| row[c]).sum::<usize>().to_string());
    }
    totals.push(m.iter().flatten().sum::<usize>().to_string());
    rows.push(totals);
    let headers: Vec<&str> = ["Abstraction"]
        .into_iter()
        .chain(["Address", "Struct.", "Value", "Custom", "API sem."])
        .chain(["Total"])
        .collect();
    let _ = DataProperty::ALL;
    ascii_table(
        "Table 5: data abstractions x properties (Table 4 = column totals)",
        &headers,
        &rows,
    )
}

/// Renders Table 6.
pub fn table6(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::data_pattern_table(ds)
        .iter()
        .map(|(p, n)| vec![p.to_string(), n.to_string()])
        .collect();
    ascii_table(
        "Table 6: data-plane discrepancy patterns",
        &["Pattern", "# Fail."],
        &rows,
    )
}

/// Renders Table 7.
pub fn table7(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::config_pattern_table(ds)
        .iter()
        .map(|(p, n)| vec![p.to_string(), n.to_string()])
        .collect();
    ascii_table(
        "Table 7: configuration discrepancy patterns",
        &["Pattern", "# Fail."],
        &rows,
    )
}

/// Renders Table 8.
pub fn table8(ds: &Dataset) -> String {
    let (api, state, feature) = analyze::control_pattern_table(ds);
    let (implicit, context) = analyze::api_misuse_split(ds);
    let rows = vec![
        vec![
            format!("API semantic violation ({implicit} implicit + {context} context)"),
            api.to_string(),
        ],
        vec![
            "State/resource inconsistency".to_string(),
            state.to_string(),
        ],
        vec!["Feature inconsistency".to_string(), feature.to_string()],
    ];
    ascii_table(
        "Table 8: control-plane discrepancy patterns",
        &["Pattern", "# Fail."],
        &rows,
    )
}

/// Renders Table 9.
pub fn table9(ds: &Dataset) -> String {
    let rows: Vec<Vec<String>> = analyze::fix_table(ds)
        .iter()
        .map(|(p, n)| vec![p.to_string(), n.to_string()])
        .collect();
    ascii_table("Table 9: fix patterns", &["Fix pattern", "# Fail."], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        let ds = Dataset::load();
        for text in [
            table1(&ds),
            table2(&ds),
            table3(&ds),
            table5(&ds),
            table6(&ds),
            table7(&ds),
            table8(&ds),
            table9(&ds),
        ] {
            assert!(text.contains('|'));
            assert!(text.lines().count() > 4);
        }
    }

    #[test]
    fn table2_mentions_the_key_percentages() {
        let ds = Dataset::load();
        let t = table2(&ds);
        assert!(t.contains("61 (50%)") || t.contains("61 (51%)"), "{t}");
        assert!(t.contains("39 (32%)"), "{t}");
    }

    #[test]
    fn ascii_table_is_aligned() {
        let t = ascii_table("t", &["a", "bbbb"], &[vec!["xxxxx".into(), "y".into()]]);
        let widths: Vec<usize> = t.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }
}
