//! Findings 1–13, each recomputed from the datasets and checked against
//! the statistic the paper states.

use crate::analyze;
use crate::cbs;
use crate::incidents;
use crate::records::Dataset;
use csi_core::plane::Plane;

/// A finding: the paper's statement plus our recomputed evidence.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Finding number (1–13).
    pub number: u32,
    /// The paper's statement (abridged).
    pub statement: &'static str,
    /// Whether the recomputed statistics match the paper.
    pub holds: bool,
    /// The recomputed numbers, rendered.
    pub evidence: String,
}

/// Recomputes all thirteen findings.
pub fn all_findings(ds: &Dataset) -> Vec<Finding> {
    let incidents = incidents::load_incidents();
    let cbs_sample = cbs::load_cbs_sample();
    let mut out = Vec::new();

    let csi_incidents = incidents.iter().filter(|i| i.is_csi).count();
    out.push(Finding {
        number: 1,
        statement: "Among 55 cloud incidents, 11 (20%) were caused by CSI failures.",
        holds: incidents.len() == 55 && csi_incidents == 11,
        evidence: format!(
            "{csi_incidents}/{} incidents are CSI-induced ({}%), median duration {} min",
            incidents.len(),
            csi_incidents * 100 / incidents.len(),
            incidents::median_csi_duration(&incidents)
        ),
    });

    let planes = analyze::plane_table(ds);
    let of = |p: Plane| {
        planes
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    out.push(Finding {
        number: 2,
        statement: "Data (51%) and management (32%) plane interactions dominate; control 17%.",
        holds: of(Plane::Data) == 61 && of(Plane::Management) == 39 && of(Plane::Control) == 20,
        evidence: format!(
            "data {} ({}%), management {} ({}%), control {} ({}%)",
            of(Plane::Data),
            of(Plane::Data) * 100 / 120,
            of(Plane::Management),
            of(Plane::Management) * 100 / 120,
            of(Plane::Control),
            of(Plane::Control) * 100 / 120
        ),
    });

    let crashing = analyze::crashing_count(ds);
    out.push(Finding {
        number: 3,
        statement: "Most (89/120) CSI failures are manifested through crashing behavior.",
        holds: crashing == 89,
        evidence: format!("{crashing}/120 crashing"),
    });

    let (metadata, typical, custom, other) = analyze::metadata_split(ds);
    out.push(Finding {
        number: 4,
        statement: "50/61 data-plane failures are metadata-caused (42 typical + 8 custom).",
        holds: metadata == 50 && typical == 42 && custom == 8 && other == 11,
        evidence: format!(
            "metadata {metadata} (typical {typical}, custom {custom}), other {other}"
        ),
    });

    let matrix = analyze::abstraction_matrix(ds);
    let tables: usize = matrix[0].iter().sum();
    let kv: usize = matrix[3].iter().sum();
    out.push(Finding {
        number: 5,
        statement: "57% (35/61) of data-plane failures involve tables; none involve KV tuples.",
        holds: tables == 35 && kv == 0,
        evidence: format!(
            "tables {tables}, files {}, streams {}, kv {kv}",
            matrix[1].iter().sum::<usize>(),
            matrix[2].iter().sum::<usize>()
        ),
    });

    let serial = analyze::serialization_rooted_count(ds);
    out.push(Finding {
        number: 6,
        statement: "25% (15/61) of data-plane failures are root-caused by data serialization.",
        holds: serial == 15,
        evidence: format!("{serial}/61 serialization-rooted"),
    });

    let configs = analyze::config_pattern_table(ds);
    let coherence: usize = configs.iter().take(3).map(|(_, n)| n).sum();
    out.push(Finding {
        number: 7,
        statement: "CSI configuration issues are about coherently configuring multiple systems.",
        holds: coherence == 28 && configs.iter().map(|(_, n)| n).sum::<usize>() == 30,
        evidence: format!(
            "ignored 12 + overridden 6 + inconsistent-context 10 = {coherence}/30 coherence issues"
        ),
    });

    let (param, comp) = analyze::config_scope_split(ds);
    out.push(Finding {
        number: 8,
        statement: "Parameter-related issues are 21/30 of configuration-induced failures.",
        holds: param == 21 && comp == 9,
        evidence: format!("parameter {param}, component {comp}"),
    });

    let (obs, act) = analyze::monitoring_split(ds);
    out.push(Finding {
        number: 9,
        statement: "Monitoring-related CSIs are critical, especially when data triggers actions.",
        holds: obs + act == 9 && act > 0,
        evidence: format!("{obs} observability + {act} action-triggering monitoring failures"),
    });

    let (api, state, feature) = analyze::control_pattern_table(ds);
    out.push(Finding {
        number: 10,
        statement:
            "Control-plane failures are rooted in implicit properties (API semantics, state).",
        holds: api == 13 && state == 5 && feature == 2,
        evidence: format!("api-semantics {api}, state/resource {state}, feature {feature}"),
    });

    let (implicit, context) = analyze::api_misuse_split(ds);
    out.push(Finding {
        number: 11,
        statement: "API misuses are 13/20 of control-plane failures (8 implicit + 5 context).",
        holds: implicit == 8 && context == 5,
        evidence: format!("implicit-semantics {implicit}, wrong-context {context}"),
    });

    let check_eh = analyze::checking_or_error_handling_fixes(ds);
    let locations = analyze::fix_locations(ds);
    out.push(Finding {
        number: 12,
        statement: "In 40% (46/115) of fixed failures, fixes add checking/error handling only.",
        holds: check_eh == 46 && locations.fixed == 115,
        evidence: format!("{check_eh}/{} checking or error handling", locations.fixed),
    });

    out.push(Finding {
        number: 13,
        statement:
            "69% (79/115) of fixes are downstream-specific upstream code; 68/79 in connectors.",
        holds: locations.upstream_specific == 79 && locations.in_connectors == 68,
        evidence: format!(
            "upstream-specific {} (connectors {}), generic {}, downstream {}",
            locations.upstream_specific,
            locations.in_connectors,
            locations.upstream_generic,
            locations.downstream
        ),
    });

    let _ = cbs_sample;
    out
}

/// The CBS cross-check of Sections 4 and 5.1.
pub fn cbs_comparison() -> String {
    let sample = cbs::load_cbs_sample();
    format!(
        "CBS (2014) sample: {} issues, 39 CSI (37%), 15 dependency; \
         control-plane share of CSI failures: {}% (vs 17% in this study)",
        sample.len(),
        cbs::cbs_control_plane_percent(&sample)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_findings_hold() {
        let ds = Dataset::load();
        let findings = all_findings(&ds);
        assert_eq!(findings.len(), 13);
        for f in &findings {
            assert!(
                f.holds,
                "Finding {} does not hold: {}",
                f.number, f.evidence
            );
        }
    }

    #[test]
    fn cbs_comparison_mentions_both_shares() {
        let text = cbs_comparison();
        assert!(text.contains("69%"));
        assert!(text.contains("37%"));
    }
}
