//! `csi-study` — the failure-study dataset and analysis (Sections 3–7).
//!
//! Encodes the paper's three datasets — 55 cloud incident reports, the
//! 120-case open-source CSI failure dataset, and the 105-issue CBS
//! comparison sample — and regenerates every table (1–9) and finding (1–13).
//!
//! The paper's per-row labels are only public in aggregate; rows explicitly
//! named in the paper carry their real issue keys and metadata, and the
//! remainder are reconstructed (`synthetic: true`) so that all published
//! aggregates hold exactly. See DESIGN.md for the reconstruction rules.

pub mod analyze;
pub mod cbs;
pub mod findings;
pub mod incidents;
pub mod records;
pub mod render;

pub use records::{CsiCase, Dataset};
