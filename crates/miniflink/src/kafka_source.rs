//! Flink's Kafka source: partition discovery and its invocation context.
//!
//! FLINK-4155: partition discovery must run where the Kafka cluster is
//! reachable — inside the Flink cluster — but the shipped code invoked it
//! in the *client* context (the machine submitting the job), which "may
//! not have access to the Kafka cluster". A classic wrong-context API
//! misuse (Finding 11).

use minikafka::{MiniKafka, PartitionId};
use std::fmt;

/// Where a piece of connector code is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionContext {
    /// The submitting client's JVM — may be outside the cluster network.
    Client,
    /// A task manager inside the cluster.
    Cluster,
}

/// Network reachability of the Kafka cluster from each context.
#[derive(Debug, Clone, Copy)]
pub struct Reachability {
    /// Whether client machines can reach the brokers.
    pub client_can_reach: bool,
    /// Whether cluster machines can reach the brokers.
    pub cluster_can_reach: bool,
}

impl Default for Reachability {
    fn default() -> Reachability {
        // The typical production topology: brokers are on the cluster
        // network, not exposed to submitting clients.
        Reachability {
            client_can_reach: false,
            cluster_can_reach: true,
        }
    }
}

/// Error raised by partition discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryError {
    /// The context that failed.
    pub context: ExecutionContext,
    /// Description.
    pub message: String,
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition discovery failed in {:?} context: {}",
            self.context, self.message
        )
    }
}

impl std::error::Error for DiscoveryError {}

/// Discovers the partitions of a topic from a given execution context.
pub fn discover_partitions(
    broker: &MiniKafka,
    topic: &str,
    context: ExecutionContext,
    net: Reachability,
) -> Result<Vec<PartitionId>, DiscoveryError> {
    let reachable = match context {
        ExecutionContext::Client => net.client_can_reach,
        ExecutionContext::Cluster => net.cluster_can_reach,
    };
    if !reachable {
        return Err(DiscoveryError {
            context,
            message: "org.apache.kafka.common.errors.TimeoutException: \
                      Timeout expired while fetching topic metadata"
                .to_string(),
        });
    }
    let n = broker.partition_count(topic).map_err(|e| DiscoveryError {
        context,
        message: e.to_string(),
    })?;
    Ok((0..n).map(PartitionId).collect())
}

/// Which context the connector uses for discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Shipped: discovery runs where the job is *constructed* — the client
    /// (FLINK-4155).
    Shipped,
    /// Fixed: discovery deferred to the task managers.
    Fixed,
}

/// The connector's discovery entry point.
pub fn connector_discover(
    broker: &MiniKafka,
    topic: &str,
    mode: DiscoveryMode,
    net: Reachability,
) -> Result<Vec<PartitionId>, DiscoveryError> {
    let context = match mode {
        DiscoveryMode::Shipped => ExecutionContext::Client,
        DiscoveryMode::Fixed => ExecutionContext::Cluster,
    };
    discover_partitions(broker, topic, context, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> MiniKafka {
        let mut k = MiniKafka::new();
        k.create_topic("events", 4);
        k
    }

    #[test]
    fn shipped_discovery_times_out_in_production_topology() {
        // FLINK-4155.
        let k = broker();
        let err = connector_discover(
            &k,
            "events",
            DiscoveryMode::Shipped,
            Reachability::default(),
        )
        .unwrap_err();
        assert_eq!(err.context, ExecutionContext::Client);
        assert!(err.message.contains("TimeoutException"));
    }

    #[test]
    fn fixed_discovery_succeeds() {
        let k = broker();
        let parts = connector_discover(&k, "events", DiscoveryMode::Fixed, Reachability::default())
            .unwrap();
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn shipped_discovery_works_in_permissive_networks() {
        // Which is why the bug escaped testing: dev environments expose
        // the brokers everywhere.
        let k = broker();
        let net = Reachability {
            client_can_reach: true,
            cluster_can_reach: true,
        };
        assert!(connector_discover(&k, "events", DiscoveryMode::Shipped, net).is_ok());
    }

    #[test]
    fn unknown_topics_fail_cleanly() {
        let k = broker();
        let err = connector_discover(&k, "nope", DiscoveryMode::Fixed, Reachability::default())
            .unwrap_err();
        assert!(err.message.contains("unknown topic"));
    }
}
