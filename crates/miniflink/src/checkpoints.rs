//! Flink's checkpoint coordinator, writing snapshots to HDFS.
//!
//! Another cross-system seam: Flink's fault tolerance *depends on* the
//! downstream DFS being writable. When the namenode enters safe mode, every
//! checkpoint fails; Flink's documented behavior is to tolerate a
//! configured number of consecutive checkpoint failures
//! (`execution.checkpointing.tolerable-failed-checkpoints`) and then fail
//! the whole job — a correct policy on each side that composes into a
//! job-killing interaction when a routine HDFS maintenance window outlasts
//! the tolerance budget.

use minihdfs::{HdfsError, HdfsPath, MiniHdfs};

/// Identifier of a completed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CheckpointId(pub u64);

/// Outcome of one checkpoint attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointOutcome {
    /// Snapshot durable in the DFS.
    Completed(CheckpointId),
    /// The attempt failed but the tolerance budget still holds.
    Failed {
        /// The DFS error.
        reason: String,
        /// Consecutive failures so far.
        consecutive: u32,
    },
    /// The tolerance budget is exhausted: the job fails.
    JobFailed {
        /// Consecutive failures that exhausted the budget.
        consecutive: u32,
    },
}

/// The checkpoint coordinator for one job.
#[derive(Debug)]
pub struct CheckpointCoordinator {
    job: String,
    next_id: u64,
    completed: Vec<CheckpointId>,
    tolerable_failures: u32,
    consecutive_failures: u32,
    retained: usize,
}

impl CheckpointCoordinator {
    /// Creates a coordinator with Flink's defaults: zero tolerable
    /// failures, one retained checkpoint.
    pub fn new(job: &str) -> CheckpointCoordinator {
        CheckpointCoordinator {
            job: job.to_string(),
            next_id: 1,
            completed: Vec::new(),
            tolerable_failures: 0,
            consecutive_failures: 0,
            retained: 1,
        }
    }

    /// Sets `execution.checkpointing.tolerable-failed-checkpoints`.
    pub fn with_tolerable_failures(mut self, n: u32) -> CheckpointCoordinator {
        self.tolerable_failures = n;
        self
    }

    /// Sets the number of retained checkpoints.
    pub fn with_retained(mut self, n: usize) -> CheckpointCoordinator {
        self.retained = n.max(1);
        self
    }

    fn dir(&self) -> HdfsPath {
        HdfsPath::parse("/flink/checkpoints")
            .expect("static path")
            .join(&self.job)
    }

    fn path(&self, id: CheckpointId) -> HdfsPath {
        self.dir().join(&format!("chk-{:08}", id.0))
    }

    /// Triggers one checkpoint with the given serialized state.
    pub fn trigger(&mut self, fs: &mut MiniHdfs, state: &[u8]) -> CheckpointOutcome {
        let id = CheckpointId(self.next_id);
        let write = fs
            .mkdirs(&self.dir())
            .and_then(|()| fs.create(&self.path(id), state));
        match write {
            Ok(()) => {
                self.next_id += 1;
                self.consecutive_failures = 0;
                self.completed.push(id);
                // Retention: drop the oldest beyond the retained budget.
                while self.completed.len() > self.retained {
                    let old = self.completed.remove(0);
                    let _ = fs.delete(&self.path(old), false);
                }
                CheckpointOutcome::Completed(id)
            }
            Err(e) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures > self.tolerable_failures {
                    CheckpointOutcome::JobFailed {
                        consecutive: self.consecutive_failures,
                    }
                } else {
                    CheckpointOutcome::Failed {
                        reason: e.to_string(),
                        consecutive: self.consecutive_failures,
                    }
                }
            }
        }
    }

    /// The latest completed checkpoint's state, for recovery.
    pub fn restore_latest(&self, fs: &MiniHdfs) -> Result<Option<Vec<u8>>, HdfsError> {
        match self.completed.last() {
            None => Ok(None),
            Some(id) => Ok(Some(fs.read(&self.path(*id))?.to_vec())),
        }
    }

    /// Completed checkpoints currently retained.
    pub fn retained_checkpoints(&self) -> &[CheckpointId] {
        &self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_complete_and_restore() {
        let mut fs = MiniHdfs::with_datanodes(3);
        let mut cc = CheckpointCoordinator::new("job").with_retained(2);
        assert_eq!(cc.restore_latest(&fs).unwrap(), None);
        assert_eq!(
            cc.trigger(&mut fs, b"state-1"),
            CheckpointOutcome::Completed(CheckpointId(1))
        );
        cc.trigger(&mut fs, b"state-2");
        assert_eq!(
            cc.restore_latest(&fs).unwrap().as_deref(),
            Some(b"state-2".as_ref())
        );
    }

    #[test]
    fn retention_deletes_old_snapshots() {
        let mut fs = MiniHdfs::with_datanodes(1);
        let mut cc = CheckpointCoordinator::new("job").with_retained(2);
        for i in 0..5u8 {
            cc.trigger(&mut fs, &[i]);
        }
        assert_eq!(cc.retained_checkpoints().len(), 2);
        // Only the two newest files survive in the DFS.
        let dir = HdfsPath::parse("/flink/checkpoints/job").unwrap();
        assert_eq!(fs.list_status(&dir).unwrap().len(), 2);
        assert_eq!(
            cc.restore_latest(&fs).unwrap().as_deref(),
            Some([4u8].as_ref())
        );
    }

    #[test]
    fn safe_mode_outage_exhausts_the_tolerance_budget() {
        // The cross-system composition: an HDFS maintenance window longer
        // than the tolerance budget kills the Flink job.
        let mut fs = MiniHdfs::with_datanodes(1);
        let mut cc = CheckpointCoordinator::new("job").with_tolerable_failures(2);
        cc.trigger(&mut fs, b"ok");
        fs.set_safe_mode(true);
        assert!(matches!(
            cc.trigger(&mut fs, b"x"),
            CheckpointOutcome::Failed { consecutive: 1, .. }
        ));
        assert!(matches!(
            cc.trigger(&mut fs, b"x"),
            CheckpointOutcome::Failed { consecutive: 2, .. }
        ));
        assert_eq!(
            cc.trigger(&mut fs, b"x"),
            CheckpointOutcome::JobFailed { consecutive: 3 }
        );
        // A short window is survivable: the counter resets on success.
        let mut fs2 = MiniHdfs::with_datanodes(1);
        let mut cc2 = CheckpointCoordinator::new("job2").with_tolerable_failures(2);
        fs2.set_safe_mode(true);
        cc2.trigger(&mut fs2, b"x");
        fs2.set_safe_mode(false);
        assert!(matches!(
            cc2.trigger(&mut fs2, b"y"),
            CheckpointOutcome::Completed(_)
        ));
        assert!(matches!(
            cc2.trigger(&mut fs2, b"z"),
            CheckpointOutcome::Completed(_)
        ));
    }

    #[test]
    fn default_tolerance_is_zero() {
        let mut fs = MiniHdfs::with_datanodes(1);
        let mut cc = CheckpointCoordinator::new("strict");
        fs.set_safe_mode(true);
        assert!(matches!(
            cc.trigger(&mut fs, b"x"),
            CheckpointOutcome::JobFailed { consecutive: 1 }
        ));
    }
}
