//! The Flink JobManager's memory model and its YARN container sizing.
//!
//! FLINK-887: the JobManager runs inside a YARN container, but its JVM uses
//! more physical memory than the heap size Flink requested for the
//! container — so YARN's pmem monitor kills it. Neither side is buggy: the
//! JVM is allowed to allocate off-heap memory, and the monitor is doing its
//! documented job. The discrepancy is in the sizing policy.

use miniyarn::{ApplicationId, ContainerId, Resource, ResourceManager, YarnError};

/// How the JVM inside the JobManager container uses memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Configured JVM heap, MB.
    pub heap_mb: u64,
    /// Direct/off-heap allocations, MB.
    pub off_heap_mb: u64,
}

impl MemoryModel {
    /// JVM metaspace-and-overhead floor, MB.
    pub const JVM_OVERHEAD_FLOOR_MB: u64 = 192;

    /// Total physical memory the process tree actually uses.
    pub fn process_size_mb(&self) -> u64 {
        let overhead = Self::JVM_OVERHEAD_FLOOR_MB.max((self.heap_mb + self.off_heap_mb) / 10);
        self.heap_mb + self.off_heap_mb + overhead
    }
}

/// Container sizing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingPolicy {
    /// Request exactly the configured heap (the shipped FLINK-887
    /// behavior): the JVM's real footprint exceeds the container.
    HeapOnly,
    /// Request the full process size and shrink the heap to leave a safety
    /// cutoff (the fix).
    ProcessSizeWithCutoff,
}

/// A JobManager deployment specification.
#[derive(Debug, Clone, Copy)]
pub struct JobManagerSpec {
    /// The memory model of the JVM that will run.
    pub memory: MemoryModel,
    /// The sizing policy in effect.
    pub policy: SizingPolicy,
    /// vcores for the container.
    pub vcores: u32,
}

impl JobManagerSpec {
    /// The container resource Flink requests from YARN.
    pub fn container_request(&self) -> Resource {
        let mb = match self.policy {
            SizingPolicy::HeapOnly => self.memory.heap_mb,
            SizingPolicy::ProcessSizeWithCutoff => self.memory.process_size_mb(),
        };
        Resource::new(mb, self.vcores)
    }
}

/// Outcome of launching a JobManager and running it under the pmem monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchOutcome {
    /// The JobManager is running.
    Running(ContainerId),
    /// YARN's pmem monitor killed the container; the payload is the kill
    /// reason from the NodeManager log.
    KilledByPmemMonitor {
        /// The killed container.
        container: ContainerId,
        /// NodeManager's kill message.
        reason: String,
    },
}

/// Launches a JobManager on YARN and immediately exercises the pmem
/// monitor against the JVM's true footprint.
pub fn launch_jobmanager(
    rm: &mut ResourceManager,
    app: ApplicationId,
    spec: &JobManagerSpec,
) -> Result<LaunchOutcome, YarnError> {
    rm.add_container_request(app, spec.container_request())?;
    rm.advance_clock(1_000);
    let resp = rm.allocate(app)?;
    let container = resp
        .allocated
        .first()
        .ok_or(YarnError::UnknownContainer(0))?
        .id;
    rm.start_container(container)?;
    // The JVM starts and reaches its steady-state footprint.
    rm.report_container_pmem(container, spec.memory.process_size_mb())?;
    let killed = rm.enforce_pmem();
    if killed.contains(&container) {
        let reason = match &rm.container(container).expect("exists").state {
            miniyarn::ContainerState::Killed { reason } => reason.clone(),
            other => format!("{other:?}"),
        };
        Ok(LaunchOutcome::KilledByPmemMonitor { container, reason })
    } else {
        Ok(LaunchOutcome::Running(container))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> (ResourceManager, ApplicationId) {
        let mut rm = ResourceManager::with_nodes(2, Resource::new(16384, 16));
        let app = rm.register_application("flink");
        (rm, app)
    }

    #[test]
    fn heap_only_sizing_gets_killed() {
        // FLINK-887 end to end.
        let (mut rm, app) = cluster();
        let spec = JobManagerSpec {
            memory: MemoryModel {
                heap_mb: 2048,
                off_heap_mb: 256,
            },
            policy: SizingPolicy::HeapOnly,
            vcores: 1,
        };
        match launch_jobmanager(&mut rm, app, &spec).unwrap() {
            LaunchOutcome::KilledByPmemMonitor { reason, .. } => {
                assert!(reason.contains("beyond physical memory limits"));
            }
            other => panic!("expected a pmem kill, got {other:?}"),
        }
    }

    #[test]
    fn process_size_sizing_survives() {
        let (mut rm, app) = cluster();
        let spec = JobManagerSpec {
            memory: MemoryModel {
                heap_mb: 2048,
                off_heap_mb: 256,
            },
            policy: SizingPolicy::ProcessSizeWithCutoff,
            vcores: 1,
        };
        assert!(matches!(
            launch_jobmanager(&mut rm, app, &spec).unwrap(),
            LaunchOutcome::Running(_)
        ));
    }

    #[test]
    fn process_size_includes_jvm_overhead_floor() {
        let small = MemoryModel {
            heap_mb: 512,
            off_heap_mb: 0,
        };
        assert_eq!(small.process_size_mb(), 512 + 192);
        let big = MemoryModel {
            heap_mb: 8192,
            off_heap_mb: 1808,
        };
        assert_eq!(big.process_size_mb(), 8192 + 1808 + 1000);
    }
}
