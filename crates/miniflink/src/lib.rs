//! `miniflink` — a stream-processing substrate modeled on Apache Flink.
//!
//! Provides the upstream half of the control- and management-plane figures:
//!
//! - a **YARN resource driver** with both a synchronous (buggy, FLINK-12342)
//!   and an asynchronous (fixed) container-request loop, plus the two
//!   intermediate workarounds of Figure 5;
//! - a **resource calculator** that reads YARN's `minimum-allocation` keys
//!   to predict container sizes — correct under the CapacityScheduler,
//!   discrepant under the FairScheduler (FLINK-19141, Figure 3);
//! - a **JobManager memory model** whose JVM overhead can exceed the
//!   container allocation and get killed by YARN's pmem monitor (FLINK-887);
//! - a **Kafka source** whose partition discovery must run in a cluster
//!   context (FLINK-4155) and a **Hive catalog connector** that drops the
//!   PROCTIME marker on TIMESTAMP round-trips (FLINK-17189).

pub mod checkpoints;
pub mod hive_catalog;
pub mod jobmanager;
pub mod kafka_source;
pub mod yarn_driver;

pub use checkpoints::{CheckpointCoordinator, CheckpointId, CheckpointOutcome};
pub use jobmanager::{JobManagerSpec, LaunchOutcome, MemoryModel, SizingPolicy};
pub use yarn_driver::{run_driver, DriverMode, DriverRun, DriverStats, YarnDriverWorld};
