//! Flink's YARN resource driver: the FLINK-12342 container storm
//! (Figure 1) and its fixes (Figure 5), plus the FLINK-19141 resource
//! calculator (Figure 3).
//!
//! The driver runs on the deterministic simulator of `csi_core::sim`. Its
//! heartbeat loop asks YARN for containers and, in the shipped
//! configuration, *re-adds* its pending request count every 500 ms — a
//! correct strategy under the implicit assumption that a request is served
//! within one interval, and a request storm the moment YARN's allocation
//! latency exceeds the interval.

use csi_core::boundary::CrossingContext;
use csi_core::config::ConfigMap;
use csi_core::fault::InjectionRegistry;
use csi_core::sim::{Millis, Ops, Sim};
use miniyarn::config as yarn_config;
use miniyarn::scheduler::{CapacityScheduler, FairScheduler, Scheduler};
use miniyarn::{ApplicationId, Resource, ResourceManager, YarnError};

/// The four request-loop strategies of Figures 1 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    /// The shipped loop: synchronous NMClient, pending requests re-added
    /// every interval (FLINK-12342).
    BuggySync,
    /// Workaround #1 (5/7/2019): make the interval configurable and raise
    /// it for jobs with many containers.
    LongerInterval,
    /// Workaround #2 (11/6/2019): remove satisfied/stale container
    /// requests from YARN as fast as possible.
    EagerRemove,
    /// Resolution #3 (11/18/2019): NMClientAsync — starts do not block the
    /// heartbeat loop and outstanding asks are tracked exactly.
    AsyncClient,
}

/// A point-in-time snapshot of the driver/RM interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Virtual time, ms.
    pub at_ms: Millis,
    /// Total container asks ever sent to YARN.
    pub total_requested: u64,
    /// Asks sitting in YARN's pipeline.
    pub pending: usize,
    /// Containers started by Flink.
    pub started: usize,
}

/// Final statistics of a driver run.
#[derive(Debug, Clone)]
pub struct DriverStats {
    /// Total asks sent (the "4000+ requested" number of Figure 1).
    pub total_requested: u64,
    /// Largest pending backlog observed at YARN.
    pub max_pending: usize,
    /// Containers started.
    pub started: usize,
    /// When the target was reached, if it was.
    pub completed_at: Option<Millis>,
    /// Time series for plotting Figure 1.
    pub history: Vec<Snapshot>,
    /// The RM error that stopped the driver, if one did. `None` for a
    /// clean run (including one that merely missed its deadline).
    pub error: Option<YarnError>,
}

/// The simulated world: Flink's driver plus the YARN RM.
pub struct YarnDriverWorld {
    /// The ResourceManager.
    pub rm: ResourceManager,
    app: ApplicationId,
    mode: DriverMode,
    target: usize,
    interval_ms: Millis,
    start_latency_ms: Millis,
    ask: Resource,
    started: usize,
    outstanding: usize,
    history: Vec<Snapshot>,
    completed_at: Option<Millis>,
    error: Option<YarnError>,
}

impl YarnDriverWorld {
    fn heartbeat(&mut self, ops: &mut Ops<YarnDriverWorld>)
    where
        Self: Sized,
    {
        // Keep the RM's clock in step with virtual time.
        let delta = ops.now().saturating_sub(self.rm.now());
        self.rm.advance_clock(delta);
        let resp = match self.rm.allocate(self.app) {
            Ok(resp) => resp,
            Err(e) => {
                // An RM failure stops the driver: record it and stop
                // heartbeating instead of panicking.
                self.error = Some(e);
                return;
            }
        };
        let newly = resp.allocated.len();
        let mut block_ms = 0;
        for c in &resp.allocated {
            if let Err(e) = self.rm.start_container(c.id) {
                self.error = Some(e);
                return;
            }
            if self.mode != DriverMode::AsyncClient {
                // The synchronous NMClient blocks the driver thread for
                // every container start.
                block_ms += self.start_latency_ms;
            }
        }
        self.started += newly;
        self.outstanding = self.outstanding.saturating_sub(newly);
        let missing = self.target.saturating_sub(self.started);
        if missing > 0 {
            match self.mode {
                DriverMode::BuggySync | DriverMode::LongerInterval => {
                    // Re-add the full pending count: the storm.
                    for _ in 0..missing {
                        let _ = self.rm.add_container_request(self.app, self.ask);
                    }
                    self.outstanding += missing;
                }
                DriverMode::EagerRemove => {
                    let removed = self
                        .rm
                        .remove_container_requests(self.app, self.outstanding);
                    self.outstanding -= removed;
                    for _ in 0..missing {
                        let _ = self.rm.add_container_request(self.app, self.ask);
                    }
                    self.outstanding += missing;
                }
                DriverMode::AsyncClient => {
                    // Ask only for what is not already in flight.
                    let need = missing.saturating_sub(self.outstanding);
                    for _ in 0..need {
                        let _ = self.rm.add_container_request(self.app, self.ask);
                    }
                    self.outstanding += need;
                }
            }
        }
        self.history.push(Snapshot {
            at_ms: ops.now(),
            total_requested: self.rm.total_requested(),
            pending: self.rm.pending_count(),
            started: self.started,
        });
        if self.started >= self.target {
            self.completed_at = Some(ops.now());
            return; // Stop heartbeating.
        }
        let next_in = self.interval_ms + block_ms;
        ops.schedule_in(next_in, |w: &mut YarnDriverWorld, ops| w.heartbeat(ops));
    }
}

/// Parameters of a driver simulation.
#[derive(Debug, Clone, Copy)]
pub struct DriverRun {
    /// Strategy under test.
    pub mode: DriverMode,
    /// Containers the job needs (the paper's large `C`).
    pub target: usize,
    /// Heartbeat interval, ms (500 in FLINK-12342).
    pub interval_ms: Millis,
    /// YARN's per-container allocation service time, ms.
    pub alloc_service_ms: Millis,
    /// Synchronous container-start latency, ms.
    pub start_latency_ms: Millis,
    /// Give up after this much virtual time.
    pub deadline_ms: Millis,
}

impl Default for DriverRun {
    fn default() -> DriverRun {
        DriverRun {
            mode: DriverMode::BuggySync,
            target: 200,
            // The FLINK-12342 regime: allocating the batch takes much
            // longer than one heartbeat interval (200 x 100 ms >> 500 ms).
            interval_ms: 500,
            alloc_service_ms: 100,
            start_latency_ms: 5,
            deadline_ms: 60_000,
        }
    }
}

/// Runs one driver simulation to its deadline (or completion).
///
/// # Examples
///
/// ```
/// use miniflink::yarn_driver::{run_driver, DriverMode, DriverRun};
///
/// // Below the crossover (fast allocation) even the buggy loop asks for
/// // exactly its 200 containers.
/// let stats = run_driver(DriverRun {
///     mode: DriverMode::BuggySync,
///     alloc_service_ms: 1,
///     ..DriverRun::default()
/// });
/// assert_eq!(stats.total_requested, 200);
/// ```
pub fn run_driver(params: DriverRun) -> DriverStats {
    run_driver_with(params, None)
}

/// Like [`run_driver`], with an optional fault-injection registry armed
/// into the ResourceManager — injected allocation latency reproduces the
/// FLINK-12342 regime without touching the driver's own parameters, and
/// injected RM failures exercise the driver's error path.
pub fn run_driver_with(params: DriverRun, injection: Option<InjectionRegistry>) -> DriverStats {
    run_driver_traced(params, injection.map(CrossingContext::with_registry))
}

/// Like [`run_driver`], with the deployment's crossing context wired into
/// the ResourceManager, so every AM–RM heartbeat of the simulated driver
/// is recorded (and injectable) as a YARN boundary crossing.
pub fn run_driver_traced(params: DriverRun, crossing: Option<CrossingContext>) -> DriverStats {
    let mut rm = ResourceManager::with_nodes(64, Resource::new(1 << 22, 1 << 12));
    rm.set_alloc_service_ms(params.alloc_service_ms);
    if let Some(ctx) = crossing {
        rm.set_crossing(ctx);
    }
    let app = rm.register_application("flink-session");
    let interval = match params.mode {
        // Workaround #1: stretch the interval to cover the worst-case
        // allocation latency for the whole batch.
        DriverMode::LongerInterval => params
            .interval_ms
            .max(params.alloc_service_ms * params.target as u64 + 100),
        _ => params.interval_ms,
    };
    let world = YarnDriverWorld {
        rm,
        app,
        mode: params.mode,
        target: params.target,
        interval_ms: interval,
        start_latency_ms: params.start_latency_ms,
        ask: Resource::new(1024, 1),
        started: 0,
        outstanding: 0,
        history: Vec::new(),
        completed_at: None,
        error: None,
    };
    let mut sim = Sim::new(world);
    sim.schedule_in(0, |w: &mut YarnDriverWorld, ops| w.heartbeat(ops));
    sim.run_until(params.deadline_ms);
    let w = sim.state;
    DriverStats {
        total_requested: w.rm.total_requested(),
        max_pending: w.history.iter().map(|s| s.pending).max().unwrap_or(0),
        started: w.started,
        completed_at: w.completed_at,
        history: w.history,
        error: w.error,
    }
}

/// Flink's resource calculator (Figure 3 / FLINK-19141): predicts the
/// container size YARN will allocate by reading the
/// `yarn.scheduler.minimum-allocation-*` keys — the CapacityScheduler's
/// normalization rule. Correct on Capacity clusters, discrepant on Fair
/// clusters, where YARN normalizes with the increment-allocation keys.
pub fn flink_predicted_allocation(ask: Resource, yarn_conf: &ConfigMap) -> Resource {
    let min = yarn_config::min_allocation(yarn_conf);
    ask.component_max(&min).round_up_to(&min)
}

/// Validates that Flink's predicted cutoff matches what the deployed
/// scheduler will really allocate; returns the FLINK-19141 error message
/// when they disagree.
pub fn check_allocation_consistency(
    ask: Resource,
    yarn_conf: &ConfigMap,
    deployed: &dyn Scheduler,
) -> Result<Resource, YarnError> {
    let predicted = flink_predicted_allocation(ask, yarn_conf);
    let actual = deployed.normalize(ask, yarn_conf)?;
    if predicted != actual {
        return Err(YarnError::BadConfig(format!(
            "Could not allocate the required resource: Flink computed {predicted} from the \
             minimum-allocation keys but the {:?} scheduler allocates {actual}",
            deployed.kind()
        )));
    }
    Ok(actual)
}

/// Convenience: the two scheduler implementations for consistency checks.
pub fn capacity_scheduler() -> CapacityScheduler {
    CapacityScheduler
}

/// See [`capacity_scheduler`].
pub fn fair_scheduler() -> FairScheduler {
    FairScheduler
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_sync_storms_yarn() {
        // Figure 1: thousands of requests for a 200-container job.
        let stats = run_driver(DriverRun {
            mode: DriverMode::BuggySync,
            deadline_ms: 30_000,
            ..DriverRun::default()
        });
        assert!(
            stats.total_requested > 4000,
            "expected a storm, got {} requests",
            stats.total_requested
        );
        assert!(stats.max_pending > 1000);
    }

    #[test]
    fn async_client_requests_exactly_the_target() {
        let stats = run_driver(DriverRun {
            mode: DriverMode::AsyncClient,
            ..DriverRun::default()
        });
        assert_eq!(stats.total_requested, 200);
        assert_eq!(stats.started, 200);
        assert!(stats.completed_at.is_some());
    }

    #[test]
    fn workarounds_reduce_the_storm_but_async_is_best() {
        let base = DriverRun {
            deadline_ms: 30_000,
            ..DriverRun::default()
        };
        let buggy = run_driver(DriverRun {
            mode: DriverMode::BuggySync,
            ..base
        });
        let longer = run_driver(DriverRun {
            mode: DriverMode::LongerInterval,
            ..base
        });
        let eager = run_driver(DriverRun {
            mode: DriverMode::EagerRemove,
            ..base
        });
        let fixed = run_driver(DriverRun {
            mode: DriverMode::AsyncClient,
            ..base
        });
        assert!(longer.total_requested < buggy.total_requested / 2);
        assert!(eager.max_pending <= buggy.max_pending);
        assert!(fixed.total_requested <= longer.total_requested);
        assert!(fixed.total_requested <= eager.total_requested);
    }

    #[test]
    fn no_storm_when_allocation_is_faster_than_the_interval() {
        // The implicit assumption holds: allocation fits in the interval.
        let stats = run_driver(DriverRun {
            mode: DriverMode::BuggySync,
            target: 10,
            alloc_service_ms: 1,
            ..DriverRun::default()
        });
        // The first round asks for all 10; they arrive before round two.
        assert_eq!(stats.total_requested, 10);
        assert!(stats.completed_at.is_some());
    }

    #[test]
    fn rm_failure_during_heartbeat_surfaces_as_typed_error() {
        // Regression: the heartbeat used to `expect()` the allocate call;
        // under an injected RM outage that was a panic, not an error.
        use csi_core::fault::{Channel, FaultKind, FaultSpec, Trigger};
        let reg = InjectionRegistry::new();
        reg.arm(FaultSpec {
            id: "rm-down".into(),
            channel: Channel::Yarn,
            op: "allocate".into(),
            kind: FaultKind::Unavailable,
            trigger: Trigger::Always,
        });
        let stats = run_driver_with(
            DriverRun {
                target: 10,
                deadline_ms: 5_000,
                ..DriverRun::default()
            },
            Some(reg),
        );
        assert_eq!(stats.error, Some(YarnError::RmUnavailable));
        assert_eq!(stats.started, 0);
        assert!(stats.completed_at.is_none());
    }

    #[test]
    fn injected_allocation_latency_reproduces_the_storm() {
        // FLINK-12342 via the fault plane: the driver's own parameters are
        // the no-storm regime (tiny job, fast allocation), but injected
        // per-ask latency pushes allocation past the heartbeat interval.
        use csi_core::fault::{Channel, FaultKind, FaultSpec, Trigger};
        let reg = InjectionRegistry::new();
        reg.arm(FaultSpec {
            id: "rm-slow".into(),
            channel: Channel::Yarn,
            op: "allocate".into(),
            kind: FaultKind::Latency { ms: 600 },
            trigger: Trigger::Always,
        });
        let params = DriverRun {
            target: 20,
            alloc_service_ms: 1,
            deadline_ms: 15_000,
            ..DriverRun::default()
        };
        let clean = run_driver(params);
        assert_eq!(clean.total_requested, 20, "control run must not storm");
        let slow = run_driver_with(params, Some(reg));
        assert!(slow.error.is_none(), "latency is not an error");
        assert!(
            slow.total_requested > 20 * 3,
            "expected a request storm, got {} asks",
            slow.total_requested
        );
    }

    #[test]
    fn allocation_consistency_holds_on_capacity_clusters() {
        let conf = yarn_config::default_yarn_config();
        let ask = Resource::new(1536, 1);
        let got = check_allocation_consistency(ask, &conf, &capacity_scheduler()).unwrap();
        assert_eq!(got, Resource::new(2048, 1));
    }

    #[test]
    fn allocation_consistency_breaks_on_fair_clusters() {
        // FLINK-19141 / Figure 3.
        let conf = yarn_config::default_yarn_config();
        let ask = Resource::new(1536, 1);
        let err = check_allocation_consistency(ask, &conf, &fair_scheduler()).unwrap_err();
        assert!(err.to_string().contains("Could not allocate"), "{err}");
    }
}
