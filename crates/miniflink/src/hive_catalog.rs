//! Flink's Hive catalog connector: table schema round-trips.
//!
//! FLINK-17189: Flink's `PROCTIME` columns have no Hive type, so the
//! connector stores them as `TIMESTAMP` — but the shipped code "did not
//! translate TIMESTAMP of Hive Catalog to PROCTIME" on the way back, so a
//! table written and re-read through the catalog loses its time semantics.
//! Type confusion (Table 6), on typical metadata (a data schema).

use minihive::metastore::{Metastore, StorageFormat};
use minihive::{HiveError, HiveType};

/// Flink's logical column types (the subset relevant to the catalog
/// round-trip).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlinkType {
    /// INT.
    Int,
    /// STRING.
    Str,
    /// A plain TIMESTAMP(3).
    Timestamp,
    /// A processing-time attribute: TIMESTAMP(3) *with PROCTIME semantics*.
    ProcTime,
}

impl FlinkType {
    fn to_hive(&self) -> HiveType {
        match self {
            FlinkType::Int => HiveType::Int,
            FlinkType::Str => HiveType::Str,
            // Both timestamp flavors map to the same Hive type — the
            // semantics only survive if recorded elsewhere.
            FlinkType::Timestamp | FlinkType::ProcTime => HiveType::Timestamp,
        }
    }
}

/// A Flink table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlinkSchema {
    /// Columns in order.
    pub columns: Vec<(String, FlinkType)>,
}

/// Table property under which the fixed connector records time attributes.
pub const PROCTIME_PROPERTY: &str = "flink.proctime.column";

/// Connector behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogMode {
    /// Shipped: PROCTIME degrades to TIMESTAMP silently (FLINK-17189).
    Shipped,
    /// Fixed: the time attribute is recorded in a table property and
    /// restored on read.
    Fixed,
}

/// Stores a Flink table in the Hive catalog.
pub fn store_table(
    ms: &mut Metastore,
    name: &str,
    schema: &FlinkSchema,
    mode: CatalogMode,
) -> Result<(), HiveError> {
    let columns: Vec<(String, HiveType)> = schema
        .columns
        .iter()
        .map(|(n, t)| (n.clone(), t.to_hive()))
        .collect();
    ms.create_table("default", name, columns, StorageFormat::Orc, false)?;
    if mode == CatalogMode::Fixed {
        if let Some((proctime_col, _)) = schema
            .columns
            .iter()
            .find(|(_, t)| *t == FlinkType::ProcTime)
        {
            ms.set_table_property("default", name, PROCTIME_PROPERTY, proctime_col)?;
        }
    }
    Ok(())
}

/// Loads a Flink table schema back from the Hive catalog.
pub fn load_table(ms: &Metastore, name: &str) -> Result<FlinkSchema, HiveError> {
    let def = ms.get_table("default", name)?;
    let proctime_col = def.properties.get(PROCTIME_PROPERTY);
    let columns = def
        .columns
        .iter()
        .map(|c| {
            let t = match &c.hive_type {
                HiveType::Int => FlinkType::Int,
                HiveType::Str => FlinkType::Str,
                HiveType::Timestamp => {
                    if proctime_col.map(String::as_str) == Some(c.name.as_str()) {
                        FlinkType::ProcTime
                    } else {
                        FlinkType::Timestamp
                    }
                }
                other => {
                    return Err(HiveError::UnsupportedType {
                        ty: format!("no Flink mapping for {other}"),
                    })
                }
            };
            Ok((c.name.clone(), t))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FlinkSchema { columns })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> FlinkSchema {
        FlinkSchema {
            columns: vec![
                ("id".into(), FlinkType::Int),
                ("ts".into(), FlinkType::ProcTime),
            ],
        }
    }

    #[test]
    fn shipped_round_trip_loses_proctime() {
        // FLINK-17189.
        let mut ms = Metastore::new();
        store_table(&mut ms, "t", &schema(), CatalogMode::Shipped).unwrap();
        let back = load_table(&ms, "t").unwrap();
        assert_ne!(back, schema());
        assert_eq!(back.columns[1].1, FlinkType::Timestamp); // Degraded.
    }

    #[test]
    fn fixed_round_trip_preserves_proctime() {
        let mut ms = Metastore::new();
        store_table(&mut ms, "t", &schema(), CatalogMode::Fixed).unwrap();
        let back = load_table(&ms, "t").unwrap();
        assert_eq!(back, schema());
    }

    #[test]
    fn plain_timestamps_are_unaffected_by_mode() {
        let plain = FlinkSchema {
            columns: vec![("ts".into(), FlinkType::Timestamp)],
        };
        for mode in [CatalogMode::Shipped, CatalogMode::Fixed] {
            let mut ms = Metastore::new();
            store_table(&mut ms, "t", &plain, mode).unwrap();
            assert_eq!(load_table(&ms, "t").unwrap(), plain);
        }
    }

    #[test]
    fn hive_sees_a_perfectly_normal_table() {
        // Neither system is buggy: Hive's view of the table is correct per
        // its own schema language.
        let mut ms = Metastore::new();
        store_table(&mut ms, "t", &schema(), CatalogMode::Shipped).unwrap();
        let def = ms.get_table("default", "t").unwrap();
        assert_eq!(def.columns[1].hive_type, HiveType::Timestamp);
    }
}
