//! The ResourceManager: applications, nodes, the allocation pipeline, and
//! the pmem monitor.

use crate::config::{self, default_yarn_config};
use crate::error::YarnError;
use crate::resource::Resource;
use crate::scheduler::{scheduler_from_config, Scheduler, SchedulerKind};
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::config::ConfigMap;
use csi_core::fault::{Channel, InjectionRegistry};
use std::collections::{BTreeMap, VecDeque};

/// Identifier of a registered application (application master).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApplicationId(pub u64);

/// Identifier of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

/// Identifier of a NodeManager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Deployment mode of the ResourceManager.
///
/// Some client APIs are unavailable outside the classic mode; YARN-9724 is
/// the CSI failure where an upstream assumed `getClusterMetrics` worked in
/// every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmMode {
    /// A single classic ResourceManager.
    Classic,
    /// A federated deployment, where some client APIs are not implemented.
    Federation,
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerState {
    /// Allocated but not yet started by the AM.
    Allocated,
    /// Started and running.
    Running,
    /// Completed normally.
    Completed,
    /// Killed by the platform.
    Killed {
        /// Why the platform killed it (e.g. the pmem monitor).
        reason: String,
    },
}

/// A container handed to an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// Owning application.
    pub app: ApplicationId,
    /// Node hosting the container.
    pub node: NodeId,
    /// Allocated resource (post-normalization).
    pub resource: Resource,
    /// Current state.
    pub state: ContainerState,
    /// Last reported physical memory use, MB.
    pub pmem_used_mb: u64,
}

/// One heartbeat response of the AM–RM protocol.
#[derive(Debug, Clone, Default)]
pub struct AllocateResponse {
    /// Containers newly allocated since the previous heartbeat.
    pub allocated: Vec<Container>,
    /// Containers that completed or were killed since the previous
    /// heartbeat.
    pub completed: Vec<(ContainerId, ContainerState)>,
    /// Number of this application's asks still pending at the RM.
    pub num_pending: usize,
}

/// Cluster-level metrics (YARN's `getYarnClusterMetrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Registered NodeManagers.
    pub num_node_managers: usize,
    /// Total cluster capacity.
    pub total: Resource,
    /// Capacity not currently allocated.
    pub available: Resource,
    /// Containers currently allocated or running.
    pub containers_active: usize,
    /// Asks waiting in the allocation pipeline.
    pub containers_pending: usize,
}

#[derive(Debug)]
struct Node {
    capacity: Resource,
    used: Resource,
}

/// Final status an ApplicationMaster registers when unregistering —
/// YARN's view of how the job ended, which monitoring consumers act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmFinalStatus {
    /// The AM never registered a status (or is still running).
    #[default]
    Undefined,
    /// Registered SUCCEEDED.
    Succeeded,
    /// Registered FAILED.
    Failed,
}

/// Lifecycle state of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppLifecycle {
    /// Registered and running.
    #[default]
    Running,
    /// Unregistered.
    Finished,
}

/// The report `getApplicationReport` returns to monitoring consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplicationReport {
    /// Lifecycle state.
    pub state: AppLifecycle,
    /// The AM-registered final status.
    pub final_status: AmFinalStatus,
    /// Containers still held.
    pub live_containers: usize,
}

#[derive(Debug, Default)]
struct AppState {
    #[allow(dead_code)]
    name: String,
    ready: Vec<ContainerId>,
    completed: Vec<(ContainerId, ContainerState)>,
    lifecycle: AppLifecycle,
    final_status: AmFinalStatus,
}

struct PendingAsk {
    app: ApplicationId,
    resource: Resource,
}

/// The miniyarn ResourceManager.
///
/// Time is driven externally via [`ResourceManager::advance_clock`]; the
/// allocation pipeline serves one ask every `alloc_service_ms` of virtual
/// time, which is the latency at the heart of FLINK-12342.
pub struct ResourceManager {
    config: ConfigMap,
    scheduler: Box<dyn Scheduler + Send>,
    mode: RmMode,
    nodes: BTreeMap<NodeId, Node>,
    apps: BTreeMap<ApplicationId, AppState>,
    containers: BTreeMap<ContainerId, Container>,
    pending: VecDeque<PendingAsk>,
    clock_ms: u64,
    pipeline_free_at: u64,
    alloc_service_ms: u64,
    next_app: u64,
    next_container: u64,
    total_requested: u64,
    total_allocated: u64,
    crossing: Option<CrossingContext>,
}

impl ResourceManager {
    /// Creates an RM with the given configuration and deployment mode.
    pub fn new(config: ConfigMap, mode: RmMode) -> ResourceManager {
        let scheduler = scheduler_from_config(&config);
        ResourceManager {
            config,
            scheduler,
            mode,
            nodes: BTreeMap::new(),
            apps: BTreeMap::new(),
            containers: BTreeMap::new(),
            pending: VecDeque::new(),
            clock_ms: 0,
            pipeline_free_at: 0,
            alloc_service_ms: 10,
            next_app: 0,
            next_container: 0,
            total_requested: 0,
            total_allocated: 0,
            crossing: None,
        }
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; RM request entry points route through it, and
    /// injected latency slows the allocation pipeline.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every RM request entry
    /// point crosses the [`Channel::Yarn`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The RM request boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, payload: &str) -> Result<(), YarnError> {
        match &self.crossing {
            Some(ctx) => ctx.cross(BoundaryCall::new(Channel::Yarn, op).with_payload(payload)),
            None => Ok(()),
        }
    }

    /// Creates a classic-mode RM with default configuration and `n` nodes of
    /// the given capacity.
    pub fn with_nodes(n: u32, capacity: Resource) -> ResourceManager {
        let mut rm = ResourceManager::new(default_yarn_config(), RmMode::Classic);
        for i in 0..n {
            rm.add_node(NodeId(i), capacity);
        }
        rm
    }

    /// The active scheduler kind.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler.kind()
    }

    /// The RM's configuration.
    pub fn config(&self) -> &ConfigMap {
        &self.config
    }

    /// Sets the per-container allocation service time (ms of virtual time).
    pub fn set_alloc_service_ms(&mut self, ms: u64) {
        self.alloc_service_ms = ms.max(1);
    }

    /// Registers a NodeManager.
    pub fn add_node(&mut self, id: NodeId, capacity: Resource) {
        self.nodes.insert(
            id,
            Node {
                capacity,
                used: Resource::default(),
            },
        );
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock_ms
    }

    /// Advances virtual time, letting the allocation pipeline make progress.
    pub fn advance_clock(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.process_pipeline();
    }

    /// Registers an application master.
    pub fn register_application(&mut self, name: &str) -> ApplicationId {
        self.next_app += 1;
        let id = ApplicationId(self.next_app);
        self.apps.insert(
            id,
            AppState {
                name: name.to_string(),
                ..AppState::default()
            },
        );
        id
    }

    /// Adds one container ask. The ask is normalized by the deployed
    /// scheduler and queued; the container arrives via a later
    /// [`ResourceManager::allocate`] heartbeat.
    ///
    /// Returns the *normalized* resource the cluster will actually allocate.
    pub fn add_container_request(
        &mut self,
        app: ApplicationId,
        ask: Resource,
    ) -> Result<Resource, YarnError> {
        self.cross("add_container_request", &format!("app-{}", app.0))?;
        if !self.apps.contains_key(&app) {
            return Err(YarnError::UnknownApplication(app.0));
        }
        let normalized = self.scheduler.normalize(ask, &self.config)?;
        self.pending.push_back(PendingAsk {
            app,
            resource: normalized,
        });
        self.total_requested += 1;
        Ok(normalized)
    }

    /// Removes up to `n` of this application's pending asks (oldest first),
    /// returning how many were removed. This is workaround #2 of Figure 5:
    /// "remove the container requests as fast as possible".
    pub fn remove_container_requests(&mut self, app: ApplicationId, n: usize) -> usize {
        let mut removed = 0;
        self.pending.retain(|ask| {
            if ask.app == app && removed < n {
                removed += 1;
                false
            } else {
                true
            }
        });
        removed
    }

    /// The AM–RM heartbeat: returns containers allocated and completed since
    /// the application's previous heartbeat.
    pub fn allocate(&mut self, app: ApplicationId) -> Result<AllocateResponse, YarnError> {
        self.cross("allocate", &format!("app-{}", app.0))?;
        self.process_pipeline();
        let num_pending = self.pending.iter().filter(|a| a.app == app).count();
        let state = self
            .apps
            .get_mut(&app)
            .ok_or(YarnError::UnknownApplication(app.0))?;
        let ready = std::mem::take(&mut state.ready);
        let completed = std::mem::take(&mut state.completed);
        let allocated = ready
            .iter()
            .filter_map(|id| self.containers.get(id).cloned())
            .collect();
        Ok(AllocateResponse {
            allocated,
            completed,
            num_pending,
        })
    }

    /// Effective per-ask service time: the pipeline degrades as the backlog
    /// grows, the overload effect of Figure 1.
    fn effective_service_ms(&self) -> u64 {
        let backlog_factor = 1 + (self.pending.len() as u64) / 1000;
        let injected = self
            .crossing
            .as_ref()
            .map_or(0, CrossingContext::virtual_delay_ms);
        self.alloc_service_ms * backlog_factor + injected
    }

    fn process_pipeline(&mut self) {
        loop {
            if self.pending.is_empty() {
                break;
            }
            let service = self.effective_service_ms();
            let start = self.pipeline_free_at;
            let done_at = start + service;
            if done_at > self.clock_ms {
                break;
            }
            let ask = self.pending.front().expect("checked non-empty");
            match self.place(ask.resource) {
                Some(node) => {
                    let ask = self.pending.pop_front().expect("checked non-empty");
                    self.pipeline_free_at = done_at;
                    self.next_container += 1;
                    let id = ContainerId(self.next_container);
                    let container = Container {
                        id,
                        app: ask.app,
                        node,
                        resource: ask.resource,
                        state: ContainerState::Allocated,
                        pmem_used_mb: 0,
                    };
                    self.nodes.get_mut(&node).expect("node exists").used += ask.resource;
                    self.containers.insert(id, container);
                    self.total_allocated += 1;
                    if let Some(app) = self.apps.get_mut(&ask.app) {
                        app.ready.push(id);
                    }
                }
                None => {
                    // Head-of-line blocking: no node can currently host the
                    // ask; the pipeline stalls until resources free up.
                    break;
                }
            }
        }
    }

    fn place(&self, resource: Resource) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|(_, n)| resource.fits_in(&n.capacity.saturating_sub(&n.used)))
            .map(|(id, _)| *id)
    }

    /// Marks an allocated container as started (NMClient `startContainer`).
    pub fn start_container(&mut self, id: ContainerId) -> Result<(), YarnError> {
        match self.containers.get_mut(&id) {
            Some(c) if c.state == ContainerState::Allocated => {
                c.state = ContainerState::Running;
                Ok(())
            }
            Some(_) => Err(YarnError::UnknownContainer(id.0)),
            None => Err(YarnError::UnknownContainer(id.0)),
        }
    }

    /// Releases a container back to the cluster.
    pub fn release_container(&mut self, id: ContainerId) -> Result<(), YarnError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(YarnError::UnknownContainer(id.0))?;
        if matches!(
            c.state,
            ContainerState::Completed | ContainerState::Killed { .. }
        ) {
            return Ok(());
        }
        c.state = ContainerState::Completed;
        let (node, res, app) = (c.node, c.resource, c.app);
        if let Some(n) = self.nodes.get_mut(&node) {
            n.used -= res;
        }
        if let Some(a) = self.apps.get_mut(&app) {
            a.completed.push((id, ContainerState::Completed));
        }
        Ok(())
    }

    /// Reports the physical memory a container's process tree uses (the
    /// NodeManager's pmem sampling).
    pub fn report_container_pmem(&mut self, id: ContainerId, mb: u64) -> Result<(), YarnError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(YarnError::UnknownContainer(id.0))?;
        c.pmem_used_mb = mb;
        Ok(())
    }

    /// Runs the pmem monitor: kills every running container whose reported
    /// physical memory exceeds its allocation (FLINK-887). Returns the
    /// killed container ids.
    pub fn enforce_pmem(&mut self) -> Vec<ContainerId> {
        let enabled = matches!(
            self.config.get_bool(config::PMEM_CHECK_ENABLED),
            Some(Ok(true))
        );
        if !enabled {
            return Vec::new();
        }
        let mut killed = Vec::new();
        let victims: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| {
                matches!(c.state, ContainerState::Running | ContainerState::Allocated)
                    && c.pmem_used_mb > c.resource.memory_mb
            })
            .map(|c| c.id)
            .collect();
        for id in victims {
            let c = self.containers.get_mut(&id).expect("victim exists");
            let reason = format!(
                "Container {} is running beyond physical memory limits. \
                 Current usage: {} MB of {} MB physical memory used. Killing container.",
                id.0, c.pmem_used_mb, c.resource.memory_mb
            );
            c.state = ContainerState::Killed {
                reason: reason.clone(),
            };
            let (node, res, app) = (c.node, c.resource, c.app);
            if let Some(n) = self.nodes.get_mut(&node) {
                n.used -= res;
            }
            if let Some(a) = self.apps.get_mut(&app) {
                a.completed.push((id, ContainerState::Killed { reason }));
            }
            killed.push(id);
        }
        killed
    }

    /// Unregisters an application with its final status: all its pending
    /// asks are dropped and its containers released.
    pub fn unregister_application(
        &mut self,
        app: ApplicationId,
        final_status: AmFinalStatus,
    ) -> Result<(), YarnError> {
        if !self.apps.contains_key(&app) {
            return Err(YarnError::UnknownApplication(app.0));
        }
        self.pending.retain(|a| a.app != app);
        let held: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| {
                c.app == app
                    && matches!(c.state, ContainerState::Allocated | ContainerState::Running)
            })
            .map(|c| c.id)
            .collect();
        for id in held {
            self.release_container(id)?;
        }
        let state = self.apps.get_mut(&app).expect("checked above");
        state.lifecycle = AppLifecycle::Finished;
        state.final_status = final_status;
        Ok(())
    }

    /// The application report monitoring consumers read
    /// (`getApplicationReport`).
    pub fn application_report(&self, app: ApplicationId) -> Result<ApplicationReport, YarnError> {
        let state = self
            .apps
            .get(&app)
            .ok_or(YarnError::UnknownApplication(app.0))?;
        Ok(ApplicationReport {
            state: state.lifecycle,
            final_status: state.final_status,
            live_containers: self
                .containers
                .values()
                .filter(|c| {
                    c.app == app
                        && matches!(c.state, ContainerState::Allocated | ContainerState::Running)
                })
                .count(),
        })
    }

    /// Cluster metrics, available only in classic mode (YARN-9724).
    pub fn get_cluster_metrics(&self) -> Result<ClusterMetrics, YarnError> {
        self.cross("get_cluster_metrics", "cluster")?;
        if self.mode == RmMode::Federation {
            return Err(YarnError::UnsupportedInMode {
                op: "getClusterMetrics",
                mode: "federation",
            });
        }
        let total = self
            .nodes
            .values()
            .fold(Resource::default(), |acc, n| acc + n.capacity);
        let used = self
            .nodes
            .values()
            .fold(Resource::default(), |acc, n| acc + n.used);
        Ok(ClusterMetrics {
            num_node_managers: self.nodes.len(),
            total,
            available: total.saturating_sub(&used),
            containers_active: self
                .containers
                .values()
                .filter(|c| matches!(c.state, ContainerState::Allocated | ContainerState::Running))
                .count(),
            containers_pending: self.pending.len(),
        })
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Total asks ever submitted (the "4000+ requested" counter of Figure 1).
    pub fn total_requested(&self) -> u64 {
        self.total_requested
    }

    /// Total containers ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Asks currently waiting in the pipeline.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm() -> ResourceManager {
        let mut rm = ResourceManager::with_nodes(4, Resource::new(16384, 16));
        rm.set_alloc_service_ms(10);
        rm
    }

    #[test]
    fn allocation_takes_service_time() {
        let mut rm = rm();
        let app = rm.register_application("flink");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        // Immediately: nothing allocated yet.
        let r = rm.allocate(app).unwrap();
        assert!(r.allocated.is_empty());
        assert_eq!(r.num_pending, 1);
        // After the service time the container arrives.
        rm.advance_clock(10);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 1);
        assert_eq!(r.num_pending, 0);
        assert_eq!(r.allocated[0].resource, Resource::new(1024, 1));
    }

    #[test]
    fn heartbeat_drains_each_container_once() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(100);
        assert_eq!(rm.allocate(app).unwrap().allocated.len(), 3);
        assert_eq!(rm.allocate(app).unwrap().allocated.len(), 0);
    }

    #[test]
    fn normalization_applies_to_allocated_containers() {
        let mut rm = rm();
        let app = rm.register_application("a");
        let normalized = rm
            .add_container_request(app, Resource::new(1500, 1))
            .unwrap();
        assert_eq!(normalized, Resource::new(2048, 1)); // Capacity scheduler.
        rm.advance_clock(50);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated[0].resource, Resource::new(2048, 1));
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        let mut rm = rm();
        let app = rm.register_application("a");
        assert!(matches!(
            rm.add_container_request(app, Resource::new(1_000_000, 1)),
            Err(YarnError::InvalidResourceRequest { .. })
        ));
    }

    #[test]
    fn remove_container_requests_cancels_pending() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..5 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        assert_eq!(rm.remove_container_requests(app, 3), 3);
        assert_eq!(rm.pending_count(), 2);
        rm.advance_clock(1000);
        assert_eq!(rm.allocate(app).unwrap().allocated.len(), 2);
    }

    #[test]
    fn pipeline_stalls_when_cluster_is_full() {
        let mut rm = ResourceManager::with_nodes(1, Resource::new(2048, 2));
        rm.set_alloc_service_ms(1);
        let app = rm.register_application("a");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(1000);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 2); // Node holds 2 x (1024 MB, 1 core).
        assert_eq!(r.num_pending, 1);
        // Releasing a container unblocks the stalled ask.
        let released = r.allocated[0].id;
        rm.release_container(released).unwrap();
        rm.advance_clock(1000);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 1);
        // The earlier release is reported as completed.
        assert!(r.completed.iter().any(|(id, _)| *id == released));
    }

    #[test]
    fn pmem_monitor_kills_over_limit_containers() {
        let mut rm = rm();
        let app = rm.register_application("flink-jm");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(50);
        let c = rm.allocate(app).unwrap().allocated[0].clone();
        rm.start_container(c.id).unwrap();
        // The JVM inside uses more physical memory than the container size.
        rm.report_container_pmem(c.id, 1500).unwrap();
        let killed = rm.enforce_pmem();
        assert_eq!(killed, vec![c.id]);
        let state = &rm.container(c.id).unwrap().state;
        assert!(
            matches!(state, ContainerState::Killed { reason } if reason.contains("beyond physical memory limits"))
        );
        // The kill is visible on the next heartbeat.
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.completed.len(), 1);
    }

    #[test]
    fn pmem_monitor_respects_config() {
        let mut cfg = default_yarn_config();
        cfg.set(config::PMEM_CHECK_ENABLED, "false", "test");
        let mut rm = ResourceManager::new(cfg, RmMode::Classic);
        rm.add_node(NodeId(0), Resource::new(16384, 16));
        let app = rm.register_application("a");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(100);
        let c = rm.allocate(app).unwrap().allocated[0].clone();
        rm.report_container_pmem(c.id, 9999).unwrap();
        assert!(rm.enforce_pmem().is_empty());
    }

    #[test]
    fn cluster_metrics_unavailable_in_federation_mode() {
        let rm_classic = rm();
        assert!(rm_classic.get_cluster_metrics().is_ok());
        let rm_fed = ResourceManager::new(default_yarn_config(), RmMode::Federation);
        assert!(matches!(
            rm_fed.get_cluster_metrics(),
            Err(YarnError::UnsupportedInMode { .. })
        ));
    }

    #[test]
    fn metrics_track_usage() {
        let mut rm = rm();
        let app = rm.register_application("a");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(50);
        rm.allocate(app).unwrap();
        let m = rm.get_cluster_metrics().unwrap();
        assert_eq!(m.num_node_managers, 4);
        assert_eq!(m.total, Resource::new(4 * 16384, 64));
        assert_eq!(m.available, Resource::new(4 * 16384 - 1024, 63));
        assert_eq!(m.containers_active, 1);
    }

    #[test]
    fn unknown_application_is_rejected() {
        let mut rm = rm();
        assert!(matches!(
            rm.allocate(ApplicationId(999)),
            Err(YarnError::UnknownApplication(999))
        ));
        assert!(rm
            .add_container_request(ApplicationId(999), Resource::new(1024, 1))
            .is_err());
    }

    #[test]
    fn unregister_releases_everything_and_reports_status() {
        let mut rm = rm();
        let app = rm.register_application("spark-job");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(50);
        let allocated = rm.allocate(app).unwrap().allocated;
        assert_eq!(allocated.len(), 3);
        let report = rm.application_report(app).unwrap();
        assert_eq!(report.state, AppLifecycle::Running);
        assert_eq!(report.final_status, AmFinalStatus::Undefined);
        assert_eq!(report.live_containers, 3);
        rm.unregister_application(app, AmFinalStatus::Failed)
            .unwrap();
        let report = rm.application_report(app).unwrap();
        assert_eq!(report.state, AppLifecycle::Finished);
        assert_eq!(report.final_status, AmFinalStatus::Failed);
        assert_eq!(report.live_containers, 0);
        // The cluster capacity is fully returned.
        let m = rm.get_cluster_metrics().unwrap();
        assert_eq!(m.available, m.total);
    }

    #[test]
    fn unregister_drops_pending_asks() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..5 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.unregister_application(app, AmFinalStatus::Succeeded)
            .unwrap();
        assert_eq!(rm.pending_count(), 0);
        assert!(rm.application_report(ApplicationId(999)).is_err());
    }

    #[test]
    fn backlog_degrades_service_time() {
        // With 2000 pending asks, each allocation takes 3x the base time.
        let mut rm = ResourceManager::with_nodes(64, Resource::new(1 << 20, 1 << 10));
        rm.set_alloc_service_ms(10);
        let app = rm.register_application("a");
        for _ in 0..2000 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(30);
        // Base service would have allocated 3 containers; degraded service
        // (30ms each at backlog 2000) allocates exactly 1.
        assert_eq!(rm.total_allocated(), 1);
    }
}
