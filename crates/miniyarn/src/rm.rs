//! The ResourceManager: applications, nodes, the allocation pipeline, and
//! the pmem monitor.
//!
//! Storage is production-shaped: applications live in a dense `Vec` indexed
//! by id, containers in a generation-checked [`Slab`] whose slots are only
//! recycled through [`ResourceManager::evict_completed`], and the live
//! containers of each application (plus the cluster-wide live set) are
//! indexed in `BTreeSet`s so heartbeats, reports, and the pmem monitor no
//! longer scan every container ever allocated. Iteration order everywhere
//! observable is ascending container id — exactly the order the seed's
//! `BTreeMap<ContainerId, Container>` produced.

use crate::config::{self, default_yarn_config};
use crate::error::YarnError;
use crate::resource::Resource;
use crate::scheduler::{scheduler_from_config, Scheduler, SchedulerKind};
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::config::ConfigMap;
use csi_core::fault::{Channel, InjectionRegistry};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifier of a registered application (application master).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApplicationId(pub u64);

/// Identifier of a container.
///
/// Encodes a slab slot and its generation: the low 32 bits are
/// `slot + 1`, the high 32 bits the slot's generation. Generation-0 ids
/// are therefore the plain sequence `1, 2, 3, …` — identical to the
/// seed's monotonic counter — and only diverge once
/// [`ResourceManager::evict_completed`] recycles slots, at which point the
/// generation fences every stale id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

/// Identifier of a NodeManager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

fn encode_container(slot: u32, generation: u32) -> ContainerId {
    ContainerId((u64::from(generation) << 32) | (u64::from(slot) + 1))
}

fn decode_container(id: ContainerId) -> Option<(u32, u32)> {
    let low = id.0 & 0xFFFF_FFFF;
    if low == 0 {
        return None;
    }
    #[allow(clippy::cast_possible_truncation)]
    Some(((low - 1) as u32, (id.0 >> 32) as u32))
}

/// Deployment mode of the ResourceManager.
///
/// Some client APIs are unavailable outside the classic mode; YARN-9724 is
/// the CSI failure where an upstream assumed `getClusterMetrics` worked in
/// every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmMode {
    /// A single classic ResourceManager.
    Classic,
    /// A federated deployment, where some client APIs are not implemented.
    Federation,
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerState {
    /// Allocated but not yet started by the AM.
    Allocated,
    /// Started and running.
    Running,
    /// Completed normally.
    Completed,
    /// Killed by the platform.
    Killed {
        /// Why the platform killed it (e.g. the pmem monitor).
        reason: String,
    },
}

/// A container handed to an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// Owning application.
    pub app: ApplicationId,
    /// Node hosting the container.
    pub node: NodeId,
    /// Allocated resource (post-normalization).
    pub resource: Resource,
    /// Current state.
    pub state: ContainerState,
    /// Last reported physical memory use, MB.
    pub pmem_used_mb: u64,
}

/// One heartbeat response of the AM–RM protocol.
#[derive(Debug, Clone, Default)]
pub struct AllocateResponse {
    /// Containers newly allocated since the previous heartbeat.
    pub allocated: Vec<Container>,
    /// Containers that completed or were killed since the previous
    /// heartbeat.
    pub completed: Vec<(ContainerId, ContainerState)>,
    /// Number of this application's asks still pending at the RM.
    pub num_pending: usize,
}

/// Cluster-level metrics (YARN's `getYarnClusterMetrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Registered NodeManagers.
    pub num_node_managers: usize,
    /// Total cluster capacity.
    pub total: Resource,
    /// Capacity not currently allocated.
    pub available: Resource,
    /// Containers currently allocated or running.
    pub containers_active: usize,
    /// Asks waiting in the allocation pipeline.
    pub containers_pending: usize,
}

#[derive(Debug)]
struct Node {
    capacity: Resource,
    used: Resource,
}

/// Final status an ApplicationMaster registers when unregistering —
/// YARN's view of how the job ended, which monitoring consumers act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmFinalStatus {
    /// The AM never registered a status (or is still running).
    #[default]
    Undefined,
    /// Registered SUCCEEDED.
    Succeeded,
    /// Registered FAILED.
    Failed,
}

/// Lifecycle state of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppLifecycle {
    /// Registered and running.
    #[default]
    Running,
    /// Unregistered.
    Finished,
}

/// The report `getApplicationReport` returns to monitoring consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplicationReport {
    /// Lifecycle state.
    pub state: AppLifecycle,
    /// The AM-registered final status.
    pub final_status: AmFinalStatus,
    /// Containers still held.
    pub live_containers: usize,
}

#[derive(Debug, Default)]
struct AppState {
    #[allow(dead_code)]
    name: String,
    ready: Vec<ContainerId>,
    completed: Vec<(ContainerId, ContainerState)>,
    lifecycle: AppLifecycle,
    final_status: AmFinalStatus,
    /// This app's containers in `Allocated | Running` state, ascending id —
    /// the order the seed's full-map scans observed them in.
    live: BTreeSet<ContainerId>,
    /// This app's asks still waiting in the pipeline (O(1) `num_pending`).
    pending_asks: usize,
}

struct PendingAsk {
    app: ApplicationId,
    resource: Resource,
}

#[derive(Debug)]
struct SlabEntry<T> {
    generation: u32,
    val: Option<T>,
}

/// A slab allocator with generation-checked handles.
///
/// Slots are recycled LIFO; every removal bumps the slot's generation so a
/// handle minted for the previous occupant no longer resolves. A slab that
/// is never drained hands out slots `0, 1, 2, …` in order, which is what
/// keeps generation-0 container ids sequential.
#[derive(Debug)]
struct Slab<T> {
    entries: Vec<SlabEntry<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// The (slot, generation) the next [`Slab::insert`] will occupy.
    fn next_slot(&self) -> (u32, u32) {
        match self.free.last() {
            Some(&slot) => (slot, self.entries[slot as usize].generation),
            None => (u32::try_from(self.entries.len()).expect("slab overflow"), 0),
        }
    }

    fn insert(&mut self, val: T) -> (u32, u32) {
        match self.free.pop() {
            Some(slot) => {
                let e = &mut self.entries[slot as usize];
                debug_assert!(e.val.is_none(), "free slot must be empty");
                e.val = Some(val);
                (slot, e.generation)
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slab overflow");
                self.entries.push(SlabEntry {
                    generation: 0,
                    val: Some(val),
                });
                (slot, 0)
            }
        }
    }

    fn get(&self, slot: u32, generation: u32) -> Option<&T> {
        self.entries
            .get(slot as usize)
            .filter(|e| e.generation == generation)
            .and_then(|e| e.val.as_ref())
    }

    fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut T> {
        self.entries
            .get_mut(slot as usize)
            .filter(|e| e.generation == generation)
            .and_then(|e| e.val.as_mut())
    }

    fn remove(&mut self, slot: u32, generation: u32) -> Option<T> {
        let e = self.entries.get_mut(slot as usize)?;
        if e.generation != generation || e.val.is_none() {
            return None;
        }
        let val = e.val.take();
        e.generation = e.generation.wrapping_add(1);
        self.free.push(slot);
        val
    }

    /// Occupied slots, ascending — deterministic scan order.
    fn iter(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.val
                .as_ref()
                .map(|v| (u32::try_from(i).expect("slab overflow"), e.generation, v))
        })
    }
}

/// The miniyarn ResourceManager.
///
/// Time is driven externally via [`ResourceManager::advance_clock`]; the
/// allocation pipeline serves one ask every `alloc_service_ms` of virtual
/// time, which is the latency at the heart of FLINK-12342.
pub struct ResourceManager {
    config: ConfigMap,
    scheduler: Box<dyn Scheduler + Send>,
    mode: RmMode,
    nodes: BTreeMap<NodeId, Node>,
    /// Applications, indexed by `id - 1`. Never freed: YARN keeps finished
    /// application reports queryable.
    apps: Vec<AppState>,
    containers: Slab<Container>,
    /// Every container in `Allocated | Running` state, ascending id.
    live: BTreeSet<ContainerId>,
    pending: VecDeque<PendingAsk>,
    clock_ms: u64,
    pipeline_free_at: u64,
    alloc_service_ms: u64,
    total_requested: u64,
    total_allocated: u64,
    crossing: Option<CrossingContext>,
}

impl ResourceManager {
    /// Creates an RM with the given configuration and deployment mode.
    pub fn new(config: ConfigMap, mode: RmMode) -> ResourceManager {
        let scheduler = scheduler_from_config(&config);
        ResourceManager {
            config,
            scheduler,
            mode,
            nodes: BTreeMap::new(),
            apps: Vec::new(),
            containers: Slab::default(),
            live: BTreeSet::new(),
            pending: VecDeque::new(),
            clock_ms: 0,
            pipeline_free_at: 0,
            alloc_service_ms: 10,
            total_requested: 0,
            total_allocated: 0,
            crossing: None,
        }
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; RM request entry points route through it, and
    /// injected latency slows the allocation pipeline.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every RM request entry
    /// point crosses the [`Channel::Yarn`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The RM request boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, payload: &str) -> Result<(), YarnError> {
        match &self.crossing {
            Some(ctx) => ctx.cross(BoundaryCall::new(Channel::Yarn, op).with_payload(payload)),
            None => Ok(()),
        }
    }

    /// Creates a classic-mode RM with default configuration and `n` nodes of
    /// the given capacity.
    pub fn with_nodes(n: u32, capacity: Resource) -> ResourceManager {
        let mut rm = ResourceManager::new(default_yarn_config(), RmMode::Classic);
        for i in 0..n {
            rm.add_node(NodeId(i), capacity);
        }
        rm
    }

    /// The active scheduler kind.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler.kind()
    }

    /// The RM's configuration.
    pub fn config(&self) -> &ConfigMap {
        &self.config
    }

    /// Sets the per-container allocation service time (ms of virtual time).
    pub fn set_alloc_service_ms(&mut self, ms: u64) {
        self.alloc_service_ms = ms.max(1);
    }

    /// Registers a NodeManager.
    pub fn add_node(&mut self, id: NodeId, capacity: Resource) {
        self.nodes.insert(
            id,
            Node {
                capacity,
                used: Resource::default(),
            },
        );
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock_ms
    }

    /// Advances virtual time, letting the allocation pipeline make progress.
    pub fn advance_clock(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.process_pipeline();
    }

    fn app_index(&self, app: ApplicationId) -> Result<usize, YarnError> {
        let idx = app
            .0
            .checked_sub(1)
            .ok_or(YarnError::UnknownApplication(app.0))?;
        if idx >= self.apps.len() as u64 {
            return Err(YarnError::UnknownApplication(app.0));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(idx as usize)
    }

    fn container_mut(&mut self, id: ContainerId) -> Result<&mut Container, YarnError> {
        decode_container(id)
            .and_then(|(slot, generation)| self.containers.get_mut(slot, generation))
            .ok_or(YarnError::UnknownContainer(id.0))
    }

    /// Registers an application master.
    pub fn register_application(&mut self, name: &str) -> ApplicationId {
        self.apps.push(AppState {
            name: name.to_string(),
            ..AppState::default()
        });
        ApplicationId(self.apps.len() as u64)
    }

    /// Adds one container ask. The ask is normalized by the deployed
    /// scheduler and queued; the container arrives via a later
    /// [`ResourceManager::allocate`] heartbeat.
    ///
    /// Returns the *normalized* resource the cluster will actually allocate.
    pub fn add_container_request(
        &mut self,
        app: ApplicationId,
        ask: Resource,
    ) -> Result<Resource, YarnError> {
        self.cross("add_container_request", &format!("app-{}", app.0))?;
        let idx = self.app_index(app)?;
        let normalized = self.scheduler.normalize(ask, &self.config)?;
        self.pending.push_back(PendingAsk {
            app,
            resource: normalized,
        });
        self.apps[idx].pending_asks += 1;
        self.total_requested += 1;
        Ok(normalized)
    }

    /// Removes up to `n` of this application's pending asks (oldest first),
    /// returning how many were removed. This is workaround #2 of Figure 5:
    /// "remove the container requests as fast as possible".
    pub fn remove_container_requests(&mut self, app: ApplicationId, n: usize) -> usize {
        let mut removed = 0;
        self.pending.retain(|ask| {
            if ask.app == app && removed < n {
                removed += 1;
                false
            } else {
                true
            }
        });
        if removed > 0 {
            if let Ok(idx) = self.app_index(app) {
                self.apps[idx].pending_asks -= removed;
            }
        }
        removed
    }

    /// The AM–RM heartbeat: returns containers allocated and completed since
    /// the application's previous heartbeat.
    pub fn allocate(&mut self, app: ApplicationId) -> Result<AllocateResponse, YarnError> {
        self.cross("allocate", &format!("app-{}", app.0))?;
        self.process_pipeline();
        let idx = self.app_index(app)?;
        let state = &mut self.apps[idx];
        let num_pending = state.pending_asks;
        let ready = std::mem::take(&mut state.ready);
        let completed = std::mem::take(&mut state.completed);
        let allocated = ready
            .iter()
            .filter_map(|id| {
                decode_container(*id)
                    .and_then(|(slot, generation)| self.containers.get(slot, generation))
                    .cloned()
            })
            .collect();
        Ok(AllocateResponse {
            allocated,
            completed,
            num_pending,
        })
    }

    /// Effective per-ask service time: the pipeline degrades as the backlog
    /// grows, the overload effect of Figure 1.
    fn effective_service_ms(&self) -> u64 {
        let backlog_factor = 1 + (self.pending.len() as u64) / 1000;
        let injected = self
            .crossing
            .as_ref()
            .map_or(0, CrossingContext::virtual_delay_ms);
        self.alloc_service_ms * backlog_factor + injected
    }

    fn process_pipeline(&mut self) {
        loop {
            if self.pending.is_empty() {
                break;
            }
            let service = self.effective_service_ms();
            let start = self.pipeline_free_at;
            let done_at = start + service;
            if done_at > self.clock_ms {
                break;
            }
            let ask = self.pending.front().expect("checked non-empty");
            match self.place(ask.resource) {
                Some(node) => {
                    let ask = self.pending.pop_front().expect("checked non-empty");
                    self.pipeline_free_at = done_at;
                    let (slot, generation) = self.containers.next_slot();
                    let id = encode_container(slot, generation);
                    let container = Container {
                        id,
                        app: ask.app,
                        node,
                        resource: ask.resource,
                        state: ContainerState::Allocated,
                        pmem_used_mb: 0,
                    };
                    self.nodes.get_mut(&node).expect("node exists").used += ask.resource;
                    let inserted = self.containers.insert(container);
                    debug_assert_eq!(inserted, (slot, generation));
                    self.live.insert(id);
                    self.total_allocated += 1;
                    if let Ok(idx) = self.app_index(ask.app) {
                        let app = &mut self.apps[idx];
                        app.ready.push(id);
                        app.live.insert(id);
                        app.pending_asks -= 1;
                    }
                }
                None => {
                    // Head-of-line blocking: no node can currently host the
                    // ask; the pipeline stalls until resources free up.
                    break;
                }
            }
        }
    }

    fn place(&self, resource: Resource) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|(_, n)| resource.fits_in(&n.capacity.saturating_sub(&n.used)))
            .map(|(id, _)| *id)
    }

    /// Marks an allocated container as started (NMClient `startContainer`).
    pub fn start_container(&mut self, id: ContainerId) -> Result<(), YarnError> {
        let c = self.container_mut(id)?;
        if c.state == ContainerState::Allocated {
            c.state = ContainerState::Running;
            Ok(())
        } else {
            Err(YarnError::UnknownContainer(id.0))
        }
    }

    /// Releases a container back to the cluster.
    pub fn release_container(&mut self, id: ContainerId) -> Result<(), YarnError> {
        let c = self.container_mut(id)?;
        if matches!(
            c.state,
            ContainerState::Completed | ContainerState::Killed { .. }
        ) {
            return Ok(());
        }
        c.state = ContainerState::Completed;
        let (node, res, app) = (c.node, c.resource, c.app);
        self.live.remove(&id);
        if let Some(n) = self.nodes.get_mut(&node) {
            n.used -= res;
        }
        if let Ok(idx) = self.app_index(app) {
            let a = &mut self.apps[idx];
            a.live.remove(&id);
            a.completed.push((id, ContainerState::Completed));
        }
        Ok(())
    }

    /// Reports the physical memory a container's process tree uses (the
    /// NodeManager's pmem sampling).
    pub fn report_container_pmem(&mut self, id: ContainerId, mb: u64) -> Result<(), YarnError> {
        self.container_mut(id)?.pmem_used_mb = mb;
        Ok(())
    }

    /// Runs the pmem monitor: kills every running container whose reported
    /// physical memory exceeds its allocation (FLINK-887). Returns the
    /// killed container ids.
    pub fn enforce_pmem(&mut self) -> Vec<ContainerId> {
        let enabled = matches!(
            self.config.get_bool(config::PMEM_CHECK_ENABLED),
            Some(Ok(true))
        );
        if !enabled {
            return Vec::new();
        }
        let mut killed = Vec::new();
        // The live index replaces the seed's scan over every container ever
        // allocated; `BTreeSet` iteration preserves the ascending-id victim
        // order the scan produced.
        let victims: Vec<ContainerId> = self
            .live
            .iter()
            .copied()
            .filter(|id| {
                decode_container(*id)
                    .and_then(|(slot, generation)| self.containers.get(slot, generation))
                    .is_some_and(|c| c.pmem_used_mb > c.resource.memory_mb)
            })
            .collect();
        for id in victims {
            let c = self.container_mut(id).expect("victim exists");
            let reason = format!(
                "Container {} is running beyond physical memory limits. \
                 Current usage: {} MB of {} MB physical memory used. Killing container.",
                id.0, c.pmem_used_mb, c.resource.memory_mb
            );
            c.state = ContainerState::Killed {
                reason: reason.clone(),
            };
            let (node, res, app) = (c.node, c.resource, c.app);
            self.live.remove(&id);
            if let Some(n) = self.nodes.get_mut(&node) {
                n.used -= res;
            }
            if let Ok(idx) = self.app_index(app) {
                let a = &mut self.apps[idx];
                a.live.remove(&id);
                a.completed.push((id, ContainerState::Killed { reason }));
            }
            killed.push(id);
        }
        killed
    }

    /// Unregisters an application with its final status: all its pending
    /// asks are dropped and its containers released.
    pub fn unregister_application(
        &mut self,
        app: ApplicationId,
        final_status: AmFinalStatus,
    ) -> Result<(), YarnError> {
        let idx = self.app_index(app)?;
        self.pending.retain(|a| a.app != app);
        self.apps[idx].pending_asks = 0;
        // Ascending-id release order, as the seed's container scan yielded.
        let held: Vec<ContainerId> = self.apps[idx].live.iter().copied().collect();
        for id in held {
            self.release_container(id)?;
        }
        let state = &mut self.apps[idx];
        state.lifecycle = AppLifecycle::Finished;
        state.final_status = final_status;
        Ok(())
    }

    /// The application report monitoring consumers read
    /// (`getApplicationReport`).
    pub fn application_report(&self, app: ApplicationId) -> Result<ApplicationReport, YarnError> {
        let state = &self.apps[self.app_index(app)?];
        Ok(ApplicationReport {
            state: state.lifecycle,
            final_status: state.final_status,
            live_containers: state.live.len(),
        })
    }

    /// Cluster metrics, available only in classic mode (YARN-9724).
    pub fn get_cluster_metrics(&self) -> Result<ClusterMetrics, YarnError> {
        self.cross("get_cluster_metrics", "cluster")?;
        if self.mode == RmMode::Federation {
            return Err(YarnError::UnsupportedInMode {
                op: "getClusterMetrics",
                mode: "federation",
            });
        }
        let total = self
            .nodes
            .values()
            .fold(Resource::default(), |acc, n| acc + n.capacity);
        let used = self
            .nodes
            .values()
            .fold(Resource::default(), |acc, n| acc + n.used);
        Ok(ClusterMetrics {
            num_node_managers: self.nodes.len(),
            total,
            available: total.saturating_sub(&used),
            containers_active: self.live.len(),
            containers_pending: self.pending.len(),
        })
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        decode_container(id).and_then(|(slot, generation)| self.containers.get(slot, generation))
    }

    /// Evicts every `Completed`/`Killed` container record, freeing its slab
    /// slot for reuse. The freed slot's generation bumps, so stale ids
    /// minted for evicted containers no longer resolve. Returns the number
    /// of records evicted.
    ///
    /// Long-running clusters call this between job waves; without it the
    /// container table grows without bound (and ids never deviate from the
    /// seed's sequence).
    pub fn evict_completed(&mut self) -> usize {
        let dead: Vec<(u32, u32)> = self
            .containers
            .iter()
            .filter(|(_, _, c)| {
                matches!(
                    c.state,
                    ContainerState::Completed | ContainerState::Killed { .. }
                )
            })
            .map(|(slot, generation, _)| (slot, generation))
            .collect();
        for &(slot, generation) in &dead {
            self.containers.remove(slot, generation);
        }
        dead.len()
    }

    /// Total asks ever submitted (the "4000+ requested" counter of Figure 1).
    pub fn total_requested(&self) -> u64 {
        self.total_requested
    }

    /// Total containers ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Asks currently waiting in the pipeline.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm() -> ResourceManager {
        let mut rm = ResourceManager::with_nodes(4, Resource::new(16384, 16));
        rm.set_alloc_service_ms(10);
        rm
    }

    #[test]
    fn allocation_takes_service_time() {
        let mut rm = rm();
        let app = rm.register_application("flink");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        // Immediately: nothing allocated yet.
        let r = rm.allocate(app).unwrap();
        assert!(r.allocated.is_empty());
        assert_eq!(r.num_pending, 1);
        // After the service time the container arrives.
        rm.advance_clock(10);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 1);
        assert_eq!(r.num_pending, 0);
        assert_eq!(r.allocated[0].resource, Resource::new(1024, 1));
    }

    #[test]
    fn heartbeat_drains_each_container_once() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(100);
        assert_eq!(rm.allocate(app).unwrap().allocated.len(), 3);
        assert_eq!(rm.allocate(app).unwrap().allocated.len(), 0);
    }

    #[test]
    fn normalization_applies_to_allocated_containers() {
        let mut rm = rm();
        let app = rm.register_application("a");
        let normalized = rm
            .add_container_request(app, Resource::new(1500, 1))
            .unwrap();
        assert_eq!(normalized, Resource::new(2048, 1)); // Capacity scheduler.
        rm.advance_clock(50);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated[0].resource, Resource::new(2048, 1));
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        let mut rm = rm();
        let app = rm.register_application("a");
        assert!(matches!(
            rm.add_container_request(app, Resource::new(1_000_000, 1)),
            Err(YarnError::InvalidResourceRequest { .. })
        ));
    }

    #[test]
    fn remove_container_requests_cancels_pending() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..5 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        assert_eq!(rm.remove_container_requests(app, 3), 3);
        assert_eq!(rm.pending_count(), 2);
        rm.advance_clock(1000);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 2);
        assert_eq!(r.num_pending, 0);
    }

    #[test]
    fn pipeline_stalls_when_cluster_is_full() {
        let mut rm = ResourceManager::with_nodes(1, Resource::new(2048, 2));
        rm.set_alloc_service_ms(1);
        let app = rm.register_application("a");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(1000);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 2); // Node holds 2 x (1024 MB, 1 core).
        assert_eq!(r.num_pending, 1);
        // Releasing a container unblocks the stalled ask.
        let released = r.allocated[0].id;
        rm.release_container(released).unwrap();
        rm.advance_clock(1000);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated.len(), 1);
        // The earlier release is reported as completed.
        assert!(r.completed.iter().any(|(id, _)| *id == released));
    }

    #[test]
    fn pmem_monitor_kills_over_limit_containers() {
        let mut rm = rm();
        let app = rm.register_application("flink-jm");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(50);
        let c = rm.allocate(app).unwrap().allocated[0].clone();
        rm.start_container(c.id).unwrap();
        // The JVM inside uses more physical memory than the container size.
        rm.report_container_pmem(c.id, 1500).unwrap();
        let killed = rm.enforce_pmem();
        assert_eq!(killed, vec![c.id]);
        let state = &rm.container(c.id).unwrap().state;
        assert!(
            matches!(state, ContainerState::Killed { reason } if reason.contains("beyond physical memory limits"))
        );
        // The kill is visible on the next heartbeat.
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.completed.len(), 1);
    }

    #[test]
    fn pmem_monitor_respects_config() {
        let mut cfg = default_yarn_config();
        cfg.set(config::PMEM_CHECK_ENABLED, "false", "test");
        let mut rm = ResourceManager::new(cfg, RmMode::Classic);
        rm.add_node(NodeId(0), Resource::new(16384, 16));
        let app = rm.register_application("a");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(100);
        let c = rm.allocate(app).unwrap().allocated[0].clone();
        rm.report_container_pmem(c.id, 9999).unwrap();
        assert!(rm.enforce_pmem().is_empty());
    }

    #[test]
    fn cluster_metrics_unavailable_in_federation_mode() {
        let rm_classic = rm();
        assert!(rm_classic.get_cluster_metrics().is_ok());
        let rm_fed = ResourceManager::new(default_yarn_config(), RmMode::Federation);
        assert!(matches!(
            rm_fed.get_cluster_metrics(),
            Err(YarnError::UnsupportedInMode { .. })
        ));
    }

    #[test]
    fn metrics_track_usage() {
        let mut rm = rm();
        let app = rm.register_application("a");
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(50);
        rm.allocate(app).unwrap();
        let m = rm.get_cluster_metrics().unwrap();
        assert_eq!(m.num_node_managers, 4);
        assert_eq!(m.total, Resource::new(4 * 16384, 64));
        assert_eq!(m.available, Resource::new(4 * 16384 - 1024, 63));
        assert_eq!(m.containers_active, 1);
    }

    #[test]
    fn unknown_application_is_rejected() {
        let mut rm = rm();
        assert!(matches!(
            rm.allocate(ApplicationId(999)),
            Err(YarnError::UnknownApplication(999))
        ));
        assert!(rm
            .add_container_request(ApplicationId(999), Resource::new(1024, 1))
            .is_err());
    }

    #[test]
    fn unregister_releases_everything_and_reports_status() {
        let mut rm = rm();
        let app = rm.register_application("spark-job");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(50);
        let allocated = rm.allocate(app).unwrap().allocated;
        assert_eq!(allocated.len(), 3);
        let report = rm.application_report(app).unwrap();
        assert_eq!(report.state, AppLifecycle::Running);
        assert_eq!(report.final_status, AmFinalStatus::Undefined);
        assert_eq!(report.live_containers, 3);
        rm.unregister_application(app, AmFinalStatus::Failed)
            .unwrap();
        let report = rm.application_report(app).unwrap();
        assert_eq!(report.state, AppLifecycle::Finished);
        assert_eq!(report.final_status, AmFinalStatus::Failed);
        assert_eq!(report.live_containers, 0);
        // The cluster capacity is fully returned.
        let m = rm.get_cluster_metrics().unwrap();
        assert_eq!(m.available, m.total);
    }

    #[test]
    fn unregister_drops_pending_asks() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..5 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.unregister_application(app, AmFinalStatus::Succeeded)
            .unwrap();
        assert_eq!(rm.pending_count(), 0);
        assert_eq!(rm.allocate(app).unwrap().num_pending, 0);
        assert!(rm.application_report(ApplicationId(999)).is_err());
    }

    #[test]
    fn backlog_degrades_service_time() {
        // With 2000 pending asks, each allocation takes 3x the base time.
        let mut rm = ResourceManager::with_nodes(64, Resource::new(1 << 20, 1 << 10));
        rm.set_alloc_service_ms(10);
        let app = rm.register_application("a");
        for _ in 0..2000 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(30);
        // Base service would have allocated 3 containers; degraded service
        // (30ms each at backlog 2000) allocates exactly 1.
        assert_eq!(rm.total_allocated(), 1);
    }

    #[test]
    fn container_ids_stay_sequential_without_eviction() {
        // Release/kill alone must never recycle ids — the seed's counter
        // semantics hold until an explicit evict.
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..3 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(100);
        let ids: Vec<u64> = rm
            .allocate(app)
            .unwrap()
            .allocated
            .iter()
            .map(|c| c.id.0)
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
        rm.release_container(ContainerId(2)).unwrap();
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(100);
        let r = rm.allocate(app).unwrap();
        assert_eq!(r.allocated[0].id, ContainerId(4));
    }

    #[test]
    fn evict_recycles_slots_and_fences_stale_ids() {
        let mut rm = rm();
        let app = rm.register_application("a");
        for _ in 0..2 {
            rm.add_container_request(app, Resource::new(1024, 1))
                .unwrap();
        }
        rm.advance_clock(100);
        let ids: Vec<ContainerId> = rm
            .allocate(app)
            .unwrap()
            .allocated
            .iter()
            .map(|c| c.id)
            .collect();
        rm.release_container(ids[0]).unwrap();
        assert_eq!(rm.evict_completed(), 1);
        // The evicted record is gone; the live one is untouched.
        assert!(rm.container(ids[0]).is_none());
        assert!(rm.container(ids[1]).is_some());
        assert!(matches!(
            rm.release_container(ids[0]),
            Err(YarnError::UnknownContainer(1))
        ));
        // The next allocation reuses slot 0 under generation 1.
        rm.add_container_request(app, Resource::new(1024, 1))
            .unwrap();
        rm.advance_clock(100);
        let c = &rm.allocate(app).unwrap().allocated[0];
        assert_eq!(c.id.0, (1 << 32) | 1);
        // The stale generation-0 id still does not resolve.
        assert!(rm.container(ids[0]).is_none());
        let m = rm.get_cluster_metrics().unwrap();
        assert_eq!(m.containers_active, 2);
    }
}
