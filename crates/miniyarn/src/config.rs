//! YARN configuration keys and defaults.
//!
//! The keys in this module carry the *inconsistent semantics* at the heart
//! of FLINK-19141 (Figure 3): the CapacityScheduler normalizes container
//! requests to multiples of `yarn.scheduler.minimum-allocation-*`, while the
//! FairScheduler treats those keys only as a floor and instead rounds to
//! multiples of `yarn.resource-types.*.increment-allocation`. Both behaviors
//! are documented and correct; an upstream that reads the former keys while
//! the cluster runs the latter scheduler miscalculates what YARN will
//! actually hand out.

use crate::resource::Resource;
use csi_core::config::ConfigMap;

/// `yarn.scheduler.minimum-allocation-mb`.
pub const MIN_ALLOC_MB: &str = "yarn.scheduler.minimum-allocation-mb";
/// `yarn.scheduler.minimum-allocation-vcores`.
pub const MIN_ALLOC_VCORES: &str = "yarn.scheduler.minimum-allocation-vcores";
/// `yarn.scheduler.maximum-allocation-mb`.
pub const MAX_ALLOC_MB: &str = "yarn.scheduler.maximum-allocation-mb";
/// `yarn.scheduler.maximum-allocation-vcores`.
pub const MAX_ALLOC_VCORES: &str = "yarn.scheduler.maximum-allocation-vcores";
/// `yarn.resource-types.memory-mb.increment-allocation` (FairScheduler).
pub const INC_ALLOC_MB: &str = "yarn.resource-types.memory-mb.increment-allocation";
/// `yarn.resource-types.vcores.increment-allocation` (FairScheduler).
pub const INC_ALLOC_VCORES: &str = "yarn.resource-types.vcores.increment-allocation";
/// `yarn.nodemanager.pmem-check-enabled`.
pub const PMEM_CHECK_ENABLED: &str = "yarn.nodemanager.pmem-check-enabled";
/// `yarn.resourcemanager.scheduler.class`.
pub const SCHEDULER_CLASS: &str = "yarn.resourcemanager.scheduler.class";

/// Builds a `yarn-site.xml`-like [`ConfigMap`] with YARN's defaults.
pub fn default_yarn_config() -> ConfigMap {
    let mut c = ConfigMap::new("yarn");
    let src = "yarn-default.xml";
    c.set(MIN_ALLOC_MB, "1024", src);
    c.set(MIN_ALLOC_VCORES, "1", src);
    c.set(MAX_ALLOC_MB, "8192", src);
    c.set(MAX_ALLOC_VCORES, "4", src);
    c.set(INC_ALLOC_MB, "512", src);
    c.set(INC_ALLOC_VCORES, "1", src);
    c.set(PMEM_CHECK_ENABLED, "true", src);
    c.set(
        SCHEDULER_CLASS,
        "org.apache.hadoop.yarn.server.resourcemanager.scheduler.capacity.CapacityScheduler",
        src,
    );
    c
}

fn get_u64(config: &ConfigMap, key: &str, default: u64) -> u64 {
    match config.get_i64(key) {
        Some(Ok(v)) if v >= 0 => v as u64,
        _ => default,
    }
}

/// Reads the minimum-allocation resource from a config.
pub fn min_allocation(config: &ConfigMap) -> Resource {
    Resource::new(
        get_u64(config, MIN_ALLOC_MB, 1024),
        get_u64(config, MIN_ALLOC_VCORES, 1) as u32,
    )
}

/// Reads the maximum-allocation resource from a config.
pub fn max_allocation(config: &ConfigMap) -> Resource {
    Resource::new(
        get_u64(config, MAX_ALLOC_MB, 8192),
        get_u64(config, MAX_ALLOC_VCORES, 4) as u32,
    )
}

/// Reads the increment-allocation resource from a config (FairScheduler).
pub fn increment_allocation(config: &ConfigMap) -> Resource {
    Resource::new(
        get_u64(config, INC_ALLOC_MB, 512),
        get_u64(config, INC_ALLOC_VCORES, 1) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_complete() {
        let c = default_yarn_config();
        assert_eq!(min_allocation(&c), Resource::new(1024, 1));
        assert_eq!(max_allocation(&c), Resource::new(8192, 4));
        assert_eq!(increment_allocation(&c), Resource::new(512, 1));
        assert_eq!(c.get_bool(PMEM_CHECK_ENABLED), Some(Ok(true)));
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        let mut c = default_yarn_config();
        c.set(MIN_ALLOC_MB, "not-a-number", "test");
        assert_eq!(min_allocation(&c).memory_mb, 1024);
    }
}
