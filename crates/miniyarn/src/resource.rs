//! Container resource vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A resource vector: memory in MB and virtual cores.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Resource {
    /// Memory, in megabytes.
    pub memory_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl Resource {
    /// Creates a resource vector.
    pub const fn new(memory_mb: u64, vcores: u32) -> Resource {
        Resource { memory_mb, vcores }
    }

    /// Whether `self` fits within `capacity` on both dimensions.
    pub fn fits_in(&self, capacity: &Resource) -> bool {
        self.memory_mb <= capacity.memory_mb && self.vcores <= capacity.vcores
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb.saturating_sub(other.memory_mb),
            vcores: self.vcores.saturating_sub(other.vcores),
        }
    }

    /// Rounds each dimension *up* to a multiple of the given step, with a
    /// zero step treated as 1.
    pub fn round_up_to(&self, step: &Resource) -> Resource {
        fn round(v: u64, s: u64) -> u64 {
            let s = s.max(1);
            v.div_ceil(s) * s
        }
        Resource {
            memory_mb: round(self.memory_mb, step.memory_mb),
            vcores: round(self.vcores as u64, step.vcores.max(1) as u64) as u32,
        }
    }

    /// Component-wise maximum.
    pub fn component_max(&self, other: &Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb.max(other.memory_mb),
            vcores: self.vcores.max(other.vcores),
        }
    }

    /// Whether either dimension is zero.
    pub fn is_degenerate(&self) -> bool {
        self.memory_mb == 0 || self.vcores == 0
    }
}

impl Add for Resource {
    type Output = Resource;
    fn add(self, rhs: Resource) -> Resource {
        Resource {
            memory_mb: self.memory_mb + rhs.memory_mb,
            vcores: self.vcores + rhs.vcores,
        }
    }
}

impl AddAssign for Resource {
    fn add_assign(&mut self, rhs: Resource) {
        *self = *self + rhs;
    }
}

impl Sub for Resource {
    type Output = Resource;
    fn sub(self, rhs: Resource) -> Resource {
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for Resource {
    fn sub_assign(&mut self, rhs: Resource) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<memory:{}MB, vCores:{}>", self.memory_mb, self.vcores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_requires_both_dimensions() {
        let cap = Resource::new(4096, 4);
        assert!(Resource::new(1024, 2).fits_in(&cap));
        assert!(!Resource::new(8192, 1).fits_in(&cap));
        assert!(!Resource::new(1024, 8).fits_in(&cap));
    }

    #[test]
    fn round_up_to_multiples() {
        let ask = Resource::new(1000, 3);
        let step = Resource::new(512, 2);
        assert_eq!(ask.round_up_to(&step), Resource::new(1024, 4));
        // Exact multiples are unchanged.
        assert_eq!(
            Resource::new(1024, 4).round_up_to(&step),
            Resource::new(1024, 4)
        );
        // A zero step behaves as 1.
        assert_eq!(
            ask.round_up_to(&Resource::new(0, 0)),
            Resource::new(1000, 3)
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let a = Resource::new(100, 2);
        let b = Resource::new(300, 1);
        assert_eq!(a + b, Resource::new(400, 3));
        assert_eq!(a - b, Resource::new(0, 1));
        let mut c = b;
        c -= a;
        assert_eq!(c, Resource::new(200, 0));
        assert!(c.is_degenerate());
    }

    #[test]
    fn component_wise_max() {
        assert_eq!(
            Resource::new(100, 8).component_max(&Resource::new(200, 2)),
            Resource::new(200, 8)
        );
    }
}
