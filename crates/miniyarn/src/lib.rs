//! `miniyarn` — a resource-manager substrate modeled on Hadoop YARN.
//!
//! Implements the control- and management-plane surfaces that the studied
//! CSI failures exercise:
//!
//! - an AM–RM heartbeat protocol with an explicit **allocation latency
//!   model**, so the sync-vs-async discrepancy of FLINK-12342 (Figure 1)
//!   reproduces deterministically;
//! - two schedulers — [`scheduler::CapacityScheduler`] and
//!   [`scheduler::FairScheduler`] — that normalize container requests using
//!   **different configuration keys with inconsistent semantics**, the
//!   discrepancy of FLINK-19141 (Figure 3);
//! - a **pmem monitor** that kills containers exceeding their allocation,
//!   the monitoring-triggered action of FLINK-887;
//! - a cluster-metrics API that is **unavailable in some deployment modes**,
//!   the feature inconsistency of YARN-9724.
//!
//! As everywhere in this workspace, each behavior is correct per YARN's own
//! specification; CSI failures arise only from upstream assumptions.

pub mod config;
pub mod error;
pub mod resource;
pub mod rm;
pub mod scheduler;

pub use error::YarnError;
pub use resource::Resource;
pub use rm::{
    AllocateResponse, AmFinalStatus, AppLifecycle, ApplicationId, ApplicationReport,
    ClusterMetrics, Container, ContainerId, ContainerState, NodeId, ResourceManager, RmMode,
};
pub use scheduler::{CapacityScheduler, FairScheduler, Scheduler, SchedulerKind};
