//! Schedulers and their (deliberately, faithfully) inconsistent request
//! normalization semantics.

use crate::config::{increment_allocation, max_allocation, min_allocation};
use crate::error::YarnError;
use crate::resource::Resource;
use csi_core::config::ConfigMap;

/// Which scheduler implementation a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The CapacityScheduler (the default).
    Capacity,
    /// The FairScheduler.
    Fair,
}

/// Scheduler-side normalization of a container request.
pub trait Scheduler {
    /// Scheduler kind.
    fn kind(&self) -> SchedulerKind;

    /// Normalizes an ask into the resource YARN will actually allocate, or
    /// rejects it.
    ///
    /// Both implementations are individually correct; they simply use
    /// different configuration keys with different meanings. That is the
    /// discrepancy of FLINK-19141.
    fn normalize(&self, ask: Resource, config: &ConfigMap) -> Result<Resource, YarnError>;
}

/// The CapacityScheduler: asks are raised to at least the minimum
/// allocation and rounded up to a multiple of it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CapacityScheduler;

impl Scheduler for CapacityScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Capacity
    }

    fn normalize(&self, ask: Resource, config: &ConfigMap) -> Result<Resource, YarnError> {
        let min = min_allocation(config);
        let max = max_allocation(config);
        let normalized = ask.component_max(&min).round_up_to(&min);
        if !normalized.fits_in(&max) {
            return Err(YarnError::InvalidResourceRequest {
                ask: normalized,
                max,
            });
        }
        Ok(normalized)
    }
}

/// The FairScheduler: the minimum allocation is only a floor; rounding uses
/// the *increment* allocation keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FairScheduler;

impl Scheduler for FairScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Fair
    }

    fn normalize(&self, ask: Resource, config: &ConfigMap) -> Result<Resource, YarnError> {
        let min = min_allocation(config);
        let inc = increment_allocation(config);
        let max = max_allocation(config);
        let normalized = ask.component_max(&min).round_up_to(&inc);
        if !normalized.fits_in(&max) {
            return Err(YarnError::InvalidResourceRequest {
                ask: normalized,
                max,
            });
        }
        Ok(normalized)
    }
}

/// Instantiates the scheduler configured under
/// [`crate::config::SCHEDULER_CLASS`]; unknown classes fall back to the
/// CapacityScheduler, matching YARN's default.
pub fn scheduler_from_config(config: &ConfigMap) -> Box<dyn Scheduler + Send> {
    match config.get(crate::config::SCHEDULER_CLASS) {
        Some(class) if class.contains("FairScheduler") => Box::new(FairScheduler),
        _ => Box::new(CapacityScheduler),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{self, default_yarn_config};

    #[test]
    fn capacity_rounds_to_minimum_allocation_multiples() {
        let c = default_yarn_config();
        // min = 1024 MB / 1 vcore.
        let got = CapacityScheduler
            .normalize(Resource::new(1536, 1), &c)
            .unwrap();
        assert_eq!(got, Resource::new(2048, 1));
        // Small asks are raised to the minimum.
        let got = CapacityScheduler
            .normalize(Resource::new(100, 1), &c)
            .unwrap();
        assert_eq!(got, Resource::new(1024, 1));
    }

    #[test]
    fn fair_rounds_to_increment_allocation_multiples() {
        let c = default_yarn_config();
        // inc = 512 MB; min = 1024 MB only floors.
        let got = FairScheduler.normalize(Resource::new(1536, 1), &c).unwrap();
        assert_eq!(got, Resource::new(1536, 1));
        let got = FairScheduler.normalize(Resource::new(1600, 1), &c).unwrap();
        assert_eq!(got, Resource::new(2048, 1));
    }

    #[test]
    fn same_ask_same_config_different_answers() {
        // The FLINK-19141 discrepancy in one assertion: identical ask and
        // identical configuration, two different allocations depending on
        // the scheduler actually deployed.
        let c = default_yarn_config();
        let ask = Resource::new(1536, 1);
        let cap = CapacityScheduler.normalize(ask, &c).unwrap();
        let fair = FairScheduler.normalize(ask, &c).unwrap();
        assert_ne!(cap, fair);
    }

    #[test]
    fn both_schedulers_enforce_maximum() {
        let c = default_yarn_config();
        let huge = Resource::new(100_000, 1);
        assert!(matches!(
            CapacityScheduler.normalize(huge, &c),
            Err(YarnError::InvalidResourceRequest { .. })
        ));
        assert!(matches!(
            FairScheduler.normalize(huge, &c),
            Err(YarnError::InvalidResourceRequest { .. })
        ));
    }

    #[test]
    fn normalization_can_push_a_valid_ask_over_the_maximum() {
        // An ask that fits the maximum can be *rejected after rounding* —
        // surprising but correct behavior that upstreams must anticipate.
        let mut c = default_yarn_config();
        c.set(config::MIN_ALLOC_MB, "3072", "test");
        c.set(config::MAX_ALLOC_MB, "4096", "test");
        let ask = Resource::new(4000, 1);
        assert!(CapacityScheduler.normalize(ask, &c).is_err()); // 4000 -> 6144 > 4096.
    }

    #[test]
    fn scheduler_class_selection() {
        let mut c = default_yarn_config();
        assert_eq!(scheduler_from_config(&c).kind(), SchedulerKind::Capacity);
        c.set(
            config::SCHEDULER_CLASS,
            "org.apache.hadoop.yarn.server.resourcemanager.scheduler.fair.FairScheduler",
            "test",
        );
        assert_eq!(scheduler_from_config(&c).kind(), SchedulerKind::Fair);
    }
}
