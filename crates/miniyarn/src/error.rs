//! Errors raised by the miniyarn ResourceManager.

use crate::resource::Resource;
use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectedFault};
use csi_core::{ErrorKind, InteractionError};
use std::fmt;

/// Error type of miniyarn operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YarnError {
    /// A container request exceeds the cluster's maximum allocation.
    InvalidResourceRequest {
        /// What was asked.
        ask: Resource,
        /// The configured maximum.
        max: Resource,
    },
    /// The application id is not registered.
    UnknownApplication(u64),
    /// The operation is not supported in the current deployment mode
    /// (YARN-9724).
    UnsupportedInMode {
        /// The operation name.
        op: &'static str,
        /// The mode in which it was invoked.
        mode: &'static str,
    },
    /// The container id is unknown or already completed.
    UnknownContainer(u64),
    /// A required configuration value failed to parse.
    BadConfig(String),
    /// The ResourceManager cannot be reached.
    RmUnavailable,
    /// A ResourceManager RPC exceeded its deadline.
    RmTimeout {
        /// The RPC that timed out.
        op: String,
        /// The deadline, in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for YarnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YarnError::InvalidResourceRequest { ask, max } => write!(
                f,
                "Invalid resource request: {ask} exceeds maximum allocation {max}. \
                 Could not allocate the required resource."
            ),
            YarnError::UnknownApplication(id) => write!(f, "unknown application {id}"),
            YarnError::UnsupportedInMode { op, mode } => {
                write!(f, "{op} is not supported in {mode} mode")
            }
            YarnError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            YarnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            YarnError::RmUnavailable => {
                write!(f, "ConnectException: ResourceManager unreachable")
            }
            YarnError::RmTimeout { op, ms } => {
                write!(f, "SocketTimeoutException: {op} timed out after {ms}ms")
            }
        }
    }
}

impl std::error::Error for YarnError {}

impl YarnError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            YarnError::InvalidResourceRequest { .. } => "INVALID_RESOURCE_REQUEST",
            YarnError::UnknownApplication(_) => "UNKNOWN_APPLICATION",
            YarnError::UnsupportedInMode { .. } => "UNSUPPORTED_IN_MODE",
            YarnError::UnknownContainer(_) => "UNKNOWN_CONTAINER",
            YarnError::BadConfig(_) => "BAD_CONFIG",
            YarnError::RmUnavailable => "RM_UNAVAILABLE",
            YarnError::RmTimeout { .. } => "RM_TIMEOUT",
        }
    }
}

impl From<YarnError> for InteractionError {
    fn from(e: YarnError) -> InteractionError {
        let kind = match &e {
            YarnError::UnsupportedInMode { .. } => ErrorKind::Unsupported,
            YarnError::RmUnavailable => ErrorKind::Unavailable,
            YarnError::RmTimeout { .. } => ErrorKind::Timeout,
            _ => ErrorKind::Rejected,
        };
        InteractionError::new("miniyarn", kind, e.code(), e.to_string())
    }
}

impl FaultPoint for YarnError {
    const CHANNEL: Channel = Channel::Yarn;

    fn materialize(fault: &InjectedFault) -> YarnError {
        match fault.kind {
            FaultKind::Unavailable => YarnError::RmUnavailable,
            FaultKind::Timeout { ms } | FaultKind::Latency { ms } => YarnError::RmTimeout {
                op: fault.op.clone(),
                ms,
            },
            FaultKind::CorruptPayload => YarnError::RmTimeout {
                op: fault.op.clone(),
                ms: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_mode_maps_to_unsupported_kind() {
        let e = YarnError::UnsupportedInMode {
            op: "getClusterMetrics",
            mode: "federation",
        };
        let ie: InteractionError = e.into();
        assert_eq!(ie.kind, ErrorKind::Unsupported);
        assert_eq!(ie.code, "UNSUPPORTED_IN_MODE");
    }

    #[test]
    fn invalid_request_mentions_required_resource() {
        let e = YarnError::InvalidResourceRequest {
            ask: Resource::new(16384, 4),
            max: Resource::new(8192, 8),
        };
        assert!(e.to_string().contains("Could not allocate"));
    }
}
