//! Shared helpers for the table/figure regeneration binaries.

/// Prints a "paper vs measured" comparison line.
pub fn compare(label: &str, paper: impl std::fmt::Display, measured: impl std::fmt::Display) {
    let p = paper.to_string();
    let m = measured.to_string();
    let verdict = if p == m { "MATCH" } else { "DIFFERS" };
    println!("{label:<58} paper={p:<12} measured={m:<12} [{verdict}]");
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Runs one of the artifact's three experiments and writes per-oracle
/// failure logs (`<exp>_wr_failed.json`, `<exp>_eh_failed.json`,
/// `<exp>_difft_failed.json`) into `logs/<exp>/`, mirroring the artifact's
/// `logs/<script_name>/<timestamp>` layout.
pub fn run_artifact_experiment(experiment: csi_test::Experiment) {
    use csi_core::oracle::OracleKind;
    let inputs = csi_test::generate_inputs();
    let outcome = csi_test::Campaign::new(&inputs)
        .experiments(vec![experiment])
        .run();
    let dir = std::path::PathBuf::from("logs").join(experiment.short());
    std::fs::create_dir_all(&dir).expect("create log dir");
    for (oracle, suffix) in [
        (OracleKind::WriteRead, "wr"),
        (OracleKind::ErrorHandling, "eh"),
        (OracleKind::Differential, "difft"),
    ] {
        let failed: Vec<_> = outcome
            .report
            .raw_failures
            .iter()
            .filter(|f| f.oracle == oracle)
            .collect();
        let path = dir.join(format!("{}_{suffix}_failed.json", experiment.short()));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&failed).expect("serialize"),
        )
        .expect("write log");
        println!(
            "{}: {} failures -> {}",
            format_args!("{}_{suffix}", experiment.short()),
            failed.len(),
            path.display()
        );
    }
    println!(
        "{} distinct discrepancies in this experiment: {:?}",
        outcome.report.distinct(),
        outcome
            .report
            .discrepancies
            .iter()
            .map(|d| d.id.as_str())
            .collect::<Vec<_>>()
    );
}
