//! Regenerates Section 8: the Spark–Hive cross-testing case study —
//! Figure 6's plan matrix, the 422-input catalogue, the 15 discrepancies,
//! their category totals, and the custom-configuration resolution.

use csi_bench::tables::{compare, header};
use csi_test::{active_ids, generate_inputs, Campaign, CrossTestConfig};

fn main() {
    let inputs = generate_inputs();
    let valid = inputs
        .iter()
        .filter(|i| i.validity == csi_test::Validity::Valid)
        .count();
    header("Section 8.1: test inputs");
    compare("generated inputs", 422, inputs.len());
    compare("valid inputs", 210, valid);
    compare("invalid inputs", 212, inputs.len() - valid);

    header("Section 8.2: cross-testing under the default configuration");
    let outcome = Campaign::new(&inputs).run();
    print!("{}", outcome.report.render());
    compare("distinct discrepancies", 15, outcome.report.distinct());
    let paper_counts = [2usize, 2, 5, 7, 8];
    for ((category, measured), paper) in outcome
        .report
        .category_counts()
        .into_iter()
        .zip(paper_counts)
    {
        compare(&category.to_string(), paper, measured);
    }
    compare(
        "unattributed oracle failures",
        0,
        outcome.report.unattributed.len(),
    );

    header("Section 8.2: custom (non-default) configuration resolves 8 discrepancies");
    let custom = Campaign::new(&inputs)
        .spark_overrides(CrossTestConfig::custom_resolving_overrides())
        .run();
    let before = active_ids(&outcome.report);
    let after = active_ids(&custom.report);
    let resolved: Vec<&String> = before.iter().filter(|d| !after.contains(d)).collect();
    println!("  active before: {before:?}");
    println!("  active after:  {after:?}");
    println!("  resolved:      {resolved:?}");
    compare(
        "discrepancies resolved by custom configuration",
        8,
        resolved.len(),
    );
}
