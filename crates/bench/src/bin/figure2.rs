//! Regenerates Figure 2 (and Figure 4): SPARK-27239 — the `-1` file length
//! assertion and its checking fix.

use csi_bench::tables::{compare, header};
use csi_core::boundary::CrossingContext;
use minihdfs::{HdfsPath, MiniHdfs};
use minispark::connectors::hdfs::{read_file, LengthCheck};

fn main() {
    let mut fs = MiniHdfs::with_datanodes(3);
    let path = HdfsPath::parse("/warehouse/events.gz").expect("static path");
    fs.create_compressed(&path, b"compressed job input")
        .expect("write");
    let status = fs.get_file_status(&path).expect("status");
    let off = CrossingContext::disabled();

    header("Figure 2: Spark reads a compressed file from HDFS");
    println!(
        "  HDFS reports length = {} (documented sentinel for compressed data)",
        status.len
    );
    match read_file(&fs, &path, LengthCheck::Shipped, &off) {
        Err(e) => println!("  shipped Spark: {e}"),
        Ok(_) => println!("  shipped Spark: unexpectedly succeeded"),
    }
    compare(
        "shipped Spark job fails on the assertion",
        "true",
        read_file(&fs, &path, LengthCheck::Shipped, &off).is_err(),
    );

    header("Figure 4: the fix accepts -1 as a valid length");
    let fixed = read_file(&fs, &path, LengthCheck::Fixed, &off);
    println!(
        "  fixed Spark: read {} bytes",
        fixed.as_ref().map(|b| b.len()).unwrap_or(0)
    );
    compare("fixed Spark reads the file", "true", fixed.is_ok());
}
