//! Regenerates Table 2: CSI failures by plane.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table2(&ds));
    for ((plane, measured), paper) in csi_study::analyze::plane_table(&ds)
        .into_iter()
        .zip([20usize, 61, 39])
    {
        compare(&format!("{plane} plane failures"), paper, measured);
    }
}
