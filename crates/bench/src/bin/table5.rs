//! Regenerates Table 5: data abstraction × property matrix.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table5(&ds));
    let m = csi_study::analyze::abstraction_matrix(&ds);
    let paper: [[usize; 5]; 4] = [
        [1, 13, 16, 0, 5],
        [8, 0, 0, 8, 2],
        [1, 1, 2, 0, 4],
        [0, 0, 0, 0, 0],
    ];
    for (r, name) in ["Table", "File", "Stream", "KV Tuple"].iter().enumerate() {
        compare(
            &format!("{name} row total"),
            paper[r].iter().sum::<usize>(),
            m[r].iter().sum::<usize>(),
        );
    }
}
