//! Specification-driven checking (the Section 10 direction): the same
//! observations, judged against the naive everything-round-trips contract
//! versus the documented per-channel contracts.

use csi_bench::tables::header;
use csi_test::contracts::{check_observations, documented_contracts, naive_contracts};
use csi_test::{generate_inputs, Campaign};

fn main() {
    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs).run();

    header("contract checking over the full 422-input campaign");
    let naive = check_observations(&inputs, &outcome.observations, naive_contracts);
    let documented = check_observations(&inputs, &outcome.observations, documented_contracts);
    println!(
        "  violations of the naive contract (everything exact): {}",
        naive.len()
    );
    println!(
        "  violations of the documented contracts:              {}",
        documented.len()
    );
    println!(
        "  explained by documentation alone:                    {}",
        naive.len() - documented.len()
    );

    header("a sample of what only machine-checkable specs surface");
    let mut seen = std::collections::BTreeSet::new();
    for v in &documented {
        let key = format!("{}/{}", v.channel, v.data_type.sql_name());
        if seen.insert(key) && seen.len() <= 8 {
            println!("  {v}");
        }
    }
    println!(
        "\nThe residue above is the paper's point: conventions that no\n\
         documentation covers, checkable only by executing the interaction."
    );
}
