//! Artifact parity: the `hive_spark_oneway.sh` experiment — HiveQL writes,
//! Spark reads, with per-oracle `*failed.json` outputs.

fn main() {
    csi_bench::tables::run_artifact_experiment(csi_test::Experiment::HiveToSpark);
}
