//! Regenerates Table 3: failure symptoms.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table3(&ds));
    compare(
        "crashing failures (Finding 3)",
        89,
        csi_study::analyze::crashing_count(&ds),
    );
    compare("total failures", 120, ds.cases.len());
}
