//! Design-choice ablations for the cross-testing harness:
//!
//! 1. **Oracle ablation** — how many of the 15 discrepancies each oracle
//!    finds on its own (the design choice of running all three).
//! 2. **Experiment ablation** — how many survive with only one of the
//!    Figure 6 experiments enabled (the choice of testing all directions).
//! 3. **Format ablation** — how many survive with a single backend format
//!    (the choice of testing ORC, Parquet, and Avro together).

use csi_bench::tables::header;
use csi_core::oracle::OracleKind;
use csi_test::{generate_inputs, Campaign, Experiment};
use minihive::metastore::StorageFormat;

fn main() {
    let inputs = generate_inputs();
    let full = Campaign::new(&inputs).run();
    println!(
        "full harness: {} discrepancies from {} raw failures",
        full.report.distinct(),
        full.report.raw_failures.len()
    );

    header("oracle ablation: discrepancies with evidence from each oracle alone");
    for oracle in [
        OracleKind::WriteRead,
        OracleKind::ErrorHandling,
        OracleKind::Differential,
    ] {
        let found = full
            .report
            .discrepancies
            .iter()
            .filter(|d| d.evidence.iter().any(|f| f.oracle == oracle))
            .count();
        println!("  {oracle:<8} alone evidences {found:>2}/15 discrepancies");
    }

    header("experiment ablation: single direction only");
    for exp in Experiment::ALL {
        let outcome = Campaign::new(&inputs).experiments(vec![exp]).run();
        println!(
            "  {:<14} ({}) finds {:>2}/15 discrepancies",
            exp,
            exp.short(),
            outcome.report.distinct()
        );
    }

    header("format ablation: single backend format only");
    for format in StorageFormat::ALL {
        let outcome = Campaign::new(&inputs).formats(vec![format]).run();
        println!(
            "  {:<8} only finds {:>2}/15 discrepancies",
            format.name(),
            outcome.report.distinct()
        );
    }
    println!(
        "\nNo single oracle, direction, or format covers the full surface —\n\
         the composition is what reaches all 15 (the Figure 6 design)."
    );
}
