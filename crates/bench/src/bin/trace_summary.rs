//! Boundary-crossing summary: runs the full traced cross-testing campaign
//! and the standard fault matrix, then prints per-channel crossing counts
//! as JSON — the CI-visible proof that every connector op routes through
//! `CrossingContext::cross` and that every reported discrepancy carries
//! its causal crossing sequence.
//!
//! Usage: `trace_summary [seed]` — `seed` defaults to 42 (the golden
//! campaign seed).

use csi_test::{fault_catalogue, generate_inputs, Campaign};
use serde::Serialize;
use std::collections::BTreeMap;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Campaign seed.
    seed: u64,
    /// Observations produced by the campaign.
    observations: usize,
    /// Boundary crossings per channel across every campaign observation.
    campaign_crossings: BTreeMap<String, usize>,
    /// Total campaign crossings.
    campaign_total: usize,
    /// Distinct discrepancies reported.
    discrepancies: usize,
    /// Discrepancies whose report carries a non-empty crossing trace.
    discrepancies_with_trace: usize,
    /// Fault-matrix cells executed.
    fault_matrix_cells: usize,
    /// Boundary crossings per channel across every fault-matrix cell.
    fault_matrix_crossings: BTreeMap<String, usize>,
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs).run();
    let campaign_total = outcome.report.trace_totals.values().sum();
    let discrepancies_with_trace = outcome
        .report
        .discrepancies
        .iter()
        .filter(|d| !d.trace.is_empty())
        .count();

    let matrix_outcome = Campaign::new(&[])
        .fault_matrix(seed)
        .faults(fault_catalogue(seed))
        .run();
    let matrix = matrix_outcome.matrix.expect("matrix mode");
    let mut fault_matrix_crossings: BTreeMap<String, usize> = BTreeMap::new();
    for case in &matrix.cases {
        for (channel, n) in case.trace.channel_counts() {
            *fault_matrix_crossings.entry(channel).or_insert(0) += n;
        }
    }

    let summary = Summary {
        seed,
        observations: outcome.observations.len(),
        campaign_crossings: outcome.report.trace_totals.clone(),
        campaign_total,
        discrepancies: outcome.report.distinct(),
        discrepancies_with_trace,
        fault_matrix_cells: matrix.cases.len(),
        fault_matrix_crossings,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).expect("summary serializes")
    );
    // The acceptance gate: tracing is on by default and every reported
    // discrepancy must carry its causal crossing sequence.
    assert!(summary.campaign_total > 0, "campaign recorded no crossings");
    assert_eq!(
        summary.discrepancies_with_trace, summary.discrepancies,
        "a discrepancy was reported without a crossing trace"
    );
}
