//! Regenerates Figure 1 (and Figure 5): the FLINK-12342 container storm
//! and its fixes, as a time series of requested/pending/started containers.

use csi_bench::tables::{compare, header};
use miniflink::yarn_driver::{run_driver, DriverMode, DriverRun};

fn main() {
    let base = DriverRun {
        target: 200,
        interval_ms: 500,
        alloc_service_ms: 100,
        start_latency_ms: 5,
        deadline_ms: 60_000,
        mode: DriverMode::BuggySync,
    };
    header("Figure 1: shipped (synchronous) request loop, C=200, 500 ms heartbeat");
    let buggy = run_driver(base);
    println!("  t(ms)    requested   pending   started");
    for s in buggy.history.iter().step_by(6) {
        println!(
            "  {:>6}   {:>9}   {:>7}   {:>7}",
            s.at_ms, s.total_requested, s.pending, s.started
        );
    }
    compare(
        "requests explode past 4000 (paper: '4000+ requested')",
        "true",
        buggy.total_requested > 4000,
    );

    header("Figure 5: the two workarounds and the async resolution");
    for (label, mode) in [
        (
            "workaround #1: configurable (longer) interval",
            DriverMode::LongerInterval,
        ),
        (
            "workaround #2: eager request removal",
            DriverMode::EagerRemove,
        ),
        ("resolution #3: NMClientAsync", DriverMode::AsyncClient),
    ] {
        let stats = run_driver(DriverRun { mode, ..base });
        println!(
            "  {label:<48} requested={:<6} max_pending={:<6} done_at={:?}",
            stats.total_requested, stats.max_pending, stats.completed_at
        );
    }
    let fixed = run_driver(DriverRun {
        mode: DriverMode::AsyncClient,
        ..base
    });
    compare(
        "async client requests exactly C",
        200,
        fixed.total_requested,
    );
}
