//! Artifact parity: the `spark_e2e.sh` experiment — Spark-to-Spark plans
//! only, with per-oracle `*failed.json` outputs.

fn main() {
    csi_bench::tables::run_artifact_experiment(csi_test::Experiment::SparkToSpark);
}
