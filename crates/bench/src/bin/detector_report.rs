//! Online-detector summary: runs the standard fault matrix with the
//! online CSI failure detector enabled (serially and sharded), checks the
//! two reports agree byte-for-byte, scores the detector against the
//! offline §9 error-handling oracle, and prints a JSON summary — cells,
//! per-kind and per-channel detection totals, and the agreement
//! (tp/fp/fn/tn, precision, recall).
//!
//! Usage: `detector_report [seed] [workers]` — seed defaults to 42,
//! workers to the machine's available parallelism.

use csi_core::fault::FaultOutcome;
use csi_test::Campaign;
use serde::Serialize;
use std::collections::BTreeMap;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Campaign seed.
    seed: u64,
    /// Matrix cells (fault × scenario).
    cells: usize,
    /// Cells whose fault actually fired.
    cells_fired: usize,
    /// Cells the offline oracle labels swallowed or mistranslated.
    oracle_error_handling_cells: usize,
    /// Online detections per kind across every cell.
    detections_per_kind: BTreeMap<String, usize>,
    /// Online detections per channel across every cell.
    detections_per_channel: BTreeMap<String, usize>,
    /// Detector-vs-oracle true positives.
    true_positives: usize,
    /// Detector-vs-oracle false positives.
    false_positives: usize,
    /// Detector-vs-oracle false negatives.
    false_negatives: usize,
    /// Detector-vs-oracle true negatives.
    true_negatives: usize,
    /// Fraction of flagged cells the oracle confirms.
    precision: f64,
    /// Fraction of oracle-labeled cells the detector flags.
    recall: f64,
    /// Whether the sharded report serialized identically to the serial one.
    reports_identical: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    });

    let serial = Campaign::new(&[]).fault_matrix(seed).detect(true).run();
    let sharded = Campaign::new(&[])
        .fault_matrix(seed)
        .detect(true)
        .shards(workers)
        .run();
    let identical = serde_json::to_string(&serial.matrix).expect("serializable")
        == serde_json::to_string(&sharded.matrix).expect("serializable")
        && serial.render() == sharded.render();

    let matrix = serial.matrix.expect("matrix mode");
    let agreement = matrix.agreement.expect("fired cells were scored");
    let oracle_error_handling_cells = matrix
        .cases
        .iter()
        .filter(|c| {
            matches!(
                c.outcome,
                Some(FaultOutcome::Swallowed | FaultOutcome::Mistranslated)
            )
        })
        .count();

    let summary = Summary {
        seed,
        cells: matrix.cases.len(),
        cells_fired: matrix.cases.iter().filter(|c| c.outcome.is_some()).count(),
        oracle_error_handling_cells,
        detections_per_kind: matrix.detection_kinds.clone(),
        detections_per_channel: matrix.detection_totals.clone(),
        true_positives: agreement.true_positives,
        false_positives: agreement.false_positives,
        false_negatives: agreement.false_negatives,
        true_negatives: agreement.true_negatives,
        precision: agreement.precision(),
        recall: agreement.recall(),
        reports_identical: identical,
    };
    println!(
        "BENCH_detector_report {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    assert!(identical, "sharded detector report diverged from serial");
    assert!(
        (summary.recall - 1.0).abs() < f64::EPSILON,
        "online detector missed an oracle-labeled error-handling cell \
         ({} false negatives)",
        summary.false_negatives
    );
}
