//! Campaign perf summary: runs the full 422-input cross-testing campaign
//! once on the legacy serial executor and once on the parallel sharded
//! executor in its campaign mode (deployment pooling + table recycling),
//! checks the two reports agree byte-for-byte, and prints a JSON
//! performance summary (wall times, observations/sec, speedup, per-worker
//! utilization).
//!
//! Usage: `campaign [workers] [chunk_size]` — `workers` defaults to the
//! machine's available parallelism (0 keeps that default).

use csi_bench::trajectory;
use csi_test::{generate_inputs, Campaign};
use serde::Serialize;
use std::time::Instant;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Catalogue size.
    inputs: usize,
    /// Observations per run (identical serial and parallel).
    observations: usize,
    /// Distinct discrepancies (must be 15).
    distinct_discrepancies: usize,
    /// Whether the parallel report serialized identically to the serial one.
    reports_identical: bool,
    /// Whether the parallel campaign ran with table recycling.
    recycle_tables: bool,
    /// Serial campaign wall time in microseconds.
    serial_micros: u64,
    /// Serial observations per second.
    serial_obs_per_sec: f64,
    /// Parallel end-to-end wall time in microseconds.
    parallel_micros: u64,
    /// Parallel observations per second (execute phase).
    parallel_obs_per_sec: f64,
    /// Serial wall time over parallel wall time.
    speedup: f64,
    /// The parallel executor's own metrics.
    campaign: csi_test::CampaignMetrics,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let chunk_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    // `Campaign::shards(0|1)` means serial, so resolve "auto" here.
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2)
    } else {
        workers
    };

    let inputs = generate_inputs();

    // Baseline: the serial executor exactly as it always ran (tables
    // accumulate in the deployment for the experiment's lifetime).
    let serial_started = Instant::now();
    let serial = Campaign::new(&inputs).run();
    let serial_micros = serial_started.elapsed().as_micros() as u64;

    // Campaign mode: sharded worker pool with per-worker deployments and
    // drop-after-observe table recycling. The determinism suite proves the
    // report is identical to the baseline's; this binary re-checks it.
    let parallel = Campaign::new(&inputs)
        .recycle_tables(true)
        .shards(workers)
        .chunk_size(chunk_size)
        .run();
    let metrics = parallel.metrics.expect("sharded campaigns carry metrics");

    let serial_json = serde_json::to_string(&serial.report).expect("serial report");
    let parallel_json = serde_json::to_string(&parallel.report).expect("parallel report");

    let summary = Summary {
        inputs: inputs.len(),
        observations: metrics.observations,
        distinct_discrepancies: parallel.report.distinct(),
        reports_identical: serial_json == parallel_json,
        recycle_tables: true,
        serial_micros,
        serial_obs_per_sec: serial.observations.len() as f64
            / (serial_micros.max(1) as f64 / 1_000_000.0),
        parallel_micros: metrics.total_micros,
        parallel_obs_per_sec: metrics.observations_per_sec,
        speedup: serial_micros as f64 / metrics.total_micros.max(1) as f64,
        campaign: metrics,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).expect("summary serializes")
    );
    println!(
        "BENCH_campaign {}",
        serde_json::to_string(&summary).expect("summary serializes")
    );
    trajectory::append("BENCH_campaign.json", "campaign", &summary).expect("trajectory append");
    assert!(summary.reports_identical, "parallel report diverged");
    assert_eq!(summary.distinct_discrepancies, 15);
}
