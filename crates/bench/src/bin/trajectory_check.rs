//! Validates the committed `BENCH_*.json` perf-trajectory files at the
//! repo root: every line must be valid JSON and carry its file's required
//! keys (see [`csi_bench::trajectory::SCHEMAS`]). `ci.sh reports` runs
//! this so a bench binary cannot silently drop a field the trajectory
//! depends on.

use csi_bench::trajectory;

fn main() {
    match trajectory::check_all() {
        Ok(lines) => println!("trajectory: {lines} line(s) validated"),
        Err(e) => {
            eprintln!("trajectory schema drift: {e}");
            std::process::exit(1);
        }
    }
}
