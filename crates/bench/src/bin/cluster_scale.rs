//! Production-scale substrate benchmark: drives the interned/sharded
//! storage layers at cluster scale — 1M HDFS files, 100k Kafka
//! partitions, 10k YARN applications through the discrete-event
//! simulator — checks the structural invariants the refactor introduced
//! (interning ratios, vacuum idempotence, slab slot recycling), prints a
//! JSON summary, and appends it to the `BENCH_scale.json` trajectory at
//! the repo root.
//!
//! The shape exists because the seed's substrates could not survive it:
//! `BTreeMap<Vec<String>, INode>` namespaces cloned every path component
//! on every operation, the group coordinator scanned membership vectors,
//! and the RM scanned every container ever allocated on every heartbeat.
//! The interned-name inode arena, flat sharded partition map, and
//! generation-checked container slab make the same shape routine.
//!
//! Usage: `cluster_scale`, or `cluster_scale --smoke` for the CI gate
//! (reduced shape, asserts the committed event-rate floor).

use csi_bench::trajectory;
use csi_core::sim::{Ops, Sim};
use minihdfs::{HdfsPath, MiniHdfs};
use minikafka::{MiniKafka, PartitionId};
use miniyarn::{AmFinalStatus, ApplicationId, Resource, ResourceManager};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Committed floors for the simulator tick storm, in events per second.
/// The kernel sustains well above these on an idle machine (~3x); the
/// floors only catch an event loop regressing toward per-event
/// allocation storms or queue misuse, while leaving headroom for loaded
/// CI machines.
const FULL_SIM_FLOOR: f64 = 33_000_000.0;
const SMOKE_SIM_FLOOR: f64 = 10_000_000.0;

/// The benchmark shape: how much of each substrate the run builds.
struct Shape {
    /// HDFS: `dirs x files_per_dir` files under `/warehouse`.
    dirs: usize,
    /// Files created in each directory.
    files_per_dir: usize,
    /// Kafka: `topics x partitions_per_topic` partitions.
    topics: usize,
    /// Partitions per topic.
    partitions_per_topic: u32,
    /// Records produced into the compaction partition.
    compaction_records: usize,
    /// YARN: `waves x apps_per_wave` applications through the sim.
    waves: usize,
    /// Applications registered per simulated wave.
    apps_per_wave: usize,
    /// Chained simulator events in the tick storm.
    sim_events: u64,
}

const FULL: Shape = Shape {
    dirs: 1000,
    files_per_dir: 1000, // 1M files.
    topics: 100,
    partitions_per_topic: 1000, // 100k partitions.
    compaction_records: 100_000,
    waves: 100,
    apps_per_wave: 100, // 10k apps.
    sim_events: 4_000_000,
};

const SMOKE: Shape = Shape {
    dirs: 100,
    files_per_dir: 100, // 10k files.
    topics: 10,
    partitions_per_topic: 100, // 1k partitions.
    compaction_records: 10_000,
    waves: 10,
    apps_per_wave: 10, // 100 apps.
    sim_events: 1_000_000,
};

/// The JSON document this binary prints and appends to `BENCH_scale.json`.
#[derive(Serialize)]
struct Summary {
    /// Files created in the namenode.
    hdfs_files: usize,
    /// Distinct interned names after those creates (interning ratio
    /// witness: ~2k names for 1M files).
    hdfs_interned_names: usize,
    /// Live inodes (files + directories, excluding the root).
    hdfs_inodes: u64,
    /// Kafka partitions created across all topics.
    kafka_partitions: usize,
    /// Records removed by the compaction pass.
    kafka_compacted: usize,
    /// YARN applications driven to completion through the simulator.
    yarn_apps: usize,
    /// Containers allocated across all waves.
    yarn_containers: u64,
    /// Simulator tick-storm throughput.
    sim_events_per_sec: f64,
    /// Wall times per phase, microseconds.
    micros: BTreeMap<String, u64>,
    /// Whether `vacuum()` preserved the namespace (inode count and
    /// listing of a probe directory) while compacting the interner.
    vacuum_identical: bool,
    /// Whether the container slab recycled slots instead of growing
    /// (every post-eviction container id fits inside one wave's slots).
    slab_recycled: bool,
}

fn micros_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).expect("fits u64")
}

/// Phase 1: the namenode. Creates `dirs x files_per_dir` files whose
/// names repeat across directories, then vacuums and checks the rebuild
/// changed nothing observable.
fn run_hdfs(shape: &Shape, micros: &mut BTreeMap<String, u64>) -> (usize, usize, u64, bool) {
    let mut fs = MiniHdfs::with_datanodes(3);
    let payload = b"orcdata!";
    let started = Instant::now();
    for d in 0..shape.dirs {
        let dir = HdfsPath::parse(&format!("/warehouse/db{d}")).expect("valid path");
        for f in 0..shape.files_per_dir {
            fs.create(&dir.join(&format!("part-{f:05}.orc")), payload)
                .expect("create");
        }
    }
    micros.insert("hdfs_create".into(), micros_since(started));

    let probe = HdfsPath::parse("/warehouse/db0").expect("valid path");
    let started = Instant::now();
    let listing = fs.list_status(&probe).expect("list");
    micros.insert("hdfs_list_dir".into(), micros_since(started));
    assert_eq!(listing.len(), shape.files_per_dir, "probe listing size");

    let files = shape.dirs * shape.files_per_dir;
    let interned = fs.interned_names();
    let inodes = fs.inode_count();
    // warehouse + dbN dirs + the per-dir file names shared across dirs.
    assert_eq!(inodes, (1 + shape.dirs + files) as u64, "inode count");
    // Directory and file names plus a handful of constants (owner
    // strings and the like) — crucially NOT proportional to `files`.
    assert!(
        interned <= shape.dirs + shape.files_per_dir + 16,
        "interning failed to dedup repeated names: {interned}"
    );

    let started = Instant::now();
    fs.vacuum();
    micros.insert("hdfs_vacuum".into(), micros_since(started));
    let vacuum_identical = fs.inode_count() == inodes
        && fs.interned_names() <= interned
        && fs.list_status(&probe).expect("list after vacuum") == listing;

    (files, fs.interned_names(), inodes, vacuum_identical)
}

/// Phase 2: the broker. Creates the full partition grid, produces into a
/// spread of partitions, and runs the borrowed-key compaction pass over a
/// hot partition with heavy key reuse.
fn run_kafka(shape: &Shape, micros: &mut BTreeMap<String, u64>) -> (usize, usize) {
    let mut k = MiniKafka::new();
    let started = Instant::now();
    for t in 0..shape.topics {
        k.create_topic(&format!("events-{t:03}"), shape.partitions_per_topic);
    }
    micros.insert("kafka_create_topics".into(), micros_since(started));

    // One record into every 100th partition of every topic: touches the
    // sharded map across all shards without drowning the run in I/O.
    let started = Instant::now();
    for t in 0..shape.topics {
        let topic = format!("events-{t:03}");
        for p in (0..shape.partitions_per_topic).step_by(100) {
            k.produce(&topic, PartitionId(p), Some(b"k"), Some(b"v"), 1)
                .expect("produce");
        }
    }
    micros.insert("kafka_produce_spread".into(), micros_since(started));

    // Compaction workload: heavy key reuse, most records superseded.
    let keys = 256;
    for i in 0..shape.compaction_records {
        let key = format!("key-{:03}", i % keys);
        k.produce(
            "events-000",
            PartitionId(0),
            Some(key.as_bytes()),
            Some(b"v"),
            1,
        )
        .expect("produce");
    }
    let started = Instant::now();
    let removed = k.compact("events-000", PartitionId(0)).expect("compact");
    micros.insert("kafka_compact".into(), micros_since(started));
    // All but the last occurrence of each key go; the spread record
    // survives as the latest of its own key.
    assert_eq!(
        removed,
        shape.compaction_records - keys,
        "compaction survivors"
    );

    (shape.topics * shape.partitions_per_topic as usize, removed)
}

/// State the YARN wave driver threads through the simulator.
struct YarnDrive {
    rm: ResourceManager,
    shape_waves: usize,
    apps_per_wave: usize,
    wave: usize,
    containers: u64,
    /// Max low-32-bits of any container id allocated in the final wave —
    /// proof the slab recycled slots rather than growing.
    last_wave_max_slot: u64,
}

/// One simulated wave: register a batch of applications, ask for one
/// container each, heartbeat them through allocation, release, unregister,
/// and evict the completed records so the next wave reuses the slots.
fn yarn_wave(s: &mut YarnDrive, ops: &mut Ops<YarnDrive>) {
    let apps: Vec<ApplicationId> = (0..s.apps_per_wave)
        .map(|_| s.rm.register_application("wave-app"))
        .collect();
    for &app in &apps {
        s.rm.add_container_request(app, Resource::new(1024, 1))
            .expect("ask");
    }
    s.rm.advance_clock(s.apps_per_wave as u64 * 10);
    let mut wave_max_slot = 0u64;
    for &app in &apps {
        let r = s.rm.allocate(app).expect("heartbeat");
        assert_eq!(r.allocated.len(), 1, "wave ask allocated");
        for c in &r.allocated {
            s.containers += 1;
            wave_max_slot = wave_max_slot.max(c.id.0 & 0xFFFF_FFFF);
        }
        s.rm.unregister_application(app, AmFinalStatus::Succeeded)
            .expect("unregister");
    }
    s.rm.evict_completed();
    s.wave += 1;
    if s.wave < s.shape_waves {
        ops.schedule_in(1, yarn_wave);
    } else {
        s.last_wave_max_slot = wave_max_slot;
    }
}

/// Phase 3: the ResourceManager, driven wave by wave through the
/// discrete-event simulator.
fn run_yarn(shape: &Shape, micros: &mut BTreeMap<String, u64>) -> (usize, u64, bool) {
    let mut rm = ResourceManager::with_nodes(64, Resource::new(1 << 20, 1 << 10));
    rm.set_alloc_service_ms(10);
    let started = Instant::now();
    let mut sim = Sim::new(YarnDrive {
        rm,
        shape_waves: shape.waves,
        apps_per_wave: shape.apps_per_wave,
        wave: 0,
        containers: 0,
        last_wave_max_slot: 0,
    });
    sim.schedule_in(1, yarn_wave);
    sim.run();
    micros.insert("yarn_waves".into(), micros_since(started));

    let s = sim.state;
    let apps = shape.waves * shape.apps_per_wave;
    assert_eq!(s.containers, apps as u64, "every app got its container");
    assert_eq!(s.rm.total_allocated(), apps as u64);
    let metrics = s.rm.get_cluster_metrics().expect("classic mode");
    assert_eq!(metrics.containers_active, 0, "all containers returned");
    // Slot recycling: the final wave's ids index only one wave's worth of
    // slab slots, no matter how many waves ran before it.
    let slab_recycled = s.last_wave_max_slot <= s.apps_per_wave as u64;
    (apps, s.containers, slab_recycled)
}

/// Phase 4: the pure simulator tick storm — `n` chained events through
/// the queue, no substrate work, measuring event dispatch alone.
fn run_sim_storm(n: u64, micros: &mut BTreeMap<String, u64>) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..3 {
        let started = Instant::now();
        let mut sim = Sim::new((0u64, n));
        fn tick(state: &mut (u64, u64), ops: &mut Ops<(u64, u64)>) {
            state.0 += 1;
            if state.0 < state.1 {
                ops.schedule_in(1, tick);
            }
        }
        sim.schedule_in(1, tick);
        sim.run();
        assert_eq!(sim.events_fired(), n, "storm fired every event");
        let secs = started.elapsed().as_secs_f64();
        best = best.max(n as f64 / secs);
    }
    micros.insert("sim_storm".into(), (1_000_000.0 * n as f64 / best) as u64);
    best
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };

    let mut micros = BTreeMap::new();
    let (hdfs_files, hdfs_interned_names, hdfs_inodes, vacuum_identical) =
        run_hdfs(shape, &mut micros);
    let (kafka_partitions, kafka_compacted) = run_kafka(shape, &mut micros);
    let (yarn_apps, yarn_containers, slab_recycled) = run_yarn(shape, &mut micros);
    let sim_events_per_sec = run_sim_storm(shape.sim_events, &mut micros);

    let summary = Summary {
        hdfs_files,
        hdfs_interned_names,
        hdfs_inodes,
        kafka_partitions,
        kafka_compacted,
        yarn_apps,
        yarn_containers,
        sim_events_per_sec,
        micros,
        vacuum_identical,
        slab_recycled,
    };
    println!(
        "BENCH_scale {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_scale.json", "cluster_scale", &summary).expect("trajectory append");

    assert!(summary.vacuum_identical, "vacuum changed the namespace");
    assert!(
        summary.slab_recycled,
        "container slab failed to recycle slots"
    );
    let floor = if smoke {
        SMOKE_SIM_FLOOR
    } else {
        FULL_SIM_FLOOR
    };
    assert!(
        summary.sim_events_per_sec >= floor,
        "sim event rate regressed below {floor:.0} events/s: {:.0}",
        summary.sim_events_per_sec
    );
}
