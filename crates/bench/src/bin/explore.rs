//! Coverage-guided exploration summary: runs `Campaign::explore` over the
//! full input catalogue (serially and sharded), checks the two runs are
//! byte-identical, and prints a JSON summary — executed observations,
//! signature and corpus counts, per-class discovery points, and shrink
//! totals. The assertions double as the CI explore smoke: mutation must
//! contribute at least one novel signature beyond the seed grid, and the
//! sharded run must not diverge from the serial one.
//!
//! Usage: `explore [seed] [budget] [workers]` — seed defaults to 42,
//! budget to 1500, workers to the machine's available parallelism.

use csi_bench::trajectory;
use csi_test::{generate_inputs, Campaign};
use serde::Serialize;
use std::collections::BTreeMap;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Exploration seed.
    seed: u64,
    /// Observation budget.
    budget: usize,
    /// Cells of the exhaustive grid this budget competes against.
    grid_cells: usize,
    /// Observations actually executed.
    executed: usize,
    /// Distinct coverage signatures.
    signatures: usize,
    /// Signatures first produced by a mutated input.
    novel_from_mutation: usize,
    /// Corpus entries.
    corpus: usize,
    /// Discrepancy classes in the final report.
    classes: usize,
    /// Executions-to-first-discovery per class.
    discovered_at: BTreeMap<String, usize>,
    /// Shrunk reproducers (all 1 row × 1 column by construction).
    shrunk: usize,
    /// Whether the sharded run serialized identically to the serial one.
    reports_identical: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let budget: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1500);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    });

    let inputs = generate_inputs();
    let serial = Campaign::new(&inputs).seed(seed).explore(budget).run();
    let sharded = Campaign::new(&inputs)
        .seed(seed)
        .explore(budget)
        .shards(workers)
        .run();
    let identical = serde_json::to_string(&serial.report).expect("serializable")
        == serde_json::to_string(&sharded.report).expect("serializable")
        && serde_json::to_string(&serial.exploration).expect("serializable")
            == serde_json::to_string(&sharded.exploration).expect("serializable")
        && serial.render() == sharded.render();

    let stats = serial.exploration.as_ref().expect("explore mode");
    let summary = Summary {
        seed,
        budget,
        grid_cells: stats.grid_cells,
        executed: stats.executed,
        signatures: stats.signatures,
        novel_from_mutation: stats.novel_from_mutation,
        corpus: stats.corpus.len(),
        classes: serial.report.discrepancies.len(),
        discovered_at: stats
            .discoveries
            .iter()
            .map(|d| (d.id.clone(), d.executed))
            .collect(),
        shrunk: stats.shrinks.len(),
        reports_identical: identical,
    };
    println!(
        "BENCH_explore {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_explore.json", "explore", &summary).expect("trajectory append");
    assert!(identical, "sharded explore run diverged from serial");
    assert!(
        summary.novel_from_mutation >= 1,
        "mutation contributed no novel coverage signature beyond the seed grid"
    );
    assert!(
        summary.executed <= summary.budget,
        "explore overran its observation budget"
    );
}
