//! Regenerates Table 7: configuration discrepancy patterns.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table7(&ds));
    let paper = [12usize, 6, 10, 2];
    for ((pattern, measured), paper) in csi_study::analyze::config_pattern_table(&ds)
        .into_iter()
        .zip(paper)
    {
        compare(&pattern.to_string(), paper, measured);
    }
    let (param, comp) = csi_study::analyze::config_scope_split(&ds);
    compare("parameter-scoped (Finding 8)", 21, param);
    compare("component-scoped (Finding 8)", 9, comp);
}
