//! Artifact parity: the `spark_hive_oneway.sh` experiment — Spark writes,
//! HiveQL reads, with per-oracle `*failed.json` outputs.

fn main() {
    csi_bench::tables::run_artifact_experiment(csi_test::Experiment::SparkToHive);
}
