//! Regenerates Table 1: target systems, interactions, and CSI failure
//! counts.

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table1(&ds));
    csi_bench::tables::compare("total CSI failures", 120, ds.cases.len());
}
