//! Compound (fault-set × interleaving) exploration summary: runs a
//! k-fault multi-job campaign (serially and sharded), checks the two runs
//! are byte-identical, and prints a JSON summary — trials executed,
//! product-space size, coverage signatures, discrepancies, co-failure
//! clusters, and shrink totals. The assertions double as the CI kfault
//! smoke: at least one multi-member cluster must be found and shrunk to a
//! reproducer of at most two faults, and the sharded run must not diverge
//! from the serial one.
//!
//! Usage: `kfault_explore [seed] [budget] [workers]` — seed defaults to
//! 42, budget to 96, workers to the machine's available parallelism.

use csi_bench::trajectory;
use csi_test::Campaign;
use serde::Serialize;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Campaign seed.
    seed: u64,
    /// Trial budget of the coverage-guided search.
    budget: usize,
    /// Maximum fault-set arity.
    kfaults: usize,
    /// Jobs sharing each trial's deployment.
    jobs: usize,
    /// Size of the (fault-set × interleaving) product space.
    space: usize,
    /// Trials actually executed.
    executed: usize,
    /// Distinct coverage signatures over the shared traces.
    signatures: usize,
    /// Oracle-positive job outcomes across all trials.
    discrepancies: usize,
    /// Co-failure clusters (distinct causal-prefix fingerprints).
    clusters: usize,
    /// Clusters with more than one member (co-failures, not singletons).
    multi_member_clusters: usize,
    /// Smallest shrunk reproducer, in faults.
    min_reproducer_faults: usize,
    /// Extra trials spent by the per-cluster ddmin shrinker.
    shrink_checks: usize,
    /// Whether the sharded run serialized identically to the serial one.
    reports_identical: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let budget: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    });
    let kfaults = 3;

    let run = |shards: usize| {
        Campaign::new(&[])
            .seed(seed)
            .kfaults(kfaults)
            .explore(budget)
            .shards(shards)
            .run()
    };
    let serial = run(1);
    let sharded = run(workers);
    let identical = serde_json::to_string(&serial.compound).expect("serializable")
        == serde_json::to_string(&sharded.compound).expect("serializable")
        && serde_json::to_string(&serial.clusters).expect("serializable")
            == serde_json::to_string(&sharded.clusters).expect("serializable")
        && serial.render() == sharded.render();

    let stats = serial.compound.as_ref().expect("compound pass ran");
    let summary = Summary {
        seed,
        budget,
        kfaults: stats.kfaults,
        jobs: stats.jobs,
        space: stats.space,
        executed: stats.executed,
        signatures: stats.signatures,
        discrepancies: stats.discrepancies,
        clusters: serial.clusters.len(),
        multi_member_clusters: serial.clusters.iter().filter(|c| c.members > 1).count(),
        min_reproducer_faults: serial
            .clusters
            .iter()
            .map(|c| c.faults)
            .min()
            .unwrap_or(usize::MAX),
        shrink_checks: stats.shrink_checks,
        reports_identical: identical,
    };
    println!(
        "BENCH_kfault_explore {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_explore.json", "kfault_explore", &summary)
        .expect("trajectory append");
    assert!(identical, "sharded compound run diverged from serial");
    assert!(
        summary.executed <= summary.budget,
        "compound search overran its trial budget"
    );
    assert!(
        summary.multi_member_clusters >= 1,
        "no multi-member co-failure cluster found"
    );
    assert!(
        summary.min_reproducer_faults <= 2,
        "no cluster shrank to a reproducer of at most two faults"
    );
}
