//! Regenerates Figure 3: FLINK-19141 — Flink and YARN interpreting
//! resource-allocation configuration inconsistently across schedulers.

use csi_bench::tables::{compare, header};
use miniflink::yarn_driver::{
    capacity_scheduler, check_allocation_consistency, fair_scheduler, flink_predicted_allocation,
};
use miniyarn::config::default_yarn_config;
use miniyarn::Resource;

fn main() {
    let conf = default_yarn_config();
    let ask = Resource::new(1536, 1);
    header("Figure 3: one ask, one configuration, two schedulers");
    println!(
        "  Flink predicts (from yarn.scheduler.minimum-allocation-*): {}",
        flink_predicted_allocation(ask, &conf)
    );
    let capacity = check_allocation_consistency(ask, &conf, &capacity_scheduler());
    println!("  CapacityScheduler deployment: {capacity:?}");
    let fair = check_allocation_consistency(ask, &conf, &fair_scheduler());
    match &fair {
        Err(e) => println!("  FairScheduler deployment: {e}"),
        Ok(r) => println!("  FairScheduler deployment: {r}"),
    }
    compare(
        "capacity deployment is consistent",
        "true",
        capacity.is_ok(),
    );
    compare(
        "fair deployment reproduces 'Could not allocate the required resource'",
        "true",
        matches!(&fair, Err(e) if e.to_string().contains("Could not allocate")),
    );
}
