//! Exports the reconstructed 120-case dataset as JSON (artifact parity
//! with the paper's CSV/notebook data release).

fn main() {
    let ds = csi_study::Dataset::load();
    println!(
        "{}",
        serde_json::to_string_pretty(&ds).expect("dataset serializes")
    );
}
