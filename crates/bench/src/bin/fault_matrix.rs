//! Fault-matrix summary: runs the standard boundary-fault catalogue
//! against every scenario (serially and sharded), checks the two reports
//! agree byte-for-byte, and prints a JSON summary of the taxonomy —
//! how many injected-fault cells were swallowed, mistranslated,
//! propagated with context, or crashed the caller.
//!
//! Usage: `fault_matrix [seed] [workers]` — seed defaults to 42, workers
//! to the machine's available parallelism.

use csi_bench::trajectory;
use csi_test::{fault_catalogue, Campaign};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Campaign seed.
    seed: u64,
    /// Faults in the catalogue.
    faults: usize,
    /// Matrix cells (fault × scenario).
    cells: usize,
    /// Cells per taxonomy bucket (plus `unfired`).
    outcomes: BTreeMap<String, usize>,
    /// Distinct channels that actually fired a fault.
    channels_fired: Vec<String>,
    /// Whether the sharded report serialized identically to the serial one.
    reports_identical: bool,
    /// Serial wall time in microseconds.
    serial_micros: u64,
    /// Sharded wall time in microseconds.
    sharded_micros: u64,
    /// Worker count of the sharded run.
    workers: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    });

    let faults = fault_catalogue(seed).faults.len();
    let started = Instant::now();
    let serial = Campaign::new(&[])
        .fault_matrix(seed)
        .run()
        .matrix
        .expect("matrix mode");
    let serial_micros = started.elapsed().as_micros() as u64;

    let started = Instant::now();
    let sharded = Campaign::new(&[])
        .fault_matrix(seed)
        .shards(workers)
        .run()
        .matrix
        .expect("matrix mode");
    let sharded_micros = started.elapsed().as_micros() as u64;

    let identical = serde_json::to_string(&serial).expect("serializable")
        == serde_json::to_string(&sharded).expect("serializable");

    let mut channels: BTreeMap<String, ()> = BTreeMap::new();
    for case in &serial.cases {
        for fired in &case.fired {
            channels.insert(fired.channel.to_string(), ());
        }
    }

    let summary = Summary {
        seed,
        faults,
        cells: serial.cases.len(),
        outcomes: serial.outcomes.clone(),
        channels_fired: channels.into_keys().collect(),
        reports_identical: identical,
        serial_micros,
        sharded_micros,
        workers,
    };
    println!(
        "BENCH_fault_matrix {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_campaign.json", "fault_matrix", &summary).expect("trajectory append");
    assert!(
        identical,
        "sharded fault-matrix report diverged from serial"
    );
}
