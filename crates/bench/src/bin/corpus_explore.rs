//! Corpus-seeded exploration vs the catalogue alone: runs
//! `Campaign::explore` twice at the same seed and budget — once over the
//! 422-input catalogue, once with a synthesized real-shaped corpus region
//! appended (`InputSelection::Corpus`) — and diffs the coverage-signature
//! sets. The corpus run is executed serially and sharded and must be
//! byte-identical; the signature diff must be non-empty (the corpus's
//! declared precisions, widths, and encodings reach coverage the
//! hand-built catalogue never does). The summary also reports how many
//! oracle failures fell outside the D01–D15 catalogue (`unattributed`) —
//! the "discrepancy classes beyond the catalogue" signal of the corpus's
//! precision/encoding/scale edges.
//!
//! Usage: `corpus_explore [seed] [budget] [workers]` — seed defaults to
//! 42, budget to 400, workers to the machine's available parallelism.

use csi_bench::trajectory;
use csi_test::{generate_inputs, Campaign, CorpusShape, InputSelection};
use serde::Serialize;

/// The JSON document this binary prints.
#[derive(Serialize)]
struct Summary {
    /// Exploration and corpus-synthesis seed.
    seed: u64,
    /// Observation budget (per run).
    budget: usize,
    /// Synthesized corpus inputs appended above the catalogue.
    corpus_inputs: usize,
    /// Distinct signatures of the catalogue-only run.
    signatures_catalogue: usize,
    /// Distinct signatures of the corpus-seeded run.
    signatures_corpus: usize,
    /// Signatures the corpus-seeded run reached that the catalogue-only
    /// run did not — the corpus's coverage contribution.
    corpus_only_signatures: usize,
    /// Signatures first produced by a corpus-origin input.
    novel_from_corpus: usize,
    /// Corpus entries admitted with `corpus` origin.
    corpus_origin_admissions: usize,
    /// Discrepancy classes in the corpus-seeded report.
    classes: usize,
    /// Oracle failures matching no D01–D15 predicate in the corpus-seeded
    /// report — candidate discrepancy classes beyond the catalogue.
    unattributed: usize,
    /// Whether the sharded corpus run serialized identically to the
    /// serial one.
    reports_identical: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let budget: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    });

    let shape = CorpusShape::default();
    let selection = InputSelection::Corpus {
        shape: shape.clone(),
        seed,
    };
    let corpus_inputs =
        selection.resolve().len() - selection.corpus_floor().expect("corpus selection");

    let catalogue = Campaign::new(&generate_inputs())
        .seed(seed)
        .explore(budget)
        .run();
    let corpus = |shards: usize| {
        Campaign::new(&[])
            .corpus(shape.clone(), seed)
            .seed(seed)
            .explore(budget)
            .shards(shards)
            .run()
    };
    let serial = corpus(1);
    let sharded = corpus(workers);
    let identical = serde_json::to_string(&serial.report).expect("serializable")
        == serde_json::to_string(&sharded.report).expect("serializable")
        && serde_json::to_string(&serial.exploration).expect("serializable")
            == serde_json::to_string(&sharded.exploration).expect("serializable")
        && serial.render() == sharded.render();

    let base = catalogue.exploration.as_ref().expect("explore mode");
    let stats = serial.exploration.as_ref().expect("explore mode");
    let corpus_only = stats
        .signatures_seen
        .iter()
        .filter(|fp| !base.signatures_seen.contains(fp))
        .count();
    let summary = Summary {
        seed,
        budget,
        corpus_inputs,
        signatures_catalogue: base.signatures,
        signatures_corpus: stats.signatures,
        corpus_only_signatures: corpus_only,
        novel_from_corpus: stats.novel_from_corpus,
        corpus_origin_admissions: stats.corpus.iter().filter(|r| r.origin == "corpus").count(),
        classes: serial.report.discrepancies.len(),
        unattributed: serial.report.unattributed.len(),
        reports_identical: identical,
    };
    println!(
        "BENCH_corpus {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_corpus.json", "corpus_explore", &summary).expect("trajectory append");
    assert!(identical, "sharded corpus explore run diverged from serial");
    assert!(
        summary.corpus_only_signatures >= 1,
        "the corpus reached no coverage signature the catalogue alone did not"
    );
    assert!(
        summary.novel_from_corpus >= 1,
        "no signature was first produced by a corpus-origin input"
    );
    assert!(
        stats.executed <= budget,
        "corpus explore overran its observation budget"
    );
}
