//! Multi-tenant load benchmark for the `csi-serve` daemon: 1024 tenants
//! across 64 concurrent connections submit campaigns over real TCP, the
//! daemon runs them on a warm deployment pool with per-tenant fair
//! scheduling, and every wire report is byte-compared against an
//! in-process batch run of the same spec — the determinism contract of
//! the campaign-as-a-service API, checked at full load.
//!
//! Prints a JSON summary (submit→report latency percentiles, campaign
//! and detection throughput, admission rejections, pool reuse) and
//! appends it to the `BENCH_serve.json` trajectory at the repo root.
//!
//! Usage: `load_serve`, or `load_serve --smoke` for the CI gate (8
//! tenants over 2 connections, same invariants).

use csi_bench::trajectory;
use csi_serve::{CsiServer, Frame, ServeClient, ServeConfig};
use csi_test::inject::small_fault_catalogue;
use csi_test::plan::Experiment;
use csi_test::{Campaign, CampaignSpec, InputSelection};
use minihive::metastore::StorageFormat;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// The load shape: how many clients hit the daemon, with what.
struct Shape {
    /// Concurrent client connections.
    connections: usize,
    /// Tenants (one campaign each) per connection.
    tenants_per_connection: usize,
}

const FULL: Shape = Shape {
    connections: 64,
    tenants_per_connection: 16, // 1024 tenants.
};

const SMOKE: Shape = Shape {
    connections: 2,
    tenants_per_connection: 4, // 8 tenants.
};

/// Distinct campaign shapes cycled across tenants. Kept small so the
/// byte-identity check batch-runs each unique spec exactly once.
const SPEC_SHAPES: usize = 8;

/// The spec for global tenant index `i`: every 8th tenant runs a
/// detection-heavy fault matrix (the streaming-detections path); the
/// rest run cross-test campaigns over varied prefixes, worker counts,
/// and detection settings (the pooled-deployment path).
fn tenant_spec(i: usize) -> CampaignSpec {
    let shape = i % SPEC_SHAPES;
    if shape == 0 {
        return CampaignSpec {
            inputs: InputSelection::Inline(Vec::new()),
            matrix_seed: Some(5),
            faults: Some(small_fault_catalogue(5)),
            experiments: vec![Experiment::ALL[0]],
            formats: vec![StorageFormat::Orc],
            detect: true,
            ..CampaignSpec::default()
        };
    }
    CampaignSpec {
        inputs: InputSelection::CataloguePrefix(1 + shape % 4),
        formats: vec![StorageFormat::Orc, StorageFormat::Parquet],
        shards: 1 + shape % 2,
        chunk_size: 2,
        detect: shape % 4 == 1,
        seed: 42 + shape as u64,
        ..CampaignSpec::default()
    }
}

/// What one connection thread brings home.
struct ConnectionResult {
    /// Submit→report wall latency per finished campaign, milliseconds.
    latencies_ms: Vec<f64>,
    /// `(spec shape, wire report)` per finished campaign.
    reports: Vec<(usize, String)>,
    /// Detection frames received.
    detections: usize,
    /// Admission rejections received.
    rejected: usize,
}

/// One connection: submit every tenant's campaign up front (the full
/// backlog lands on admission control at once), then drain frames until
/// each campaign has its terminal frame.
fn drive_connection(addr: std::net::SocketAddr, conn: usize, tenants: usize) -> ConnectionResult {
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut submitted_at: BTreeMap<String, (usize, Instant)> = BTreeMap::new();
    for j in 0..tenants {
        let i = conn * tenants + j;
        let tenant = format!("t{conn:03}-{j:03}");
        client.submit(&tenant, &tenant_spec(i)).expect("submit");
        submitted_at.insert(tenant, (i % SPEC_SHAPES, Instant::now()));
    }
    let mut result = ConnectionResult {
        latencies_ms: Vec::new(),
        reports: Vec::new(),
        detections: 0,
        rejected: 0,
    };
    let mut terminals = 0;
    while terminals < tenants {
        match client.read_frame().expect("frame") {
            Frame::Accepted { .. } => {}
            Frame::Detection { .. } => result.detections += 1,
            Frame::Rejected { tenant, reason } => {
                eprintln!("rejected {tenant}: {reason}");
                result.rejected += 1;
                terminals += 1;
            }
            Frame::Report {
                tenant,
                report_json,
                ..
            } => {
                let (shape, submitted) = submitted_at[&tenant];
                result
                    .latencies_ms
                    .push(submitted.elapsed().as_secs_f64() * 1e3);
                result.reports.push((shape, report_json));
                terminals += 1;
            }
        }
    }
    result
}

/// The JSON document this binary prints and appends to `BENCH_serve.json`.
#[derive(Serialize)]
struct Summary {
    /// Tenants submitted (one campaign each).
    tenants: usize,
    /// Concurrent client connections.
    connections: usize,
    /// Daemon worker threads.
    workers: usize,
    /// Deployments pre-warmed into the pool.
    warm: usize,
    /// Campaigns finished with a report.
    completed: usize,
    /// Campaigns refused by admission control.
    rejected: usize,
    /// Detection frames streamed mid-campaign.
    detections: usize,
    /// Finished campaigns per wall-clock second.
    campaigns_per_sec: f64,
    /// Streamed detections per wall-clock second.
    detections_per_sec: f64,
    /// Submit→report latency percentiles, milliseconds.
    p50_ms: f64,
    /// 99th percentile submit→report latency, milliseconds.
    p99_ms: f64,
    /// Worst-case submit→report latency, milliseconds.
    max_ms: f64,
    /// Whether every wire report was byte-identical to the in-process
    /// batch run of the same spec.
    byte_identical: bool,
    /// Deployments built by the daemon's pool.
    pool_created: u64,
    /// Deployments served warm off the shelves.
    pool_reused: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    let tenants = shape.connections * shape.tenants_per_connection;

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    let config = ServeConfig {
        workers,
        warm: workers,
        // The whole offered load fits the queue: this run measures the
        // service under backlog, not the refusal path (which
        // `csi-serve`'s own tests pin down).
        max_queue: tenants.max(64),
        per_tenant_queue: 8,
    };
    let mut server = CsiServer::start(&config).expect("server starts");
    let addr = server.addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..shape.connections)
        .map(|conn| {
            let tenants_per_connection = shape.tenants_per_connection;
            std::thread::spawn(move || drive_connection(addr, conn, tenants_per_connection))
        })
        .collect();
    let results: Vec<ConnectionResult> = handles
        .into_iter()
        .map(|h| h.join().expect("connection thread"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();

    // Byte-identity: batch-run each unique spec shape once in-process
    // and compare every wire report against its shape's report.
    let mut batch: BTreeMap<usize, String> = BTreeMap::new();
    for shape_idx in 0..SPEC_SHAPES.min(tenants) {
        let outcome = Campaign::from_spec(tenant_spec(shape_idx))
            .expect("valid spec")
            .run();
        batch.insert(
            shape_idx,
            serde_json::to_string(&outcome.report).expect("reports serialize"),
        );
    }
    let byte_identical = results
        .iter()
        .flat_map(|r| r.reports.iter())
        .all(|(shape_idx, wire)| batch.get(shape_idx) == Some(wire));

    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|r| r.latencies_ms.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed: usize = results.iter().map(|r| r.reports.len()).sum();
    let rejected: usize = results.iter().map(|r| r.rejected).sum();
    let detections: usize = results.iter().map(|r| r.detections).sum();
    let stats = server.pool_stats();

    let summary = Summary {
        tenants,
        connections: shape.connections,
        workers,
        warm: config.warm,
        completed,
        rejected,
        detections,
        campaigns_per_sec: completed as f64 / elapsed,
        detections_per_sec: detections as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        byte_identical,
        pool_created: stats.created,
        pool_reused: stats.reused,
    };
    println!(
        "BENCH_serve {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_serve.json", "load_serve", &summary).expect("trajectory append");
    server.shutdown();

    assert_eq!(summary.completed, tenants, "campaigns went missing");
    assert_eq!(summary.rejected, 0, "admission refused in-budget load");
    assert!(
        summary.byte_identical,
        "served reports diverged from batch runs"
    );
    assert!(summary.detections > 0, "no detections streamed under load");
    assert!(
        summary.pool_reused > 0,
        "warm pool never reused a deployment"
    );
}
