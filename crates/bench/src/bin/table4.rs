//! Regenerates Table 4: data properties behind data-plane failures.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    let rows = csi_study::analyze::data_property_table(&ds);
    for (property, n) in &rows {
        println!("{property:<22} {n}");
    }
    let paper = [10usize, 14, 18, 8, 11];
    for ((property, measured), paper) in rows.into_iter().zip(paper) {
        compare(&property.to_string(), paper, measured);
    }
    let (metadata, typical, custom, other) = csi_study::analyze::metadata_split(&ds);
    compare("metadata-caused (Finding 4)", 50, metadata);
    compare("  typical metadata", 42, typical);
    compare("  custom metadata", 8, custom);
    compare("  non-metadata", 11, other);
}
