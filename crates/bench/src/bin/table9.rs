//! Regenerates Table 9: fix patterns, plus Findings 12 and 13.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table9(&ds));
    let paper = [38usize, 8, 69, 5];
    for ((pattern, measured), paper) in csi_study::analyze::fix_table(&ds).into_iter().zip(paper) {
        compare(&pattern.to_string(), paper, measured);
    }
    compare(
        "checking/error-handling fixes (Finding 12)",
        46,
        csi_study::analyze::checking_or_error_handling_fixes(&ds),
    );
    let loc = csi_study::analyze::fix_locations(&ds);
    compare("failures with merged fixes", 115, loc.fixed);
    compare(
        "upstream downstream-specific fixes (Finding 13)",
        79,
        loc.upstream_specific,
    );
    compare("  of which in connector modules", 68, loc.in_connectors);
}
