//! Regenerates Table 6: data-plane discrepancy patterns.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table6(&ds));
    let paper = [12usize, 15, 9, 7, 18];
    for ((pattern, measured), paper) in csi_study::analyze::data_pattern_table(&ds)
        .into_iter()
        .zip(paper)
    {
        compare(&pattern.to_string(), paper, measured);
    }
    compare(
        "serialization-rooted (Finding 6)",
        15,
        csi_study::analyze::serialization_rooted_count(&ds),
    );
}
