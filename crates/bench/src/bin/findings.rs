//! Recomputes Findings 1–13 and the CBS comparison.

fn main() {
    let ds = csi_study::Dataset::load();
    for f in csi_study::findings::all_findings(&ds) {
        let verdict = if f.holds { "HOLDS" } else { "FAILS" };
        println!("Finding {:>2} [{verdict}] {}", f.number, f.statement);
        println!("            measured: {}", f.evidence);
    }
    println!("\n{}", csi_study::findings::cbs_comparison());
    println!(
        "Section 5.3: {}% of Spark's integration tests cross-test dependent systems",
        csi_study::cbs::sampling::SPARK_CROSS_TEST_PERCENT
    );
}
