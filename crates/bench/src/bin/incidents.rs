//! Regenerates the Section 3 cloud-incident statistics.

use csi_bench::tables::compare;
use csi_study::incidents::{load_incidents, median_csi_duration};

fn main() {
    let incidents = load_incidents();
    let csi: Vec<_> = incidents.iter().filter(|i| i.is_csi).collect();
    for i in &csi {
        println!(
            "{:<12} {:?}  {:>5} min  cascading={:<5}  {}",
            i.id,
            i.provider,
            i.duration_minutes.unwrap_or(0),
            i.impaired_external,
            &i.summary[..i.summary.len().min(80)]
        );
    }
    compare("incidents studied", 55, incidents.len());
    compare("CSI-failure-induced incidents", 11, csi.len());
    compare(
        "median CSI incident duration (min)",
        106,
        median_csi_duration(&incidents),
    );
    compare(
        "CSI incidents impairing external services",
        8,
        csi.iter().filter(|i| i.impaired_external).count(),
    );
    compare(
        "reports mentioning interaction code fixes",
        4,
        csi.iter().filter(|i| i.mentions_interaction_fix).count(),
    );
}
