//! Columnar-vs-row serde benchmark: times the write, read, and oracle
//! hot paths over the bulk wide-table schema on both data planes, checks
//! the written bytes are identical, prints a JSON summary, and appends it
//! to the `BENCH_serde.json` trajectory at the repo root.
//!
//! The row plane is the retained `write_file_rows`/`read_file_rows`
//! adapter pair (one `Vec<Value>` per row, one `PhysicalValue` per cell);
//! the columnar plane is `write_columns`/`read_columns` over
//! [`ValueColumn`] buffers, which is what the engines' bulk APIs and the
//! differential oracle actually use. The oracle comparison pits the old
//! per-cell `canonical_eq` row loop against the vectorized
//! `ValueColumn::canonical_eq` + fingerprint path.
//!
//! Usage: `serde_batch [rows] [iters]`, or `serde_batch --smoke` for the
//! CI gate (256 rows, asserts the committed speedup floors).

use csi_bench::trajectory;
use csi_core::column::ValueColumn;
use csi_core::value::Value;
use csi_test::generator::{bulk_schema, generate_bulk_columns};
use minihive::metastore::StorageFormat;
use minispark::SparkConfig;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Committed floors for the CI smoke gate (`--smoke`, 256 rows). These
/// are same-run ratios against the *current* row plane, which itself got
/// ~3x faster during the columnar work (clone fixes, varint rewrite), so
/// they sit well below the criterion-vs-seed speedups documented in
/// EXPERIMENTS.md (>=10x). Measured ~4.3x write / ~55x oracle on the
/// 9-column bulk schema; the floors leave headroom for loaded CI machines
/// and only catch a path regressing back toward the row plane.
const SMOKE_WRITE_FLOOR: f64 = 3.0;
const SMOKE_ORACLE_FLOOR: f64 = 10.0;

/// The JSON document this binary prints and appends to `BENCH_serde.json`.
#[derive(Serialize)]
struct Summary {
    /// Table height.
    rows: usize,
    /// Columns in the bulk schema.
    cols: usize,
    /// Timing iterations (best-of).
    iters: usize,
    /// Row-plane write wall time over columnar write wall time.
    write_speedup_x: f64,
    /// Row-plane read wall time over columnar read wall time.
    read_speedup_x: f64,
    /// Row-loop oracle wall time over vectorized column oracle.
    oracle_speedup_x: f64,
    /// Best per-plane wall times in microseconds, keyed `plane_phase`.
    micros: BTreeMap<String, u64>,
    /// Whether both planes emitted identical bytes in every format.
    bytes_identical: bool,
}

/// Best-of-`iters` wall time of `f`, in nanoseconds.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let started = Instant::now();
        std::hint::black_box(f());
        best = best.min(started.elapsed().as_nanos() as u64);
    }
    best
}

/// The row-plane differential oracle: build the per-column signature
/// join (one rendered string per cell, exactly what `Observation::
/// behavior` did before the digest fast path) for both sides and compare.
fn row_oracle_agrees(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    let behavior = |rows: &[Vec<Value>], c: usize| -> String {
        let sigs: Vec<String> = rows.iter().map(|r| r[c].signature()).collect();
        sigs.join(";")
    };
    let ncols = a.first().map_or(0, Vec::len);
    a.len() == b.len() && (0..ncols).all(|c| behavior(a, c) == behavior(b, c))
}

/// The columnar differential oracle: vectorized `canonical_eq` (validity
/// words + raw typed-lane compare) plus the lane fingerprint digest that
/// replaced the signature join.
fn column_oracle_agrees(a: &[ValueColumn], b: &[ValueColumn]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.canonical_eq(y) && x.fingerprint() == y.fingerprint())
}

fn transpose(cols: &[ValueColumn]) -> Vec<Vec<Value>> {
    let n = cols.first().map_or(0, ValueColumn::len);
    (0..n)
        .map(|i| cols.iter().map(|c| c.get(i)).collect())
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let smoke = args.peek().map(String::as_str) == Some("--smoke");
    if smoke {
        args.next();
    }
    let rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke { 256 } else { 1 << 20 });
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(
        // Enough repeats to settle at small scale; a couple at 1M rows.
        if rows <= 4096 { 30 } else { 3 },
    );

    let schema = bulk_schema();
    let cols = generate_bulk_columns(rows, 42);
    let rows_data = transpose(&cols);
    let config = SparkConfig::default();

    let mut micros = BTreeMap::new();
    let mut bytes_identical = true;
    let (mut w_rows, mut w_cols, mut r_rows, mut r_cols) = (0u64, 0u64, 0u64, 0u64);
    for format in StorageFormat::ALL {
        let via_rows =
            minispark::serde_layer::write_file_rows(format, &schema, &rows_data, &config)
                .expect("row write");
        let via_cols = minispark::serde_layer::write_columns(format, &schema, &cols, &config)
            .expect("columnar write");
        bytes_identical &= via_rows == via_cols;

        w_rows += best_of(iters, || {
            minispark::serde_layer::write_file_rows(format, &schema, &rows_data, &config)
        });
        w_cols += best_of(iters, || {
            minispark::serde_layer::write_columns(format, &schema, &cols, &config)
        });
        r_rows += best_of(iters, || {
            minispark::serde_layer::read_file_rows(format, &schema, &via_cols, &config)
        });
        r_cols += best_of(iters, || {
            minispark::serde_layer::read_columns(format, &schema, &via_cols, &config)
        });
    }

    // Oracle comparison over a fresh decode of the same table (equal but
    // not pointer-identical data, as in a real differential check).
    let bytes = minispark::serde_layer::write_columns(StorageFormat::Orc, &schema, &cols, &config)
        .expect("oracle write");
    let cols2 = minispark::serde_layer::read_columns(StorageFormat::Orc, &schema, &bytes, &config)
        .expect("oracle read");
    let rows2 = transpose(&cols2);
    let o_rows = best_of(iters, || row_oracle_agrees(&rows_data, &rows2));
    let o_cols = best_of(iters, || column_oracle_agrees(&cols, &cols2));
    assert!(
        row_oracle_agrees(&rows_data, &rows2),
        "row oracle saw a diff"
    );
    assert!(
        column_oracle_agrees(&cols, &cols2),
        "column oracle saw a diff"
    );

    micros.insert("write_rows".into(), w_rows / 1_000);
    micros.insert("write_cols".into(), w_cols / 1_000);
    micros.insert("read_rows".into(), r_rows / 1_000);
    micros.insert("read_cols".into(), r_cols / 1_000);
    micros.insert("oracle_rows".into(), o_rows / 1_000);
    micros.insert("oracle_cols".into(), o_cols / 1_000);

    let summary = Summary {
        rows,
        cols: cols.len(),
        iters,
        write_speedup_x: w_rows as f64 / w_cols.max(1) as f64,
        read_speedup_x: r_rows as f64 / r_cols.max(1) as f64,
        oracle_speedup_x: o_rows as f64 / o_cols.max(1) as f64,
        micros,
        bytes_identical,
    };
    println!(
        "BENCH_serde {}",
        serde_json::to_string(&summary).expect("serializable")
    );
    trajectory::append("BENCH_serde.json", "serde_batch", &summary).expect("trajectory append");

    assert!(
        summary.bytes_identical,
        "columnar write bytes diverged from row plane"
    );
    if smoke {
        assert!(
            summary.write_speedup_x >= SMOKE_WRITE_FLOOR,
            "columnar write speedup regressed below {SMOKE_WRITE_FLOOR}x: {:.2}x",
            summary.write_speedup_x
        );
        assert!(
            summary.oracle_speedup_x >= SMOKE_ORACLE_FLOOR,
            "column oracle speedup regressed below {SMOKE_ORACLE_FLOOR}x: {:.2}x",
            summary.oracle_speedup_x
        );
    }
}
