//! Regenerates Table 8: control-plane discrepancy patterns.

use csi_bench::tables::compare;

fn main() {
    let ds = csi_study::Dataset::load();
    print!("{}", csi_study::render::table8(&ds));
    let (api, state, feature) = csi_study::analyze::control_pattern_table(&ds);
    compare("API semantic violation", 13, api);
    compare("state/resource inconsistency", 5, state);
    compare("feature inconsistency", 2, feature);
    let (implicit, context) = csi_study::analyze::api_misuse_split(&ds);
    compare("  implicit-semantics misuse (Finding 11)", 8, implicit);
    compare("  wrong-context misuse (Finding 11)", 5, context);
}
