//! Perf-trajectory files: committed `BENCH_*.json` logs at the repo root.
//!
//! Each bench binary appends its JSON summary as **one line** to the
//! trajectory file it owns, so measured performance accumulates in-repo
//! alongside the code that produced it:
//!
//! - `BENCH_campaign.json` — the `campaign` and `fault_matrix` binaries;
//! - `BENCH_explore.json` — the `explore` and `kfault_explore` binaries;
//! - `BENCH_serde.json` — the `serde_batch` binary (columnar vs row serde);
//! - `BENCH_scale.json` — the `cluster_scale` binary (interned/sharded
//!   substrates at production shape);
//! - `BENCH_serve.json` — the `load_serve` binary (the `csi-serve`
//!   daemon under 1k+ concurrent tenants);
//! - `BENCH_corpus.json` — the `corpus_explore` binary (corpus-seeded vs
//!   catalogue-only exploration coverage).
//!
//! Every line is a JSON object tagged with a `bin` key. `ci.sh reports`
//! runs [`check_all`] (via the `trajectory_check` binary) and refuses any
//! line that is not valid JSON or drops one of its file's required keys,
//! so the schema cannot drift silently as the binaries evolve.

use serde::{Content, Serialize};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Required keys per trajectory file. A line may carry more (and the
/// binaries do), but never fewer — dropping one is schema drift.
pub const SCHEMAS: &[(&str, &[&str])] = &[
    ("BENCH_campaign.json", &["bin", "reports_identical"]),
    (
        "BENCH_explore.json",
        &[
            "bin",
            "seed",
            "budget",
            "executed",
            "signatures",
            "reports_identical",
        ],
    ),
    (
        "BENCH_serde.json",
        &[
            "bin",
            "rows",
            "write_speedup_x",
            "read_speedup_x",
            "oracle_speedup_x",
        ],
    ),
    (
        "BENCH_scale.json",
        &[
            "bin",
            "hdfs_files",
            "kafka_partitions",
            "yarn_apps",
            "sim_events_per_sec",
            "vacuum_identical",
            "slab_recycled",
        ],
    ),
    (
        "BENCH_serve.json",
        &[
            "bin",
            "tenants",
            "connections",
            "workers",
            "campaigns_per_sec",
            "detections_per_sec",
            "p99_ms",
            "byte_identical",
            "rejected",
        ],
    ),
    (
        "BENCH_corpus.json",
        &[
            "bin",
            "seed",
            "budget",
            "corpus_inputs",
            "signatures_catalogue",
            "signatures_corpus",
            "corpus_only_signatures",
            "novel_from_corpus",
            "unattributed",
            "reports_identical",
        ],
    ),
];

/// A raw JSON value: lets this module serialize and reparse arbitrary
/// summaries through the vendored serde stack, which has no `Value` type.
struct Raw(Content);

impl Serialize for Raw {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl serde::Deserialize for Raw {
    fn from_content(c: &Content) -> Result<Raw, String> {
        Ok(Raw(c.clone()))
    }
}

/// The repository root, resolved from this crate's manifest directory so
/// the binaries find the trajectory files no matter where they run from.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Validates one trajectory line against its file's required keys.
pub fn validate_line(file: &str, line: &str) -> Result<(), String> {
    let required = SCHEMAS
        .iter()
        .find(|(f, _)| *f == file)
        .map(|(_, keys)| *keys)
        .ok_or_else(|| format!("{file}: not a known trajectory file"))?;
    let raw: Raw =
        serde_json::from_str(line).map_err(|e| format!("{file}: invalid JSON line: {e}"))?;
    let Content::Map(entries) = &raw.0 else {
        return Err(format!("{file}: line is not a JSON object"));
    };
    for key in required {
        let present = entries
            .iter()
            .any(|(k, _)| matches!(k, Content::Str(s) if s == key));
        if !present {
            return Err(format!("{file}: line is missing required key `{key}`"));
        }
    }
    Ok(())
}

/// Appends `summary` as one line to `file` at the repo root (tagged with
/// the producing binary's name), refusing the write if the line would not
/// pass [`validate_line`]. Binaries call this after printing their
/// summary so a schema bug fails the run itself, not a later CI stage.
pub fn append<T: Serialize>(file: &str, bin: &str, summary: &T) -> Result<(), String> {
    let Content::Map(mut entries) = summary.to_content() else {
        return Err(format!("{file}: summary must serialize to a JSON object"));
    };
    entries.insert(0, (Content::Str("bin".into()), Content::Str(bin.into())));
    let line =
        serde_json::to_string(&Raw(Content::Map(entries))).map_err(|e| format!("{file}: {e}"))?;
    validate_line(file, &line)?;
    let path = repo_root().join(file);
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

/// Validates every line of every trajectory file that exists at the repo
/// root. Returns the number of lines checked, or the first error. Missing
/// files are fine (a fresh clone before any bench run); empty or
/// malformed lines are not.
pub fn check_all() -> Result<usize, String> {
    let root = repo_root();
    let mut checked = 0;
    for (file, _) in SCHEMAS {
        let path = root.join(file);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            validate_line(file, line).map_err(|e| format!("{e} (line {})", i + 1))?;
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lines_pass() {
        validate_line(
            "BENCH_campaign.json",
            r#"{"bin":"campaign","reports_identical":true,"observations":1266}"#,
        )
        .expect("valid line");
        validate_line(
            "BENCH_serde.json",
            r#"{"bin":"serde_batch","rows":256,"write_speedup_x":11.0,"read_speedup_x":4.0,"oracle_speedup_x":20.0}"#,
        )
        .expect("valid line");
    }

    #[test]
    fn schema_drift_is_refused() {
        let err =
            validate_line("BENCH_campaign.json", r#"{"bin":"campaign"}"#).expect_err("missing key");
        assert!(err.contains("reports_identical"), "{err}");
        validate_line("BENCH_campaign.json", "not json").expect_err("invalid JSON");
        validate_line("BENCH_other.json", "{}").expect_err("unknown file");
    }

    #[test]
    fn committed_trajectories_validate() {
        check_all().expect("committed trajectory files validate");
    }
}
