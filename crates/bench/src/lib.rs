//! `csi-bench` — benchmark and table/figure regeneration harness.
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment index)
//! plus Criterion benches over the cross-testing harness and the simulators.

pub mod tables;
pub mod trajectory;
