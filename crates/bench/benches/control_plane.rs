//! Criterion benches for the control-plane simulation (Figure 1 / Figure 5
//! ablation): the four driver strategies at fixed parameters, and the
//! simulator kernel itself.

// The `criterion_group!` macro expands to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use csi_core::sim::Sim;
use miniflink::yarn_driver::{run_driver, DriverMode, DriverRun};

fn bench_driver_modes(c: &mut Criterion) {
    let base = DriverRun {
        target: 100,
        interval_ms: 500,
        alloc_service_ms: 50,
        start_latency_ms: 5,
        deadline_ms: 30_000,
        mode: DriverMode::BuggySync,
    };
    let mut group = c.benchmark_group("figure5_ablation");
    for (name, mode) in [
        ("buggy_sync", DriverMode::BuggySync),
        ("longer_interval", DriverMode::LongerInterval),
        ("eager_remove", DriverMode::EagerRemove),
        ("async_client", DriverMode::AsyncClient),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let stats = run_driver(DriverRun { mode, ..base });
                std::hint::black_box(stats.total_requested)
            })
        });
    }
    group.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    c.bench_function("sim/100k_chained_events", |b| {
        b.iter(|| {
            fn tick(count: &mut u64, ops: &mut csi_core::sim::Ops<u64>) {
                *count += 1;
                if *count < 100_000 {
                    ops.schedule_in(1, tick);
                }
            }
            let mut sim = Sim::new(0u64);
            sim.schedule_in(1, tick);
            sim.run();
            std::hint::black_box(sim.state)
        })
    });
}

criterion_group!(benches, bench_driver_modes, bench_sim_kernel);
criterion_main!(benches);
