//! Criterion benches for the Section 8 cross-testing harness: per-plan
//! write/read costs, serializer throughput, and oracle overhead.

// The `criterion_group!` macro expands to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csi_core::value::{DataType, StructField, Value};
use csi_test::{generate_inputs, Campaign, Experiment};
use minihive::metastore::StorageFormat;
use std::time::Duration;

fn bench_generator(c: &mut Criterion) {
    c.bench_function("generator/full_catalogue", |b| {
        b.iter(|| std::hint::black_box(generate_inputs().len()))
    });
}

fn bench_single_experiment(c: &mut Criterion) {
    // A focused slice: 16 inputs through the Spark-to-Hive plans.
    let inputs: Vec<_> = generate_inputs().into_iter().take(16).collect();
    c.bench_function("harness/spark_to_hive_16_inputs", |b| {
        b.iter(|| {
            std::hint::black_box(
                Campaign::new(&inputs)
                    .experiments(vec![Experiment::SparkToHive])
                    .run()
                    .report
                    .distinct(),
            )
        })
    });
}

fn bench_serializers(c: &mut Criterion) {
    let schema = vec![
        StructField::new("a", DataType::Int),
        StructField::new("b", DataType::String),
        StructField::new("d", DataType::Decimal(10, 2)),
    ];
    let rows: Vec<Vec<Value>> = (0..256)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Str(format!("row-{i}")),
                Value::Decimal(csi_core::value::Decimal::new(i as i128 * 100 + 50, 10, 2).unwrap()),
            ]
        })
        .collect();
    // The columnar plane works from prebuilt typed buffers — the shape the
    // engines' bulk APIs and the campaign actually use.
    let mut cols: Vec<csi_core::column::ValueColumn> = schema
        .iter()
        .map(|f| csi_core::column::ValueColumn::for_type(&f.data_type))
        .collect();
    for row in &rows {
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    let config = minispark::SparkConfig::new();
    let mut group = c.benchmark_group("serde");
    for format in StorageFormat::ALL {
        // The columnar hot path (what `write_file` now routes through).
        group.bench_function(format!("spark_write_256rows/{}", format.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    minispark::serde_layer::write_columns(format, &schema, &cols, &config)
                        .unwrap()
                        .len(),
                )
            })
        });
        // The retained row-at-a-time baseline (the pre-columnar write path,
        // byte-identical output).
        group.bench_function(
            format!("spark_write_256rows_rowpath/{}", format.name()),
            |b| {
                b.iter(|| {
                    std::hint::black_box(
                        minispark::serde_layer::write_file_rows(format, &schema, &rows, &config)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        let bytes = minispark::serde_layer::write_columns(format, &schema, &cols, &config).unwrap();
        group.bench_function(format!("spark_read_256rows/{}", format.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    minispark::serde_layer::read_columns(format, &schema, &bytes, &config)
                        .unwrap()
                        .len(),
                )
            })
        });
        group.bench_function(
            format!("spark_read_256rows_rowpath/{}", format.name()),
            |b| {
                b.iter(|| {
                    std::hint::black_box(
                        minispark::serde_layer::read_file_rows(format, &schema, &bytes, &config)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_oracles(c: &mut Criterion) {
    use csi_core::oracle::{check_differential, Observation, ReadOutcome, WriteOutcome};
    let observations: Vec<Observation> = (0..512)
        .map(|i| Observation {
            input_id: i % 64,
            plan: format!("plan-{}", i % 8),
            format: "ORC".into(),
            write: WriteOutcome {
                result: Ok(()),
                diagnostics: vec![],
            },
            read: Some(ReadOutcome {
                result: Ok(vec![Value::Int((i % 3) as i32)]),
                diagnostics: vec![],
            }),
            trace: csi_core::boundary::InteractionTrace::default(),
            detections: vec![],
        })
        .collect();
    c.bench_function("oracle/differential_512_observations", |b| {
        b.iter_batched(
            || observations.clone(),
            |obs| std::hint::black_box(check_differential(&obs).len()),
            BatchSize::SmallInput,
        )
    });

    // Wide-table diff: the vectorized column compare (validity words +
    // typed-lane memcmp + fingerprint) against the per-cell signature
    // join it replaced, over the 9-column bulk schema at 4096 rows.
    let cols = csi_test::generator::generate_bulk_columns(4096, 42);
    let other = csi_test::generator::generate_bulk_columns(4096, 42);
    let rows: Vec<Vec<Value>> = (0..4096)
        .map(|i| cols.iter().map(|c| c.get(i)).collect())
        .collect();
    let other_rows: Vec<Vec<Value>> = (0..4096)
        .map(|i| other.iter().map(|c| c.get(i)).collect())
        .collect();
    c.bench_function("oracle/column_diff_wide_9x4096", |b| {
        b.iter(|| {
            std::hint::black_box(
                cols.iter()
                    .zip(&other)
                    .all(|(x, y)| x.canonical_eq(y) && x.fingerprint() == y.fingerprint()),
            )
        })
    });
    c.bench_function("oracle/row_diff_wide_9x4096", |b| {
        b.iter(|| {
            std::hint::black_box((0..cols.len()).all(|c| {
                let a: Vec<String> = rows.iter().map(|r| r[c].signature()).collect();
                let b: Vec<String> = other_rows.iter().map(|r| r[c].signature()).collect();
                a.join(";") == b.join(";")
            }))
        })
    });
}

fn bench_full_campaign(c: &mut Criterion) {
    // The full 422-input catalogue through all three experiments; a single
    // iteration takes seconds, so sample sparsely.
    let inputs = generate_inputs();
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("harness");
    group
        .sample_size(2)
        .measurement_time(Duration::from_millis(1));
    group.bench_function("full_campaign_serial", |b| {
        b.iter(|| std::hint::black_box(Campaign::new(&inputs).run().report.distinct()))
    });
    group.bench_function("full_campaign_parallel", |b| {
        b.iter(|| {
            // Campaign mode: worker pool plus drop-after-observe
            // recycling, the configuration the `campaign` binary reports.
            std::hint::black_box(
                Campaign::new(&inputs)
                    .recycle_tables(true)
                    .shards(workers)
                    .chunk_size(32)
                    .run()
                    .report
                    .distinct(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generator,
    bench_single_experiment,
    bench_serializers,
    bench_oracles,
    bench_full_campaign
);
criterion_main!(benches);
