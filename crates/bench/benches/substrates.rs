//! Criterion benches for the substrate systems: HDFS namespace operations,
//! Kafka log operations, and configuration-plane merges.

// The `criterion_group!` macro expands to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csi_core::config::{ConfigMap, MergePolicy};
use minihdfs::{HdfsPath, MiniHdfs};
use minikafka::{MiniKafka, PartitionId};

fn bench_hdfs(c: &mut Criterion) {
    c.bench_function("hdfs/create_and_stat_100_files", |b| {
        b.iter(|| {
            let mut fs = MiniHdfs::with_datanodes(3);
            for i in 0..100 {
                let p = HdfsPath::parse(&format!("/bench/dir{}/file{i}", i % 10)).unwrap();
                fs.create(&p, b"payload bytes for the benchmark").unwrap();
                std::hint::black_box(fs.get_file_status(&p).unwrap().len);
            }
        })
    });
    let mut fs = MiniHdfs::with_datanodes(3);
    for i in 0..1000 {
        let p = HdfsPath::parse(&format!("/flat/file{i}")).unwrap();
        fs.create(&p, b"x").unwrap();
    }
    c.bench_function("hdfs/list_1000_entries", |b| {
        let dir = HdfsPath::parse("/flat").unwrap();
        b.iter(|| std::hint::black_box(fs.list_status(&dir).unwrap().len()))
    });
}

fn bench_kafka(c: &mut Criterion) {
    c.bench_function("kafka/produce_fetch_1000", |b| {
        b.iter(|| {
            let mut k = MiniKafka::new();
            k.create_topic("bench", 1);
            for i in 0..1000u32 {
                k.produce(
                    "bench",
                    PartitionId(0),
                    Some(&i.to_le_bytes()),
                    Some(b"value"),
                    i as u64,
                )
                .unwrap();
            }
            std::hint::black_box(
                k.fetch("bench", PartitionId(0), 0, 1000)
                    .unwrap()
                    .records
                    .len(),
            )
        })
    });
    c.bench_function("kafka/compact_1000_records_10_keys", |b| {
        b.iter_batched(
            || {
                let mut k = MiniKafka::new();
                k.create_topic("bench", 1);
                for i in 0..1000u32 {
                    let key = (i % 10).to_le_bytes();
                    k.produce("bench", PartitionId(0), Some(&key), Some(b"v"), 0)
                        .unwrap();
                }
                k
            },
            |mut k| std::hint::black_box(k.compact("bench", PartitionId(0)).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_config_plane(c: &mut Criterion) {
    c.bench_function("config/merge_200_keys_with_provenance", |b| {
        b.iter_batched(
            || {
                let mut ours = ConfigMap::new("spark");
                let mut theirs = ConfigMap::new("hive");
                for i in 0..200 {
                    ours.set(format!("shared.key.{i}"), "ours", "spark-defaults");
                    theirs.set(format!("shared.key.{i}"), "theirs", "hive-site");
                }
                (ours, theirs)
            },
            |(mut ours, theirs)| {
                std::hint::black_box(
                    ours.merge(&theirs, MergePolicy::OursWin, "bench")
                        .ignored
                        .len(),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hbase(c: &mut Criterion) {
    use minihbase::Region;
    use minihdfs::MiniHdfs;
    c.bench_function("hbase/put_500_cells_with_wal", |b| {
        b.iter(|| {
            let mut fs = MiniHdfs::with_datanodes(3);
            let mut region = Region::open("bench", &mut fs).unwrap();
            for i in 0..500u32 {
                region
                    .put(&i.to_le_bytes(), b"cf:v", b"value", &mut fs)
                    .unwrap();
            }
            std::hint::black_box(region.wal_entries())
        })
    });
    c.bench_function("hbase/wal_recovery_500_entries", |b| {
        b.iter_batched(
            || {
                let mut fs = MiniHdfs::with_datanodes(3);
                let mut region = Region::open("bench", &mut fs).unwrap();
                for i in 0..500u32 {
                    region
                        .put(&i.to_le_bytes(), b"cf:v", b"value", &mut fs)
                        .unwrap();
                }
                fs
            },
            |mut fs| {
                // Recovery replays the whole WAL.
                let region = Region::open("bench", &mut fs).unwrap();
                std::hint::black_box(region.wal_entries())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("hbase/flush_then_open_500_cells", |b| {
        b.iter_batched(
            || {
                let mut fs = MiniHdfs::with_datanodes(3);
                let mut region = Region::open("bench", &mut fs).unwrap();
                for i in 0..500u32 {
                    region
                        .put(&i.to_le_bytes(), b"cf:v", b"value", &mut fs)
                        .unwrap();
                }
                region.flush(&mut fs).unwrap();
                fs
            },
            |mut fs| {
                // Post-flush opens read HFiles, not the WAL.
                let region = Region::open("bench", &mut fs).unwrap();
                std::hint::black_box(region.hfile_count())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_hdfs,
    bench_kafka,
    bench_config_plane,
    bench_hbase
);
criterion_main!(benches);
