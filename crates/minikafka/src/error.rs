//! Errors raised by the minikafka broker.

use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectedFault};
use csi_core::{ErrorKind, InteractionError};
use std::fmt;

/// Error type of minikafka operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KafkaError {
    /// The topic does not exist.
    UnknownTopic(String),
    /// The partition index is out of range for the topic.
    UnknownPartition {
        /// Topic name.
        topic: String,
        /// Requested partition.
        partition: u32,
    },
    /// A fetch named an offset below the log start (e.g. deleted by
    /// retention) or beyond the end.
    OffsetOutOfRange {
        /// Requested offset.
        requested: i64,
        /// First valid offset.
        log_start: i64,
        /// One past the last record.
        log_end: i64,
    },
    /// The consumer group is unknown.
    UnknownGroup(String),
    /// A transactional operation was used without an open transaction.
    NoOpenTransaction,
    /// A group commit carried a stale generation (the member missed a
    /// rebalance).
    IllegalGeneration {
        /// Generation the member presented.
        presented: u64,
        /// The group's current generation.
        current: u64,
    },
    /// No broker is reachable for the request.
    BrokerUnavailable,
    /// The request exceeded its deadline without a broker response.
    RequestTimedOut {
        /// The deadline, in milliseconds.
        ms: u64,
    },
    /// A record batch failed its CRC check; the broker rejects it cleanly.
    CorruptRecord {
        /// The request during which the corruption was detected.
        op: String,
    },
}

impl fmt::Display for KafkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KafkaError::UnknownTopic(t) => write!(f, "unknown topic {t:?}"),
            KafkaError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {topic}-{partition}")
            }
            KafkaError::OffsetOutOfRange {
                requested,
                log_start,
                log_end,
            } => write!(
                f,
                "offset {requested} out of range [{log_start}, {log_end})"
            ),
            KafkaError::UnknownGroup(g) => write!(f, "unknown consumer group {g:?}"),
            KafkaError::NoOpenTransaction => write!(f, "no open transaction"),
            KafkaError::IllegalGeneration { presented, current } => write!(
                f,
                "ILLEGAL_GENERATION: presented generation {presented}, group is at {current}"
            ),
            KafkaError::BrokerUnavailable => {
                write!(f, "BROKER_NOT_AVAILABLE: no broker reachable")
            }
            KafkaError::RequestTimedOut { ms } => {
                write!(f, "REQUEST_TIMED_OUT: no response within {ms}ms")
            }
            KafkaError::CorruptRecord { op } => {
                write!(f, "CORRUPT_MESSAGE: record batch failed CRC during {op}")
            }
        }
    }
}

impl std::error::Error for KafkaError {}

impl KafkaError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            KafkaError::UnknownTopic(_) => "UNKNOWN_TOPIC",
            KafkaError::UnknownPartition { .. } => "UNKNOWN_PARTITION",
            KafkaError::OffsetOutOfRange { .. } => "OFFSET_OUT_OF_RANGE",
            KafkaError::UnknownGroup(_) => "UNKNOWN_GROUP",
            KafkaError::NoOpenTransaction => "NO_OPEN_TRANSACTION",
            KafkaError::IllegalGeneration { .. } => "ILLEGAL_GENERATION",
            KafkaError::BrokerUnavailable => "BROKER_UNAVAILABLE",
            KafkaError::RequestTimedOut { .. } => "REQUEST_TIMED_OUT",
            KafkaError::CorruptRecord { .. } => "CORRUPT_RECORD",
        }
    }
}

impl From<KafkaError> for InteractionError {
    fn from(e: KafkaError) -> InteractionError {
        let kind = match &e {
            KafkaError::BrokerUnavailable => ErrorKind::Unavailable,
            KafkaError::RequestTimedOut { .. } => ErrorKind::Timeout,
            _ => ErrorKind::Rejected,
        };
        InteractionError::new("minikafka", kind, e.code(), e.to_string())
    }
}

impl FaultPoint for KafkaError {
    const CHANNEL: Channel = Channel::Kafka;

    fn materialize(fault: &InjectedFault) -> KafkaError {
        match fault.kind {
            FaultKind::Unavailable => KafkaError::BrokerUnavailable,
            FaultKind::Timeout { ms } | FaultKind::Latency { ms } => {
                KafkaError::RequestTimedOut { ms }
            }
            FaultKind::CorruptPayload => KafkaError::CorruptRecord {
                op: fault.op.clone(),
            },
        }
    }
}
