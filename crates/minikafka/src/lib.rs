//! `minikafka` — a partitioned log/stream substrate modeled on Kafka.
//!
//! Implements the data-plane surface behind the streaming CSI failures in
//! the study: topics with partitions, append-only logs, committed offsets,
//! **log compaction** and **transaction markers** — the two mechanisms that
//! make offsets non-contiguous and break the "offsets always increment by 1"
//! assumption of SPARK-19361.

pub mod broker;
pub mod error;
pub mod groups;

pub use broker::{ConsumerRecord, MiniKafka, Offset, PartitionId, RecordBatch};
pub use error::KafkaError;
pub use groups::{ConsumerGroup, GroupCoordinator, Membership};
