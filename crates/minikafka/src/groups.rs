//! Consumer-group membership, rebalancing, and generation fencing.
//!
//! Kafka fences group commits with a *generation* number: every rebalance
//! bumps it, and a member that missed the rebalance (a paused Spark
//! micro-batch, a checkpointing Flink task) gets `ILLEGAL_GENERATION` on
//! its next commit. Upstream connectors that treat the commit as
//! infallible exhibit exactly the wrong-API-assumption pattern of Table 6.

use crate::broker::{MiniKafka, PartitionId};
use crate::error::KafkaError;
use std::collections::HashMap;

/// A member's view after joining: its generation and assigned partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// The group generation this assignment belongs to.
    pub generation: u64,
    /// Partitions assigned to this member.
    pub partitions: Vec<PartitionId>,
}

/// One consumer group, bound to a topic.
///
/// Membership is double-indexed: `members` stays sorted (rebalance order
/// is observable through assignments), while `member_slot` hashes each
/// member name to its position so the membership test on every join and
/// commit is O(1) instead of a `Vec` scan. The slot map is lookup-only —
/// nothing iterates it.
#[derive(Debug, Default)]
pub struct ConsumerGroup {
    topic: String,
    members: Vec<String>,
    member_slot: HashMap<String, usize>,
    generation: u64,
    /// Assigned partitions, indexed by member slot (parallel to `members`).
    assignment: Vec<Vec<PartitionId>>,
}

/// The group coordinator.
#[derive(Debug, Default)]
pub struct GroupCoordinator {
    /// Group name → group. Lookup-only; never iterated.
    groups: HashMap<String, ConsumerGroup>,
}

impl GroupCoordinator {
    /// Creates an empty coordinator.
    pub fn new() -> GroupCoordinator {
        GroupCoordinator::default()
    }

    /// Joins (or re-joins) a member to a group on a topic, triggering a
    /// rebalance: the generation bumps and partitions are redistributed
    /// round-robin over the sorted member list.
    pub fn join(
        &mut self,
        broker: &MiniKafka,
        group: &str,
        topic: &str,
        member: &str,
    ) -> Result<Membership, KafkaError> {
        let partitions = broker.partition_count(topic)?;
        let g = self.groups.entry(group.to_string()).or_default();
        g.topic = topic.to_string();
        let slot = match g.member_slot.get(member) {
            Some(&slot) => slot, // O(1) re-join, the common case.
            None => {
                // New member: splice into the sorted list and reindex the
                // shifted tail (no full re-sort).
                let slot = g
                    .members
                    .binary_search_by(|m| m.as_str().cmp(member))
                    .expect_err("member not yet present");
                g.members.insert(slot, member.to_string());
                g.member_slot.insert(member.to_string(), slot);
                for (i, m) in g.members.iter().enumerate().skip(slot + 1) {
                    *g.member_slot.get_mut(m).expect("indexed member") = i;
                }
                slot
            }
        };
        Self::rebalance(g, partitions);
        Ok(Membership {
            generation: g.generation,
            partitions: g.assignment[slot].clone(),
        })
    }

    /// Removes a member, triggering a rebalance among the rest.
    pub fn leave(
        &mut self,
        broker: &MiniKafka,
        group: &str,
        member: &str,
    ) -> Result<(), KafkaError> {
        let g = self
            .groups
            .get_mut(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
        if let Some(slot) = g.member_slot.remove(member) {
            g.members.remove(slot);
            for (i, m) in g.members.iter().enumerate().skip(slot) {
                *g.member_slot.get_mut(m).expect("indexed member") = i;
            }
        }
        // A leave always rebalances, member or not — the seed's
        // unconditional retain-and-rebalance did the same.
        let partitions = broker.partition_count(&g.topic)?;
        Self::rebalance(g, partitions);
        Ok(())
    }

    fn rebalance(g: &mut ConsumerGroup, partitions: u32) {
        g.generation += 1;
        g.assignment = vec![Vec::new(); g.members.len()];
        if g.members.is_empty() {
            return;
        }
        // Round-robin over the sorted member list, exactly as the seed's
        // name-keyed assignment map distributed them.
        for p in 0..partitions {
            g.assignment[p as usize % g.members.len()].push(PartitionId(p));
        }
    }

    /// The group's current generation.
    pub fn generation(&self, group: &str) -> Option<u64> {
        self.groups.get(group).map(|g| g.generation)
    }

    /// Commits an offset on behalf of a member, fencing on the generation.
    pub fn commit_fenced(
        &self,
        broker: &mut MiniKafka,
        group: &str,
        generation: u64,
        partition: PartitionId,
        offset: i64,
    ) -> Result<(), KafkaError> {
        let g = self
            .groups
            .get(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
        if generation != g.generation {
            return Err(KafkaError::IllegalGeneration {
                presented: generation,
                current: g.generation,
            });
        }
        broker.commit_group_offset(group, &g.topic, partition, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> MiniKafka {
        let mut k = MiniKafka::new();
        k.create_topic("t", 4);
        k
    }

    #[test]
    fn join_assigns_all_partitions() {
        let k = broker();
        let mut gc = GroupCoordinator::new();
        let m = gc.join(&k, "g", "t", "a").unwrap();
        assert_eq!(m.generation, 1);
        assert_eq!(m.partitions.len(), 4);
    }

    #[test]
    fn rebalance_splits_partitions_and_bumps_generation() {
        let k = broker();
        let mut gc = GroupCoordinator::new();
        let a1 = gc.join(&k, "g", "t", "a").unwrap();
        assert_eq!(a1.generation, 1);
        // A second member joins: generation bumps, A's view is now stale.
        let b = gc.join(&k, "g", "t", "b").unwrap();
        assert_eq!(b.generation, 2);
        assert_eq!(b.partitions.len(), 2);
        // A re-joins and the two fresh views partition the topic exactly.
        let a2 = gc.join(&k, "g", "t", "a").unwrap();
        assert_eq!(a2.generation, 3);
        let b2 = gc.join(&k, "g", "t", "b").unwrap();
        assert_eq!(b2.generation, 4);
        let mut all: Vec<u32> = a2.partitions.iter().map(|p| p.0).collect();
        // A's generation-3 assignment equals its generation-4 assignment
        // (membership did not change between them), so the union holds.
        all.extend(b2.partitions.iter().map(|p| p.0));
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stale_generation_commits_are_fenced() {
        let mut k = broker();
        k.produce("t", PartitionId(0), None, Some(b"x"), 0).unwrap();
        let mut gc = GroupCoordinator::new();
        let a = gc.join(&k, "g", "t", "a").unwrap();
        gc.commit_fenced(&mut k, "g", a.generation, PartitionId(0), 1)
            .unwrap();
        // A second member joins; A's generation is now stale.
        gc.join(&k, "g", "t", "b").unwrap();
        let err = gc
            .commit_fenced(&mut k, "g", a.generation, PartitionId(0), 1)
            .unwrap_err();
        assert!(matches!(
            err,
            KafkaError::IllegalGeneration {
                presented: 1,
                current: 2
            }
        ));
        // After rejoining, commits work again.
        let a2 = gc.join(&k, "g", "t", "a").unwrap();
        gc.commit_fenced(&mut k, "g", a2.generation, PartitionId(0), 1)
            .unwrap();
        assert_eq!(k.committed_offset("g", "t", PartitionId(0)), Some(1));
    }

    #[test]
    fn out_of_order_joins_assign_by_sorted_member_name() {
        // Members join unsorted; assignments must still distribute
        // round-robin over the *sorted* list, and the hashed slot index
        // must survive the mid-list splices and removals.
        let k = broker();
        let mut gc = GroupCoordinator::new();
        for m in ["delta", "alpha", "charlie", "bravo"] {
            gc.join(&k, "g", "t", m).unwrap();
        }
        let views: Vec<(&str, Vec<u32>)> = ["alpha", "bravo", "charlie", "delta"]
            .into_iter()
            .map(|m| {
                let v = gc.join(&k, "g", "t", m).unwrap();
                (m, v.partitions.iter().map(|p| p.0).collect())
            })
            .collect();
        // 4 partitions round-robin over 4 sorted members: one each.
        assert_eq!(
            views,
            vec![
                ("alpha", vec![0]),
                ("bravo", vec![1]),
                ("charlie", vec![2]),
                ("delta", vec![3]),
            ]
        );
        // Removing a middle member reindexes the tail correctly.
        gc.leave(&k, "g", "bravo").unwrap();
        let c = gc.join(&k, "g", "t", "charlie").unwrap();
        assert_eq!(c.partitions, vec![PartitionId(1)]); // slot 1 of [alpha, charlie, delta]
        let d = gc.join(&k, "g", "t", "delta").unwrap();
        assert_eq!(d.partitions, vec![PartitionId(2)]);
    }

    #[test]
    fn leave_rebalances_the_remainder() {
        let k = broker();
        let mut gc = GroupCoordinator::new();
        gc.join(&k, "g", "t", "a").unwrap();
        gc.join(&k, "g", "t", "b").unwrap();
        gc.leave(&k, "g", "b").unwrap();
        let a = gc.join(&k, "g", "t", "a").unwrap();
        assert_eq!(a.partitions.len(), 4);
        assert!(gc.leave(&k, "nope", "x").is_err());
    }
}
