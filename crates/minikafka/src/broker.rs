//! The minikafka broker: topics, partitioned logs, compaction, transactions,
//! and consumer-group offsets.
//!
//! Storage is production-shaped: topic names are interned to dense u32
//! ids, partitions live in a flat sharded map keyed by packed
//! `(topic, partition)` ids, and group offsets / transactions sit in
//! hashed indexes. Every hash map is **lookup-only** — anything
//! order-sensitive (like [`MiniKafka::topics`]) sorts by name before
//! returning, so no observable output depends on hash iteration order or
//! on the ids themselves.

use crate::error::KafkaError;
use bytes::Bytes;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::{Channel, InjectionRegistry};
use csi_core::intern::{NameTable, Sym};
use std::collections::HashMap;

/// A record offset within a partition.
pub type Offset = i64;

/// A partition index within a topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

#[derive(Debug, Clone, PartialEq, Eq)]
enum StoredKind {
    Data {
        aborted: bool,
    },
    /// A transaction control marker: occupies an offset, never delivered.
    TxnMarker,
}

#[derive(Debug, Clone)]
struct StoredRecord {
    offset: Offset,
    key: Option<Bytes>,
    value: Option<Bytes>,
    timestamp: u64,
    kind: StoredKind,
}

/// A record as delivered to consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerRecord {
    /// The record's offset. **Not necessarily contiguous** with its
    /// neighbors: compaction and transaction markers leave gaps
    /// (SPARK-19361).
    pub offset: Offset,
    /// Optional key.
    pub key: Option<Bytes>,
    /// Value; `None` is a tombstone.
    pub value: Option<Bytes>,
    /// Producer-supplied timestamp.
    pub timestamp: u64,
}

/// Result of a fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordBatch {
    /// Delivered records, in offset order.
    pub records: Vec<ConsumerRecord>,
    /// The partition's current log-end offset (next offset to be assigned).
    pub log_end: Offset,
}

#[derive(Debug, Default)]
struct Partition {
    log: Vec<StoredRecord>,
    next_offset: Offset,
    log_start: Offset,
}

#[derive(Debug)]
struct Transaction {
    topic: u32,
    staged: Vec<(PartitionId, Option<Bytes>, Option<Bytes>, u64)>,
}

#[derive(Debug)]
struct TopicMeta {
    name: String,
    partitions: u32,
}

/// Number of shards in the flat partition map. A fixed power of two keeps
/// the shard choice a pure function of the packed id.
const SHARDS: usize = 16;

/// Packs a dense topic id and partition index into one map key.
fn pkey(topic: u32, partition: PartitionId) -> u64 {
    (u64::from(topic) << 32) | u64::from(partition.0)
}

/// Flat sharded partition store: `(topic, partition)` packed ids hashed
/// into a fixed shard array, replacing the seed's per-topic `Vec` behind a
/// name-keyed `BTreeMap`. Lookups touch one shard; nothing iterates the
/// shards, so layout never leaks into observable output.
#[derive(Debug)]
struct PartitionMap {
    shards: Vec<HashMap<u64, Partition>>,
}

impl Default for PartitionMap {
    fn default() -> PartitionMap {
        PartitionMap {
            shards: (0..SHARDS).map(|_| HashMap::new()).collect(),
        }
    }
}

impl PartitionMap {
    fn shard_of(key: u64) -> usize {
        ((key ^ (key >> 32)) as usize) % SHARDS
    }

    fn insert(&mut self, key: u64, partition: Partition) {
        self.shards[Self::shard_of(key)].insert(key, partition);
    }

    fn get(&self, key: u64) -> Option<&Partition> {
        self.shards[Self::shard_of(key)].get(&key)
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut Partition> {
        self.shards[Self::shard_of(key)].get_mut(&key)
    }
}

/// The in-memory broker.
#[derive(Debug, Default)]
pub struct MiniKafka {
    /// Topic name → dense topic id. Lookup-only.
    topic_ids: HashMap<String, u32>,
    /// Topic metadata, indexed by dense topic id.
    topic_meta: Vec<TopicMeta>,
    /// All partitions of all topics, sharded by packed id.
    partitions: PartitionMap,
    /// Consumer-group name interner for the offset index.
    group_names: NameTable,
    /// `(group, topic, partition)` → committed offset. Lookup-only.
    group_offsets: HashMap<(Sym, u32, u32), Offset>,
    transactions: HashMap<u64, Transaction>,
    next_txn_id: u64,
    crossing: Option<CrossingContext>,
}

impl MiniKafka {
    /// Creates an empty broker.
    pub fn new() -> MiniKafka {
        MiniKafka::default()
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; broker request entry points route through it.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every broker request
    /// entry point crosses the [`Channel::Kafka`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The broker request boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, topic: &str, partition: PartitionId) -> Result<(), KafkaError> {
        match &self.crossing {
            Some(ctx) => ctx.cross(
                BoundaryCall::new(Channel::Kafka, op)
                    .with_payload(&format!("{topic}/p{}", partition.0)),
            ),
            None => Ok(()),
        }
    }

    /// Creates a topic with `partitions` partitions. Idempotent.
    pub fn create_topic(&mut self, topic: &str, partitions: u32) {
        if self.topic_ids.contains_key(topic) {
            return;
        }
        let id = u32::try_from(self.topic_meta.len()).expect("topic id overflow");
        self.topic_ids.insert(topic.to_string(), id);
        self.topic_meta.push(TopicMeta {
            name: topic.to_string(),
            partitions,
        });
        for p in 0..partitions {
            self.partitions
                .insert(pkey(id, PartitionId(p)), Partition::default());
        }
    }

    /// Topic names, sorted.
    pub fn topics(&self) -> Vec<&str> {
        // Ids are creation-ordered; listings sort by name so the id
        // assignment stays unobservable.
        let mut names: Vec<&str> = self.topic_meta.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    fn topic_id(&self, topic: &str) -> Result<u32, KafkaError> {
        self.topic_ids
            .get(topic)
            .copied()
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))
    }

    /// Number of partitions of a topic.
    pub fn partition_count(&self, topic: &str) -> Result<u32, KafkaError> {
        Ok(self.topic_meta[self.topic_id(topic)? as usize].partitions)
    }

    fn partition_mut_by_id(
        &mut self,
        topic: u32,
        partition: PartitionId,
    ) -> Result<&mut Partition, KafkaError> {
        let meta = &self.topic_meta[topic as usize];
        if partition.0 >= meta.partitions {
            return Err(KafkaError::UnknownPartition {
                topic: meta.name.clone(),
                partition: partition.0,
            });
        }
        Ok(self
            .partitions
            .get_mut(pkey(topic, partition))
            .expect("in-range partition exists"))
    }

    fn partition_mut(
        &mut self,
        topic: &str,
        partition: PartitionId,
    ) -> Result<&mut Partition, KafkaError> {
        let id = self.topic_id(topic)?;
        self.partition_mut_by_id(id, partition)
    }

    fn partition(&self, topic: &str, partition: PartitionId) -> Result<&Partition, KafkaError> {
        let id = self.topic_id(topic)?;
        let meta = &self.topic_meta[id as usize];
        if partition.0 >= meta.partitions {
            return Err(KafkaError::UnknownPartition {
                topic: meta.name.clone(),
                partition: partition.0,
            });
        }
        Ok(self
            .partitions
            .get(pkey(id, partition))
            .expect("in-range partition exists"))
    }

    /// Produces one record; returns its offset.
    pub fn produce(
        &mut self,
        topic: &str,
        partition: PartitionId,
        key: Option<&[u8]>,
        value: Option<&[u8]>,
        timestamp: u64,
    ) -> Result<Offset, KafkaError> {
        self.cross("produce", topic, partition)?;
        let p = self.partition_mut(topic, partition)?;
        let offset = p.next_offset;
        p.next_offset += 1;
        p.log.push(StoredRecord {
            offset,
            key: key.map(Bytes::copy_from_slice),
            value: value.map(Bytes::copy_from_slice),
            timestamp,
            kind: StoredKind::Data { aborted: false },
        });
        Ok(offset)
    }

    /// Begins a transaction on a topic; returns the transaction handle.
    pub fn begin_transaction(&mut self, topic: &str) -> Result<u64, KafkaError> {
        let id = self.topic_id(topic)?;
        self.next_txn_id += 1;
        self.transactions.insert(
            self.next_txn_id,
            Transaction {
                topic: id,
                staged: Vec::new(),
            },
        );
        Ok(self.next_txn_id)
    }

    /// Stages a record inside an open transaction.
    pub fn send_transactional(
        &mut self,
        txn: u64,
        partition: PartitionId,
        key: Option<&[u8]>,
        value: Option<&[u8]>,
        timestamp: u64,
    ) -> Result<(), KafkaError> {
        let t = self
            .transactions
            .get_mut(&txn)
            .ok_or(KafkaError::NoOpenTransaction)?;
        t.staged.push((
            partition,
            key.map(Bytes::copy_from_slice),
            value.map(Bytes::copy_from_slice),
            timestamp,
        ));
        Ok(())
    }

    /// Commits a transaction: staged records become visible, and a control
    /// marker consumes one offset per touched partition.
    pub fn commit_transaction(&mut self, txn: u64) -> Result<(), KafkaError> {
        self.finish_transaction(txn, false)
    }

    /// Aborts a transaction: staged records occupy offsets but are never
    /// delivered, and a control marker consumes one more offset.
    pub fn abort_transaction(&mut self, txn: u64) -> Result<(), KafkaError> {
        self.finish_transaction(txn, true)
    }

    fn finish_transaction(&mut self, txn: u64, abort: bool) -> Result<(), KafkaError> {
        let t = self
            .transactions
            .remove(&txn)
            .ok_or(KafkaError::NoOpenTransaction)?;
        let mut touched: Vec<PartitionId> = Vec::new();
        for (partition, key, value, timestamp) in t.staged {
            let p = self.partition_mut_by_id(t.topic, partition)?;
            let offset = p.next_offset;
            p.next_offset += 1;
            p.log.push(StoredRecord {
                offset,
                key,
                value,
                timestamp,
                kind: StoredKind::Data { aborted: abort },
            });
            if !touched.contains(&partition) {
                touched.push(partition);
            }
        }
        for partition in touched {
            let p = self.partition_mut_by_id(t.topic, partition)?;
            let offset = p.next_offset;
            p.next_offset += 1;
            p.log.push(StoredRecord {
                offset,
                key: None,
                value: None,
                timestamp: 0,
                kind: StoredKind::TxnMarker,
            });
        }
        Ok(())
    }

    /// Fetches up to `max_records` delivered records starting at `offset`.
    ///
    /// Control markers and aborted transactional records are skipped, so
    /// **delivered offsets may have gaps**.
    pub fn fetch(
        &self,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
        max_records: usize,
    ) -> Result<RecordBatch, KafkaError> {
        self.cross("fetch", topic, partition)?;
        let p = self.partition(topic, partition)?;
        if offset < p.log_start || offset > p.next_offset {
            return Err(KafkaError::OffsetOutOfRange {
                requested: offset,
                log_start: p.log_start,
                log_end: p.next_offset,
            });
        }
        let records = p
            .log
            .iter()
            .filter(|r| r.offset >= offset)
            .filter(|r| matches!(r.kind, StoredKind::Data { aborted: false }))
            .take(max_records)
            .map(|r| ConsumerRecord {
                offset: r.offset,
                key: r.key.clone(),
                value: r.value.clone(),
                timestamp: r.timestamp,
            })
            .collect();
        Ok(RecordBatch {
            records,
            log_end: p.next_offset,
        })
    }

    /// First valid offset of a partition.
    pub fn log_start_offset(
        &self,
        topic: &str,
        partition: PartitionId,
    ) -> Result<Offset, KafkaError> {
        Ok(self.partition(topic, partition)?.log_start)
    }

    /// One past the last assigned offset.
    pub fn log_end_offset(
        &self,
        topic: &str,
        partition: PartitionId,
    ) -> Result<Offset, KafkaError> {
        self.cross("log_end_offset", topic, partition)?;
        Ok(self.partition(topic, partition)?.next_offset)
    }

    /// Runs log compaction on a partition: for every key, only the most
    /// recent record survives; earlier offsets disappear, leaving gaps.
    /// Records without a key are retained. Returns how many records were
    /// removed.
    pub fn compact(&mut self, topic: &str, partition: PartitionId) -> Result<usize, KafkaError> {
        let p = self.partition_mut(topic, partition)?;
        // Index latest offsets by *borrowed* key slices — the seed cloned
        // every record key into a `BTreeMap<Vec<u8>, Offset>` here, one
        // heap allocation per record per compaction pass.
        let mut latest_by_key: HashMap<&[u8], Offset> = HashMap::new();
        for r in &p.log {
            if let (Some(k), StoredKind::Data { aborted: false }) = (&r.key, &r.kind) {
                latest_by_key.insert(k.as_ref(), r.offset);
            }
        }
        // The index borrows the log, so decide survivors before mutating.
        let keep: Vec<bool> = p
            .log
            .iter()
            .map(|r| match (&r.key, &r.kind) {
                (Some(k), StoredKind::Data { aborted: false }) => {
                    latest_by_key.get(k.as_ref()) == Some(&r.offset)
                }
                (_, StoredKind::TxnMarker) => false, // Markers are garbage-collected.
                _ => true,
            })
            .collect();
        drop(latest_by_key);
        let before = p.log.len();
        let mut idx = 0;
        p.log.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        if let Some(first) = p.log.first() {
            p.log_start = p.log_start.max(0).min(first.offset);
        }
        Ok(before - p.log.len())
    }

    /// Applies time-based retention: removes all records with an offset
    /// below `before` and advances the log-start offset. Consumers holding
    /// positions below the new start get `OffsetOutOfRange` on their next
    /// fetch — the other mechanism (besides compaction) by which the
    /// "offsets start at zero" assumption breaks.
    pub fn expire_before(
        &mut self,
        topic: &str,
        partition: PartitionId,
        before: Offset,
    ) -> Result<usize, KafkaError> {
        let p = self.partition_mut(topic, partition)?;
        let len_before = p.log.len();
        p.log.retain(|r| r.offset >= before);
        p.log_start = p.log_start.max(before.min(p.next_offset));
        Ok(len_before - p.log.len())
    }

    /// Commits a consumer-group offset.
    pub fn commit_group_offset(
        &mut self,
        group: &str,
        topic: &str,
        partition: PartitionId,
        offset: Offset,
    ) -> Result<(), KafkaError> {
        self.partition(topic, partition)?;
        let gsym = self.group_names.intern(group);
        let tid = self.topic_id(topic)?;
        self.group_offsets.insert((gsym, tid, partition.0), offset);
        Ok(())
    }

    /// Reads a committed consumer-group offset.
    pub fn committed_offset(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
    ) -> Option<Offset> {
        // A group or topic this broker has never seen has no offsets; the
        // read path never interns, so `&self` suffices.
        let gsym = self.group_names.lookup(group)?;
        let tid = self.topic_ids.get(topic).copied()?;
        self.group_offsets.get(&(gsym, tid, partition.0)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PartitionId = PartitionId(0);

    fn broker() -> MiniKafka {
        let mut k = MiniKafka::new();
        k.create_topic("t", 2);
        k
    }

    #[test]
    fn produce_fetch_round_trip() {
        let mut k = broker();
        for i in 0..5u8 {
            k.produce("t", P0, Some(b"k"), Some(&[i]), i as u64)
                .unwrap();
        }
        let batch = k.fetch("t", P0, 0, 100).unwrap();
        assert_eq!(batch.records.len(), 5);
        assert_eq!(batch.log_end, 5);
        let offsets: Vec<Offset> = batch.records.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4]); // Contiguous before compaction.
    }

    #[test]
    fn fetch_respects_start_and_max() {
        let mut k = broker();
        for i in 0..10u8 {
            k.produce("t", P0, None, Some(&[i]), 0).unwrap();
        }
        let batch = k.fetch("t", P0, 4, 3).unwrap();
        let offsets: Vec<Offset> = batch.records.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![4, 5, 6]);
    }

    #[test]
    fn fetch_out_of_range_errors() {
        let mut k = broker();
        k.produce("t", P0, None, Some(b"x"), 0).unwrap();
        assert!(matches!(
            k.fetch("t", P0, 99, 10),
            Err(KafkaError::OffsetOutOfRange { .. })
        ));
        assert!(matches!(
            k.fetch("t", P0, -1, 10),
            Err(KafkaError::OffsetOutOfRange { .. })
        ));
        assert!(k.fetch("nope", P0, 0, 1).is_err());
        assert!(k.fetch("t", PartitionId(7), 0, 1).is_err());
    }

    #[test]
    fn compaction_leaves_offset_gaps() {
        let mut k = broker();
        // Three updates to key "a", interleaved with "b".
        k.produce("t", P0, Some(b"a"), Some(b"1"), 0).unwrap(); // 0
        k.produce("t", P0, Some(b"b"), Some(b"1"), 0).unwrap(); // 1
        k.produce("t", P0, Some(b"a"), Some(b"2"), 0).unwrap(); // 2
        k.produce("t", P0, Some(b"a"), Some(b"3"), 0).unwrap(); // 3
        let removed = k.compact("t", P0).unwrap();
        assert_eq!(removed, 2);
        let batch = k.fetch("t", P0, 0, 100).unwrap();
        let offsets: Vec<Offset> = batch.records.iter().map(|r| r.offset).collect();
        // The SPARK-19361 discrepancy: offsets 1 -> 3 jump by 2.
        assert_eq!(offsets, vec![1, 3]);
        assert_eq!(batch.log_end, 4);
    }

    #[test]
    fn committed_transaction_marker_consumes_an_offset() {
        let mut k = broker();
        let txn = k.begin_transaction("t").unwrap();
        k.send_transactional(txn, P0, None, Some(b"x"), 0).unwrap();
        k.send_transactional(txn, P0, None, Some(b"y"), 0).unwrap();
        k.commit_transaction(txn).unwrap();
        k.produce("t", P0, None, Some(b"z"), 0).unwrap();
        let batch = k.fetch("t", P0, 0, 100).unwrap();
        let offsets: Vec<Offset> = batch.records.iter().map(|r| r.offset).collect();
        // Offset 2 is the (invisible) commit marker.
        assert_eq!(offsets, vec![0, 1, 3]);
        assert_eq!(k.log_end_offset("t", P0).unwrap(), 4);
    }

    #[test]
    fn aborted_transaction_records_are_never_delivered() {
        let mut k = broker();
        let txn = k.begin_transaction("t").unwrap();
        k.send_transactional(txn, P0, None, Some(b"ghost"), 0)
            .unwrap();
        k.abort_transaction(txn).unwrap();
        k.produce("t", P0, None, Some(b"real"), 0).unwrap();
        let batch = k.fetch("t", P0, 0, 100).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].offset, 2); // 0 aborted, 1 marker.
        assert_eq!(batch.records[0].value.as_deref(), Some(b"real".as_ref()));
    }

    #[test]
    fn transactions_require_open_handle() {
        let mut k = broker();
        assert!(matches!(
            k.send_transactional(42, P0, None, Some(b"x"), 0),
            Err(KafkaError::NoOpenTransaction)
        ));
        let txn = k.begin_transaction("t").unwrap();
        k.commit_transaction(txn).unwrap();
        assert!(k.commit_transaction(txn).is_err());
    }

    #[test]
    fn retention_advances_the_log_start() {
        let mut k = broker();
        for i in 0..10u8 {
            k.produce("t", P0, None, Some(&[i]), 0).unwrap();
        }
        let removed = k.expire_before("t", P0, 6).unwrap();
        assert_eq!(removed, 6);
        assert_eq!(k.log_start_offset("t", P0).unwrap(), 6);
        // A consumer resuming from its old position is now out of range.
        assert!(matches!(
            k.fetch("t", P0, 3, 10),
            Err(KafkaError::OffsetOutOfRange { log_start: 6, .. })
        ));
        let batch = k.fetch("t", P0, 6, 10).unwrap();
        assert_eq!(batch.records.len(), 4);
        // Expiring past the end empties the log but keeps offsets sane.
        k.expire_before("t", P0, 100).unwrap();
        assert_eq!(k.log_start_offset("t", P0).unwrap(), 10);
        assert!(k.fetch("t", P0, 10, 10).unwrap().records.is_empty());
    }

    #[test]
    fn group_offsets_round_trip() {
        let mut k = broker();
        k.produce("t", P0, None, Some(b"x"), 0).unwrap();
        assert_eq!(k.committed_offset("g", "t", P0), None);
        k.commit_group_offset("g", "t", P0, 1).unwrap();
        assert_eq!(k.committed_offset("g", "t", P0), Some(1));
        assert!(k.commit_group_offset("g", "nope", P0, 0).is_err());
    }

    #[test]
    fn partitions_are_independent() {
        let mut k = broker();
        k.produce("t", P0, None, Some(b"a"), 0).unwrap();
        k.produce("t", PartitionId(1), None, Some(b"b"), 0).unwrap();
        assert_eq!(k.log_end_offset("t", P0).unwrap(), 1);
        assert_eq!(k.log_end_offset("t", PartitionId(1)).unwrap(), 1);
        assert_eq!(k.partition_count("t").unwrap(), 2);
    }
}
